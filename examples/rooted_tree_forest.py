#!/usr/bin/env python3
"""MIS with predictions on rooted trees (Section 9.2 / Corollary 15).

Runs the rooted-tree pipeline end-to-end: the 4-round rooted-tree
initialization (whose surviving components are monochromatic), the
roots-and-leaves measure-uniform algorithm (Algorithm 6), and the
Corollary 15 Parallel-Template algorithm with a Cole–Vishkin-style
O(log* d) 3-coloring reference — including the paper's directed-line
example where η₁ = 3k but η_t = 2.
"""

from repro import run
from repro.bench.algorithms import mis_rooted_parallel, mis_rooted_simple
from repro.errors import eta1, eta_t
from repro.graphs import directed_line, random_rooted_tree
from repro.predictions import (
    directed_line_pattern,
    noisy_predictions,
    perfect_predictions,
)
from repro.problems import MIS


def main() -> None:
    simple = mis_rooted_simple()
    parallel = mis_rooted_parallel()

    print("== random rooted trees, noisy predictions ==")
    print(
        f"{'n':>5}  {'rate':>5}  {'eta_t':>5}  {'simple rounds':>13}  "
        f"{'parallel rounds':>15}"
    )
    for n in (60, 150):
        graph = random_rooted_tree(n, seed=5)
        base = perfect_predictions(MIS, graph, seed=1)
        for rate in (0.0, 0.1, 0.4, 1.0):
            predictions = (
                base
                if rate == 0.0
                else noisy_predictions(MIS, graph, rate, seed=2, base=base)
            )
            res_simple = run(simple, graph, predictions)
            res_parallel = run(parallel, graph, predictions)
            assert MIS.is_solution(graph, res_simple.outputs)
            assert MIS.is_solution(graph, res_parallel.outputs)
            print(
                f"{n:>5}  {rate:>5}  {eta_t(graph, predictions):>5}  "
                f"{res_simple.rounds:>13}  {res_parallel.rounds:>15}"
            )

    print()
    print("== the paper's directed-line example (white at depth 0 mod 3) ==")
    print(f"{'3k':>5}  {'eta1':>5}  {'eta_t':>5}  {'rounds':>6}")
    for k in (10, 30, 100):
        graph = directed_line(3 * k)
        predictions = directed_line_pattern(graph)
        result = run(simple, graph, predictions)
        assert MIS.is_solution(graph, result.outputs)
        print(
            f"{3 * k:>5}  {eta1(graph, predictions):>5}  "
            f"{eta_t(graph, predictions):>5}  {result.rounds:>6}"
        )

    print()
    print("the base algorithm sees the whole line as one error component")
    print("(eta1 = 3k), yet the rooted-tree initialization resolves it in")
    print("two rounds — the tree-specific measure eta_t tells the truth.")


if __name__ == "__main__":
    main()
