#!/usr/bin/env python3
"""Simulating the machine-learning oracle.

The paper treats the predictor as a black box "machine learning oracle".
This example builds a plausible one with no ML dependency: an *ensemble
predictor* that has seen solutions to k perturbed versions of the
instance and predicts per-node by majority vote — then measures how the
achieved prediction error η₁ and the algorithm's rounds respond to the
predictor's training-data volume.

It also demonstrates a trap specific to this problem family: correct
predictions are NOT unique (Section 5 of the paper), so a diverse
ensemble — each sample solving in a different order — majority-votes its
way *away* from every valid solution.  A useful predictor for MIS must
target one consistent solution, not average many.
"""

from repro import run
from repro.bench.algorithms import mis_simple
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import ensemble_predictions
from repro.problems import MIS


def main() -> None:
    graph = connected_erdos_renyi(80, 0.04, seed=9)
    algorithm = mis_simple()
    print(f"instance: {graph.name} (n={graph.n}, m={graph.num_edges})")
    print()
    print("ensemble predictor: majority vote over k perturbed solutions")
    header = (
        f"{'k':>4}  {'consistent: eta1':>16}  {'rounds':>6}"
        f"  {'diverse: eta1':>13}  {'rounds':>6}"
    )
    print(header)
    for k in (0, 1, 3, 7, 15, 31):
        consistent = ensemble_predictions(
            MIS, graph, samples=k, churn=3, seed=4, consistent_order=True
        )
        diverse = ensemble_predictions(
            MIS, graph, samples=k, churn=3, seed=4, consistent_order=False
        )
        consistent_run = run(algorithm, graph, consistent)
        diverse_run = run(algorithm, graph, diverse)
        assert MIS.is_solution(graph, consistent_run.outputs)
        assert MIS.is_solution(graph, diverse_run.outputs)
        print(
            f"{k:>4}  {eta1(graph, consistent):>16}  {consistent_run.rounds:>6}"
            f"  {eta1(graph, diverse):>13}  {diverse_run.rounds:>6}"
        )

    print()
    print("a predictor aiming at one canonical solution improves with data;")
    print("averaging many *different* valid solutions does not converge to")
    print("any of them — solution multiplicity (paper, Section 5) in action.")


if __name__ == "__main__":
    main()
