#!/usr/bin/env python3
"""Figure 2 live: black/white components as a symmetry breaker.

Recreates the paper's Figure 2 instance — a 2-D grid whose nodes are
predicted in 2x2 black/white blocks — and shows why the η_bw error
measure (Section 5) and the black/white alternating algorithm U_bw
(Section 9.1) matter: η₁ equals the whole grid while η_bw = 4, and U_bw's
round count is flat in the grid size.

Also renders the pattern and the computed independent set as ASCII art.
"""

from repro import run
from repro.algorithms.mis import BlackWhiteGreedyMIS, MISBaseAlgorithm
from repro.core import SimpleTemplate
from repro.errors import eta1, eta_bw
from repro.graphs import grid2d
from repro.predictions import grid_blackwhite_predictions
from repro.problems import MIS


def render(graph, values, chars) -> str:
    size = max(i for i, _ in (graph.node_attrs(v)["pos"] for v in graph.nodes)) + 1
    rows = []
    for i in range(size):
        row = []
        for j in range(size):
            node = i * size + j + 1
            row.append(chars[values[node]])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    algorithm = SimpleTemplate(MISBaseAlgorithm(), BlackWhiteGreedyMIS())

    print("pattern (#: predicted 1 / black, .: predicted 0 / white):")
    demo = grid2d(8, 8)
    predictions = grid_blackwhite_predictions(demo)
    print(render(demo, predictions, {1: "#", 0: "."}))
    print()

    result = run(algorithm, demo, predictions)
    print("computed maximal independent set (*: in the set):")
    print(render(demo, result.outputs, {1: "*", 0: "."}))
    print()

    print(f"{'grid':>8}  {'eta1':>5}  {'eta_bw':>6}  {'U_bw rounds':>11}")
    for size in (8, 12, 16, 24):
        graph = grid2d(size, size)
        preds = grid_blackwhite_predictions(graph)
        res = run(algorithm, graph, preds)
        assert MIS.is_solution(graph, res.outputs)
        print(
            f"{size}x{size:<5}  {eta1(graph, preds):>5}  "
            f"{eta_bw(graph, preds):>6}  {res.rounds:>11}"
        )

    print()
    print("eta1 grows with the grid; eta_bw and the rounds stay constant —")
    print("splitting error components by prediction color breaks symmetry.")


if __name__ == "__main__":
    main()
