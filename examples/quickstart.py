#!/usr/bin/env python3
"""Quickstart: solve MIS with predictions on a random graph.

Builds the paper's simplest algorithm with predictions — the Simple
Template over the MIS Initialization Algorithm and the Greedy MIS
Algorithm (Observation 7) — and runs it at several prediction qualities,
printing the measured rounds next to the paper's η₁ + 3 bound.
"""

from repro import SimpleTemplate, run
from repro.algorithms.mis import GreedyMISAlgorithm, MISInitializationAlgorithm
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import MIS


def main() -> None:
    graph = connected_erdos_renyi(100, 0.04, seed=7)
    algorithm = SimpleTemplate(
        MISInitializationAlgorithm(), GreedyMISAlgorithm()
    )
    print(f"instance: {graph.name} (n={graph.n}, m={graph.num_edges})")
    print(f"algorithm: {algorithm.name}")
    print()
    print(f"{'noise rate':>10}  {'eta1':>5}  {'rounds':>6}  {'bound':>6}  valid")

    perfect = perfect_predictions(MIS, graph, seed=1)
    for rate in (0.0, 0.05, 0.1, 0.25, 0.5, 1.0):
        predictions = (
            perfect
            if rate == 0.0
            else noisy_predictions(MIS, graph, rate, seed=2, base=perfect)
        )
        result = run(algorithm, graph, predictions)
        error = eta1(graph, predictions)
        valid = MIS.is_solution(graph, result.outputs)
        print(
            f"{rate:>10}  {error:>5}  {result.rounds:>6}  {error + 3:>6}  {valid}"
        )

    print()
    print("perfect predictions finish in 3 rounds (consistency);")
    print("worse predictions degrade linearly in the error, never beyond it.")


if __name__ == "__main__":
    main()
