#!/usr/bin/env python3
"""Consistency / robustness / degradation study across all four templates.

The canonical learning-augmented-algorithms picture: performance as a
function of prediction error, one curve per template (Section 7).

Workload: a line with identifiers sorted along the path — the Greedy MIS
Algorithm's Θ(n) worst case — with a growing all-zeros segment corrupting
otherwise-perfect predictions, so η₁ sweeps from 0 to n.  The Simple
Template degrades linearly forever (rounds = η₁ + 3); the Parallel
Template tracks the same curve until its reference's O(Δ² + log* d) cap
becomes cheaper, then flattens — robustness in action.  The Consecutive
and Interleaved Templates are robust with respect to *their* references
(here Θ(n)-bounded), so their caps sit at ~2·r(n).
"""

from repro import run
from repro.algorithms.mis import ColoringMISReference
from repro.bench.algorithms import (
    mis_consecutive,
    mis_interleaved,
    mis_parallel,
    mis_simple,
)
from repro.errors import eta1
from repro.graphs import line, sorted_path_ids
from repro.predictions import perfect_predictions
from repro.problems import MIS


def main() -> None:
    n = 96
    graph = sorted_path_ids(line(n))
    base = perfect_predictions(MIS, graph, seed=1)
    algorithms = {
        "simple": mis_simple(),
        "consecutive": mis_consecutive(),
        "interleaved": mis_interleaved(),
        "parallel": mis_parallel(),
    }
    reference = ColoringMISReference()
    parallel_cap = (
        3
        + reference.part1_bound(n, graph.delta, graph.d)
        + reference.part2_bound(n, graph.delta, graph.d)
    )

    print(f"instance: sorted-id line, n={n} (greedy's Theta(n) worst case)")
    print(f"parallel reference cap: ~{parallel_cap} rounds (Delta, d only)")
    print()
    header = f"{'corrupt L':>9}  {'eta1':>5}" + "".join(
        f"  {name:>12}" for name in algorithms
    )
    print(header)

    for segment in (0, 8, 16, 32, 64, 96):
        predictions = dict(base)
        for node in range(1, segment + 1):
            predictions[node] = 0
        error = eta1(graph, predictions)
        row = f"{segment:>9}  {error:>5}"
        for name, algorithm in algorithms.items():
            result = run(algorithm, graph, predictions, max_rounds=50000)
            assert MIS.is_solution(graph, result.outputs), name
            row += f"  {result.rounds:>12}"
        print(row)

    print()
    print("reading the curves:")
    print(" * every template starts at 3 rounds (consistency);")
    print(" * all track eta1 while the error is small (degradation);")
    print(" * 'parallel' flattens at its reference cap once eta1 exceeds")
    print("   it (robustness w.r.t. an n-independent reference), while")
    print("   'simple' keeps paying eta1 + 3 all the way to n.")


if __name__ == "__main__":
    main()
