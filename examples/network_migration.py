#!/usr/bin/env python3
"""Network migration: reuse yesterday's solution on today's network.

The paper's motivating scenario (Section 1.1): a maximal independent set
was computed on one network; a related network — same nodes, slightly
different edges — is now in use.  Yesterday's solution becomes today's
prediction; the algorithm with predictions repairs it in rounds
proportional to the *localized* damage (η₁), not the network size.

This example runs the scenario for all four problems of the paper across
increasing churn, comparing against solving from scratch (no predictions:
the all-wrong baseline for the same algorithm).
"""

from repro import run
from repro.bench.algorithms import (
    coloring_simple,
    edge_coloring_simple,
    matching_simple,
    mis_simple,
)
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi, perturb_edges
from repro.predictions import stale_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING

PROBLEMS = [
    ("MIS", MIS, mis_simple()),
    ("Maximal Matching", MATCHING, matching_simple()),
    ("(D+1)-Vertex Coloring", VERTEX_COLORING, coloring_simple()),
    ("(2D-1)-Edge Coloring", EDGE_COLORING, edge_coloring_simple()),
]


def main() -> None:
    yesterday = connected_erdos_renyi(120, 0.03, seed=21)
    print(f"yesterday's network: n={yesterday.n}, m={yesterday.num_edges}")
    print()

    for title, problem, algorithm in PROBLEMS:
        print(f"== {title} ==")
        print(f"{'churned edges':>14}  {'eta1':>5}  {'rounds':>6}  valid")
        for churn in (0, 3, 8, 20):
            today = perturb_edges(yesterday, add=churn, remove=churn, seed=churn)
            predictions = stale_predictions(problem, yesterday, today, seed=4)
            result = run(algorithm, today, predictions, max_rounds=20000)
            error = eta1(today, predictions, problem.name)
            valid = problem.is_solution(today, result.outputs)
            print(
                f"{2 * churn:>14}  {error:>5}  {result.rounds:>6}  {valid}"
            )
        print()

    print("small churn -> small error components -> a handful of rounds,")
    print("independent of the network size: the value of predictions.")


if __name__ == "__main__":
    main()
