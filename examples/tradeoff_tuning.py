#!/usr/bin/env python3
"""Tuning the consistency–robustness trade-off (Section 10, explored).

The paper closes by asking whether the trust-parameter trade-offs known
from online algorithms with predictions exist in the distributed
setting.  This example sweeps the trust parameter λ of
``HedgedConsecutiveTemplate`` — "believe the predictions for λ·r rounds,
then fall back to the reference" — against prediction errors of three
sizes, and prints the resulting cost matrix.

What to look for:

* λ rows are worst cases growing as (1 + λ)·r under garbage predictions;
* each error column flips from "pay the reference" to "pay f(η) + c"
  once λ·r crosses η — the degradation window;
* intermediate λ can be the worst of both worlds (the valley): trust
  needs a prior on the expected error, exactly as in the online setting.
"""

from repro import HedgedConsecutiveTemplate, run
from repro.algorithms.mis import (
    GreedyMISAlgorithm,
    LinialMISAlgorithm,
    MISCleanupAlgorithm,
    MISInitializationAlgorithm,
)
from repro.errors import eta1
from repro.graphs import line, sorted_path_ids
from repro.predictions import perfect_predictions
from repro.problems import MIS


def hedged(trust):
    return HedgedConsecutiveTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        MISCleanupAlgorithm(),
        LinialMISAlgorithm(),
        trust=trust,
    )


def main() -> None:
    n = 96
    graph = sorted_path_ids(line(n))
    cap = LinialMISAlgorithm().round_bound(n, graph.delta, graph.d)
    base = perfect_predictions(MIS, graph, seed=1)

    scenarios = {}
    for segment in (6, 24, 96):
        predictions = dict(base)
        for node in range(1, segment + 1):
            predictions[node] = 0
        scenarios[segment] = predictions

    print(f"instance: sorted-id line n={n}; reference cap r = {cap}")
    print()
    header = f"{'lambda':>7}" + "".join(
        f"  eta1={eta1(graph, p):>3} -> rounds"
        for p in scenarios.values()
    )
    print(header)
    for trust in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0):
        row = f"{trust:>7}"
        for predictions in scenarios.values():
            result = run(hedged(trust), graph, predictions)
            assert MIS.is_solution(graph, result.outputs)
            row += f"  {result.rounds:>17}"
        print(row)

    print()
    print("small errors want small lambda? no — they want lambda large")
    print("enough that lambda*r covers eta1; garbage predictions want")
    print("lambda = 0.  The knob is a bet on the predictor's quality.")


if __name__ == "__main__":
    main()
