"""Exhaustive verification on all small labeled graphs.

Property tests sample; these tests enumerate.  Over *every* labeled
graph on up to 4 nodes (64 graphs) and every prediction vector (16 per
graph) we check the full pipeline: template validity, the Observation 7
bounds, extendability soundness of the canonical checker against brute
force, and the error-measure orderings.  Any regression in the base
algorithm, the templates, or the measures shows up here with a minimal
counterexample.
"""

import itertools

import pytest

from repro.bench.algorithms import mis_parallel, mis_simple
from repro.core import run
from repro.errors import eta1, eta2, eta_bw, mis_base_partial
from repro.graphs import DistGraph
from repro.problems import MIS


def all_labeled_graphs(n):
    """Every labeled simple graph on nodes 1..n."""
    pairs = list(itertools.combinations(range(1, n + 1), 2))
    for mask in range(2 ** len(pairs)):
        adjacency = {v: [] for v in range(1, n + 1)}
        for index, (u, v) in enumerate(pairs):
            if mask >> index & 1:
                adjacency[u].append(v)
        yield DistGraph(adjacency, name=f"g{n}-{mask}")


def all_prediction_vectors(n):
    for bits in itertools.product((0, 1), repeat=n):
        yield dict(zip(range(1, n + 1), bits))


class TestExhaustiveSimpleTemplate:
    def test_all_4_node_graphs_all_predictions(self):
        algorithm = mis_simple()
        failures = []
        for graph in all_labeled_graphs(4):
            for predictions in all_prediction_vectors(4):
                result = run(algorithm, graph, predictions)
                if not MIS.is_solution(graph, result.outputs):
                    failures.append((graph.name, predictions, "invalid"))
                    continue
                error = eta1(graph, predictions)
                if result.rounds > error + 3:
                    failures.append(
                        (graph.name, predictions, result.rounds, error)
                    )
        assert not failures, failures[:5]

    def test_all_3_node_graphs_parallel_template(self):
        algorithm = mis_parallel()
        for graph in all_labeled_graphs(3):
            for predictions in all_prediction_vectors(3):
                result = run(algorithm, graph, predictions)
                assert MIS.is_solution(graph, result.outputs), (
                    graph.name,
                    predictions,
                )
                assert result.rounds <= eta2(graph, predictions) + 5


class TestExhaustiveExtendability:
    def test_canonical_checker_exact_on_all_4_node_partials(self):
        """The canonical extendability conditions agree with brute force
        on every partial assignment of every 4-node graph — 64 × 3^4
        cases.  (Given partial-solution validity, which already forces
        every 0-node to have a decided 1-neighbor, the paper's two
        remaining conditions are necessary *and* sufficient.)"""
        mismatches = []
        for graph in all_labeled_graphs(4):
            for assignment in itertools.product((None, 0, 1), repeat=4):
                outputs = {
                    node: value
                    for node, value in zip(range(1, 5), assignment)
                    if value is not None
                }
                canonical = MIS.is_extendable(graph, outputs)
                exact = MIS.is_extendable_exact(graph, outputs)
                if canonical != exact:
                    mismatches.append((graph.name, outputs, canonical, exact))
        assert not mismatches, mismatches[:5]

    def test_base_partial_canonically_extendable_everywhere(self):
        for graph in all_labeled_graphs(4):
            for predictions in all_prediction_vectors(4):
                outputs = mis_base_partial(graph, predictions)
                assert MIS.is_extendable(graph, outputs), (
                    graph.name,
                    predictions,
                )


class TestExhaustiveOtherProblems:
    def test_matching_all_3_node_graphs_all_predictions(self):
        from repro.bench.algorithms import matching_simple
        from repro.problems import MATCHING, UNMATCHED

        algorithm = matching_simple()
        for graph in all_labeled_graphs(3):
            spaces = [
                [UNMATCHED, *sorted(graph.neighbors(node))]
                for node in graph.nodes
            ]
            for combo in itertools.product(*spaces):
                predictions = dict(zip(graph.nodes, combo))
                result = run(algorithm, graph, predictions)
                assert MATCHING.is_solution(graph, result.outputs), (
                    graph.name,
                    predictions,
                )

    def test_vertex_coloring_all_3_node_graphs_all_predictions(self):
        from repro.bench.algorithms import coloring_simple
        from repro.problems import VERTEX_COLORING

        algorithm = coloring_simple()
        for graph in all_labeled_graphs(3):
            palette = range(1, graph.delta + 2)
            for combo in itertools.product(palette, repeat=3):
                predictions = dict(zip(graph.nodes, combo))
                result = run(algorithm, graph, predictions)
                assert VERTEX_COLORING.is_solution(graph, result.outputs), (
                    graph.name,
                    predictions,
                )

    def test_edge_coloring_all_3_node_graphs_all_predictions(self):
        from repro.bench.algorithms import edge_coloring_simple
        from repro.problems import EDGE_COLORING

        algorithm = edge_coloring_simple()
        for graph in all_labeled_graphs(3):
            palette = range(1, max(1, 2 * graph.delta - 1) + 1)
            node_spaces = []
            for node in graph.nodes:
                neighbors = sorted(graph.neighbors(node))
                entries = [
                    dict(zip(neighbors, colors))
                    for colors in itertools.product(palette, repeat=len(neighbors))
                ]
                node_spaces.append(entries)
            for combo in itertools.product(*node_spaces):
                predictions = dict(zip(graph.nodes, combo))
                result = run(algorithm, graph, predictions)
                assert EDGE_COLORING.is_solution(graph, result.outputs), (
                    graph.name,
                    predictions,
                )


class TestExhaustiveMeasures:
    def test_orderings_on_all_small_instances(self):
        for graph in all_labeled_graphs(4):
            for predictions in all_prediction_vectors(4):
                one = eta1(graph, predictions)
                assert eta2(graph, predictions) <= one
                assert eta_bw(graph, predictions) <= one

    def test_zero_error_iff_predictions_solve(self):
        """η₁ = 0 exactly when the predictions are a correct solution."""
        for graph in all_labeled_graphs(4):
            for predictions in all_prediction_vectors(4):
                zero = eta1(graph, predictions) == 0
                solves = MIS.is_solution(graph, dict(predictions))
                assert zero == solves, (graph.name, predictions)
