"""Tests for the DistGraph instance type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DistGraph, line, ring, grid2d
from repro.graphs.validation import validate_instance


class TestConstruction:
    def test_adjacency_is_symmetrized(self):
        graph = DistGraph({1: [2], 2: [], 3: []})
        assert graph.has_edge(2, 1)
        assert graph.has_edge(1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DistGraph({1: [1]})

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            DistGraph({1: [9]})

    def test_non_positive_ids_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            DistGraph({0: []})

    def test_d_defaults_to_max_id(self):
        graph = DistGraph({3: [], 7: []})
        assert graph.d == 7

    def test_d_below_max_id_rejected(self):
        with pytest.raises(ValueError, match="identifier bound"):
            DistGraph({5: []}, d=4)

    def test_empty_graph(self):
        graph = DistGraph({})
        assert graph.n == 0
        assert graph.delta == 0
        assert graph.edges() == []


class TestAccessors:
    def test_degree_and_delta(self):
        graph = DistGraph({1: [2, 3], 2: [3], 3: []})
        assert graph.degree(1) == 2
        assert graph.delta == 2

    def test_edges_sorted_canonical(self):
        graph = DistGraph({1: [], 2: [1], 3: [1]})
        assert graph.edges() == [(1, 2), (1, 3)]

    def test_num_edges(self):
        assert ring(6).num_edges == 6
        assert line(6).num_edges == 5

    def test_contains_iter_len(self):
        graph = line(4)
        assert 3 in graph
        assert 9 not in graph
        assert list(graph) == [1, 2, 3, 4]
        assert len(graph) == 4

    def test_node_attrs_default_empty(self):
        assert line(2).node_attrs(1) == {}

    def test_with_attrs_merges(self):
        graph = line(2).with_attrs({1: {"x": 5}})
        assert graph.node_attrs(1)["x"] == 5


class TestDerivedGraphs:
    def test_subgraph_induces_edges(self):
        graph = ring(6)
        sub = graph.subgraph([1, 2, 3])
        assert sub.edges() == [(1, 2), (2, 3)]
        assert sub.d == graph.d

    def test_subgraph_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown nodes"):
            line(3).subgraph([1, 99])

    def test_components_of_disconnected(self):
        graph = DistGraph({1: [2], 2: [], 3: [4], 4: [], 5: []})
        components = graph.components()
        assert components == [
            frozenset({1, 2}),
            frozenset({3, 4}),
            frozenset({5}),
        ]

    def test_is_connected(self):
        assert ring(5).is_connected()
        assert not DistGraph({1: [], 2: []}).is_connected()

    def test_bfs_distances(self):
        distances = line(5).bfs_distances(1)
        assert distances == {1: 0, 2: 1, 3: 2, 4: 3, 5: 4}

    def test_diameter_line(self):
        assert line(5).diameter() == 4

    def test_diameter_ring(self):
        assert ring(8).diameter() == 4

    def test_diameter_undefined_for_disconnected(self):
        with pytest.raises(ValueError):
            DistGraph({1: [], 2: []}).diameter()


class TestConversions:
    def test_networkx_roundtrip(self):
        graph = grid2d(3, 3)
        back = DistGraph.from_networkx(graph.to_networkx())
        assert back.edges() == graph.edges()
        assert back.node_attrs(1)["pos"] == (0, 0)

    def test_validate_clean_instance(self):
        assert validate_instance(ring(5)) == []


@st.composite
def random_adjacency(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n),
                st.integers(min_value=1, max_value=n),
            ),
            max_size=20,
        )
    )
    adjacency = {v: [] for v in range(1, n + 1)}
    for u, v in edges:
        if u != v:
            adjacency[u].append(v)
    return adjacency


class TestProperties:
    @given(random_adjacency())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_nodes(self, adjacency):
        graph = DistGraph(adjacency)
        components = graph.components()
        covered = set()
        for component in components:
            assert not (covered & component)
            covered |= component
        assert covered == set(graph.nodes)

    @given(random_adjacency())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, adjacency):
        graph = DistGraph(adjacency)
        assert sum(graph.degree(v) for v in graph.nodes) == 2 * graph.num_edges

    @given(random_adjacency())
    @settings(max_examples=60, deadline=None)
    def test_validation_accepts_constructed_graphs(self, adjacency):
        assert validate_instance(DistGraph(adjacency)) == []
