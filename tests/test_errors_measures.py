"""Tests for the error measures of Section 5 (and Section 9)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    component_diameters,
    error_components,
    eta1,
    eta2,
    eta_bw,
    eta_hamming,
    eta_t,
    mu1,
    mu2,
)
from repro.graphs import (
    clique,
    directed_line,
    grid2d,
    line,
    random_rooted_tree,
    star,
    wheel_fk,
)
from repro.predictions import (
    all_ones_mis,
    all_zeros_mis,
    directed_line_pattern,
    grid_blackwhite_predictions,
    noisy_predictions,
    perfect_predictions,
)
from repro.problems import MIS

from tests.conftest import random_graph, random_predictions_bits


class TestMu:
    def test_mu1_is_size(self):
        graph = line(9)
        assert mu1(graph) == 9
        assert mu1(graph, nodes=[1, 2, 3]) == 3

    def test_mu2_on_clique_is_two(self):
        # α = 1 for a clique, so μ₂ = 2·min(α, τ) = 2.
        assert mu2(clique(8)) == 2

    def test_mu2_on_star_is_two(self):
        # τ = 1 for a star.
        assert mu2(star(9)) == 2

    def test_mu2_at_most_mu1(self):
        for graph in (line(8), clique(5), star(7), grid2d(3, 4)):
            assert mu2(graph) <= mu1(graph)

    def test_mu1_monotone_under_subgraphs(self):
        graph = grid2d(4, 4)
        for component in graph.subgraph(range(1, 9)).components():
            assert mu1(graph, component) <= mu1(graph)


class TestEtaBasics:
    def test_zero_error_on_perfect_predictions(self, small_zoo):
        for graph in small_zoo:
            predictions = perfect_predictions(MIS, graph)
            assert eta1(graph, predictions) == 0
            assert eta2(graph, predictions) == 0
            assert eta_bw(graph, predictions) == 0

    def test_all_ones_eta1_is_component_size(self, path5):
        assert eta1(path5, all_ones_mis(path5)) == 5

    def test_all_zeros_eta1_is_component_size(self, path5):
        assert eta1(path5, all_zeros_mis(path5)) == 5

    def test_eta2_le_eta1(self):
        for seed in range(10):
            graph = random_graph(16, 0.25, seed)
            predictions = random_predictions_bits(graph, seed)
            assert eta2(graph, predictions) <= eta1(graph, predictions)

    def test_eta2_much_smaller_on_clique(self):
        graph = clique(10)
        predictions = all_ones_mis(graph)
        assert eta1(graph, predictions) == 10
        assert eta2(graph, predictions) == 2

    def test_eta2_much_smaller_on_star(self):
        graph = star(10)
        predictions = all_ones_mis(graph)
        assert eta1(graph, predictions) == 10
        assert eta2(graph, predictions) == 2

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_error_zero_iff_no_components(self, seed):
        graph = random_graph(12, 0.3, seed)
        predictions = random_predictions_bits(graph, seed + 2)
        components = error_components("mis", graph, predictions)
        assert (eta1(graph, predictions) == 0) == (not components)


class TestEtaBW:
    def test_figure2_grid_pattern(self):
        """The paper's Figure 2 example: η₁ = n while η_bw = 4."""
        graph = grid2d(12, 12)
        predictions = grid_blackwhite_predictions(graph)
        assert eta1(graph, predictions) == graph.n
        assert eta_bw(graph, predictions) == 4

    def test_eta_bw_at_most_eta1(self):
        for seed in range(10):
            graph = random_graph(16, 0.25, seed)
            predictions = random_predictions_bits(graph, seed + 3)
            assert eta_bw(graph, predictions) <= eta1(graph, predictions)

    def test_uniform_prediction_makes_them_equal(self, path5):
        predictions = all_ones_mis(path5)
        assert eta_bw(path5, predictions) == eta1(path5, predictions)


class TestEtaT:
    def test_directed_line_pattern_example(self):
        """Section 9.2: η₁ = 3k but η_t = 2."""
        graph = directed_line(30)
        predictions = directed_line_pattern(graph)
        assert eta1(graph, predictions) == 30
        assert eta_t(graph, predictions) == 2

    def test_eta_t_ordering(self):
        for seed in range(8):
            graph = random_rooted_tree(20, seed=seed)
            predictions = random_predictions_bits(graph, seed + 9)
            t = eta_t(graph, predictions)
            bw = eta_bw(graph, predictions)
            one = eta1(graph, predictions)
            assert t <= bw <= one

    def test_eta_t_zero_on_perfect(self):
        graph = random_rooted_tree(25, seed=2)
        predictions = perfect_predictions(MIS, graph)
        assert eta_t(graph, predictions) == 0

    def test_all_ones_on_directed_line(self):
        graph = directed_line(10)
        predictions = all_ones_mis(graph)
        assert eta_t(graph, predictions) == 10


class TestEtaHamming:
    def test_zero_on_correct_predictions(self, path5):
        predictions = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        assert eta_hamming(path5, predictions) == 0

    def test_single_flip(self, path5):
        predictions = {1: 1, 2: 0, 3: 1, 4: 0, 5: 0}
        assert eta_hamming(path5, predictions) == 1

    def test_global_measure_counts_all_components(self):
        """The weakness the paper highlights: η_H sums over components."""
        from repro.graphs import path_forest

        graph = path_forest(4, 3)
        predictions = all_zeros_mis(graph)
        # Each 3-path needs at least one flip; eta1 sees only the largest.
        assert eta_hamming(graph, predictions) >= 4
        assert eta1(graph, predictions) == 3


class TestDiameterNonMonotonicity:
    def test_figure1_wheel_argument(self):
        """Figure 1: the rim error component has far larger diameter than
        the whole graph, so max component diameter is not usable."""
        k = 12
        graph = wheel_fk(k)
        # Center predicted 1, everything else 0: the error components are
        # the rim (spokes are dominated... compute from the base algorithm).
        predictions = {v: 0 for v in graph.nodes}
        predictions[2 * k + 1] = 1
        components = error_components("mis", graph, predictions)
        diameters = component_diameters(graph, components)
        assert max(diameters) == k // 2
        assert graph.diameter() == 4

        # The worse prediction (all ones) yields a *smaller* diameter.
        worse = all_ones_mis(graph)
        worse_components = error_components("mis", graph, worse)
        worse_diameters = component_diameters(graph, worse_components)
        assert max(worse_diameters) == 4
        assert max(worse_diameters) < max(diameters)
