"""Tests for the simulated learning-based (ensemble) predictor."""

import pytest

from repro.bench.algorithms import matching_simple, mis_simple
from repro.core import run
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi, line
from repro.predictions import ensemble_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, UNMATCHED, VERTEX_COLORING


GRAPH = connected_erdos_renyi(50, 0.06, seed=11)


class TestEnsemblePredictor:
    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            ensemble_predictions(MIS, GRAPH, samples=-1)

    def test_zero_samples_is_untrained_default(self):
        predictions = ensemble_predictions(MIS, GRAPH, samples=0)
        assert set(predictions.values()) == {0}

    def test_predictions_cover_all_nodes(self):
        predictions = ensemble_predictions(MIS, GRAPH, samples=3, seed=1)
        assert set(predictions) == set(GRAPH.nodes)

    def test_deterministic_per_seed(self):
        first = ensemble_predictions(MIS, GRAPH, samples=5, seed=2)
        second = ensemble_predictions(MIS, GRAPH, samples=5, seed=2)
        assert first == second

    def test_more_consistent_samples_reduce_error(self):
        errors = {
            k: eta1(
                GRAPH,
                ensemble_predictions(
                    MIS, GRAPH, samples=k, churn=2, seed=3, consistent_order=True
                ),
            )
            for k in (0, 1, 9)
        }
        assert errors[1] < errors[0]
        assert errors[9] <= errors[1]

    def test_diverse_ensembles_do_not_converge(self):
        """Solution multiplicity (paper §5): majority over many *different*
        valid solutions drifts away from all of them."""
        small = eta1(
            GRAPH,
            ensemble_predictions(
                MIS, GRAPH, samples=1, churn=2, seed=3, consistent_order=False
            ),
        )
        large = eta1(
            GRAPH,
            ensemble_predictions(
                MIS, GRAPH, samples=25, churn=2, seed=3, consistent_order=False
            ),
        )
        assert large > small

    def test_algorithms_solve_with_ensemble_predictions(self):
        for k in (0, 1, 5):
            predictions = ensemble_predictions(MIS, GRAPH, samples=k, seed=4)
            result = run(mis_simple(), GRAPH, predictions)
            assert MIS.is_solution(GRAPH, result.outputs), k

    def test_matching_ensemble_is_well_typed(self):
        predictions = ensemble_predictions(MATCHING, GRAPH, samples=4, seed=5)
        for node, value in predictions.items():
            assert value == UNMATCHED or value in GRAPH.neighbors(node)
        result = run(matching_simple(), GRAPH, predictions)
        assert MATCHING.is_solution(GRAPH, result.outputs)

    def test_coloring_ensemble(self):
        predictions = ensemble_predictions(
            VERTEX_COLORING, GRAPH, samples=4, seed=6
        )
        assert all(isinstance(v, int) for v in predictions.values())

    def test_edge_coloring_ensemble_restricted_to_real_edges(self):
        predictions = ensemble_predictions(
            EDGE_COLORING, line(12), samples=4, churn=1, seed=7
        )
        graph = line(12)
        for node, entry in predictions.items():
            assert set(entry) <= set(graph.neighbors(node))
