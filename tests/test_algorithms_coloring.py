"""Tests for the vertex-coloring algorithms (Section 8.2 + Linial)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.coloring import (
    LinialColoringAlgorithm,
    PaletteGreedyColoringAlgorithm,
    VertexColoringBaseAlgorithm,
    VertexColoringInitializationAlgorithm,
    linial_round_bound,
    linial_schedule,
)
from repro.core import run
from repro.errors import vertex_coloring_base_partial
from repro.faults import FaultPlan
from repro.graphs import (
    clique,
    erdos_renyi,
    grid2d,
    line,
    random_ids_from_domain,
    random_regular,
    ring,
    star,
)
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import VERTEX_COLORING
from repro.simulator import SyncEngine

from tests.conftest import random_graph


def partial_run(algorithm, graph, predictions, rounds):
    engine = SyncEngine(
        graph, lambda v: algorithm.build_program(), predictions=predictions
    )
    return engine.run(stop_after=rounds).outputs


class TestBaseAndInitialization:
    def test_base_matches_pure_function(self):
        for seed in range(8):
            graph = random_graph(14, 0.3, seed)
            predictions = noisy_predictions(
                VERTEX_COLORING, graph, 0.4, seed=seed
            )
            outputs = partial_run(
                VertexColoringBaseAlgorithm(), graph, predictions, 2
            )
            assert outputs == vertex_coloring_base_partial(graph, predictions)

    def test_base_consistency_two_rounds(self, path5):
        predictions = perfect_predictions(VERTEX_COLORING, path5)
        outputs = partial_run(
            VertexColoringBaseAlgorithm(), path5, predictions, 2
        )
        assert outputs == predictions

    def test_initialization_contains_base(self):
        for seed in range(8):
            graph = random_graph(14, 0.3, seed)
            predictions = noisy_predictions(
                VERTEX_COLORING, graph, 0.5, seed=seed
            )
            base = partial_run(
                VertexColoringBaseAlgorithm(), graph, predictions, 2
            )
            init = partial_run(
                VertexColoringInitializationAlgorithm(), graph, predictions, 2
            )
            assert set(base).issubset(set(init))

    def test_initialization_tie_breaks_same_prediction(self, triangle):
        predictions = {1: 2, 2: 2, 3: 2}
        init = partial_run(
            VertexColoringInitializationAlgorithm(), triangle, predictions, 2
        )
        assert init == {3: 2}

    def test_partials_are_extendable(self):
        graph = random_graph(15, 0.3, 5)
        predictions = noisy_predictions(VERTEX_COLORING, graph, 0.6, seed=1)
        init = partial_run(
            VertexColoringInitializationAlgorithm(), graph, predictions, 2
        )
        assert VERTEX_COLORING.is_extendable(graph, init)


class TestPaletteGreedy:
    def test_valid_everywhere(self, small_zoo):
        for graph in small_zoo:
            result = run(PaletteGreedyColoringAlgorithm(), graph)
            assert VERTEX_COLORING.is_solution(graph, result.outputs), graph.name

    def test_round_bound_is_component_size(self):
        for seed in range(8):
            graph = random_graph(14, 0.25, seed)
            result = run(PaletteGreedyColoringAlgorithm(), graph)
            bound = max((len(c) for c in graph.components()), default=1)
            assert result.rounds <= bound

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(13, 0.35, seed)
        result = run(PaletteGreedyColoringAlgorithm(), graph)
        assert VERTEX_COLORING.is_solution(graph, result.outputs)


class TestLinialSchedule:
    def test_schedule_reduces_colors(self):
        steps, final = linial_schedule(10**6, 4)
        assert steps
        m = 10**6
        for k, q in steps:
            assert q >= k * 4 + 1
            assert q ** (k + 1) >= m
            assert q * q < m
            m = q * q
        assert final == m

    def test_final_color_count_is_delta_squared_ish(self):
        for delta in (2, 3, 5, 8):
            _, final = linial_schedule(10**6, delta)
            assert final <= (4 * delta + 2) ** 2

    def test_round_bound_independent_of_n(self):
        # Depends on d and delta only.
        assert linial_round_bound(1000, 4) == linial_round_bound(1000, 4)

    def test_round_bound_grows_slowly_in_d(self):
        small = linial_round_bound(10**2, 3)
        large = linial_round_bound(10**8, 3)
        assert large <= small + 6  # log*-type growth in d


class TestLinialColoring:
    def test_valid_coloring(self):
        for graph in (line(12), ring(9), star(7), grid2d(4, 4), clique(5)):
            result = run(LinialColoringAlgorithm(), graph)
            assert VERTEX_COLORING.is_solution(graph, result.outputs), graph.name

    def test_respects_declared_bound(self):
        graph = grid2d(5, 5)
        algorithm = LinialColoringAlgorithm()
        result = run(algorithm, graph)
        assert result.rounds <= algorithm.round_bound(
            graph.n, graph.delta, graph.d
        )

    def test_large_id_domain(self):
        graph = random_ids_from_domain(ring(12), d=10**6, seed=3)
        result = run(LinialColoringAlgorithm(), graph)
        assert VERTEX_COLORING.is_solution(graph, result.outputs)

    def test_congest_width(self):
        """The coloring sends only integers: CONGEST-compatible."""
        graph = random_regular(16, 3, seed=2)
        result = run(LinialColoringAlgorithm(), graph)
        assert result.congest_compatible(graph.n)

    def test_fault_tolerance_under_crashes(self):
        """Crashing nodes mid-run never breaks properness of survivors —
        the Section 7.4 requirement on a Parallel-Template part 1."""
        graph = erdos_renyi(24, 0.2, seed=3)
        algorithm = LinialColoringAlgorithm(respect_neighbor_outputs=False)
        crash_rounds = {3: 1, 8: 2, 15: 4, 20: 6}
        result = run(algorithm, graph, faults=FaultPlan.crash_stop(crash_rounds))
        survivors = {
            v: out for v, out in result.outputs.items() if v not in crash_rounds
        }
        for node, color in survivors.items():
            for other in graph.neighbors(node):
                if other in survivors:
                    assert survivors[other] != color

    def test_isolated_nodes_color_one(self):
        from repro.graphs import empty_graph

        result = run(LinialColoringAlgorithm(), empty_graph(4))
        assert set(result.outputs.values()) == {1}

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(14, 0.3, seed)
        result = run(LinialColoringAlgorithm(), graph)
        assert VERTEX_COLORING.is_solution(graph, result.outputs)
