"""The vectorized whole-frontier backend (``schedule="vectorized"``).

The contract of the compiled kernels is *bit-identity*: for every
registered greedy family, a vectorized run must reproduce the
interpreted engine's outputs, round counts, message counts and CONGEST
bit accounting exactly — same numbers, not approximately.  The
differential fuzz below checks that across families, graph shapes and
prediction-error levels.  The rest of the file pins the redesigned API
surface around the backend: :class:`repro.ExecutionPolicy`,
:func:`repro.schedules`, the kernel-capability handshake (loud
:class:`~repro.kernels.UnsupportedScheduleError` vs.
``fallback="interpret"``), and the kernel column in sweep/bench
exports.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import ExecutionPolicy, RunConfig, UnsupportedScheduleError, run
from repro.algorithms.coloring import PaletteGreedyColoringAlgorithm
from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import GreedyMISAlgorithm
from repro.bench.algorithms import mis_simple
from repro.graphs import erdos_renyi, line, random_tree
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import MATCHING, MIS, VERTEX_COLORING
from repro.simulator import CONGEST, schedule_capabilities

FAMILIES = [
    ("mis", MIS, GreedyMISAlgorithm, "greedy-mis"),
    ("matching", MATCHING, GreedyMatchingAlgorithm, "greedy-matching"),
    ("coloring", VERTEX_COLORING, PaletteGreedyColoringAlgorithm,
     "greedy-coloring"),
]

VECTORIZED = ExecutionPolicy(schedule="vectorized")


def _footprint(result):
    """Everything the bit-identity contract covers, as one comparable."""
    return {
        "outputs": result.outputs,
        "rounds": result.rounds,
        "rounds_executed": result.rounds_executed,
        "messages": result.message_count,
        "total_bits": result.total_bits,
        "max_message_bits": result.max_message_bits,
        "violations": result.bandwidth_violations,
        "terminations": {
            node: record.termination_round
            for node, record in result.records.items()
        },
    }


def _assert_identical(algorithm_cls, graph, predictions=None, **kwargs):
    interpreted = run(algorithm_cls(), graph, predictions, **kwargs)
    vectorized = run(
        algorithm_cls(), graph, predictions, policy=VECTORIZED, **kwargs
    )
    assert _footprint(vectorized) == _footprint(interpreted)
    return interpreted, vectorized


# ----------------------------------------------------------------------
# Differential fuzz: vectorized ≡ interpreted, bit for bit
# ----------------------------------------------------------------------
class TestDifferentialFuzz:
    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f[0])
    @pytest.mark.parametrize("rate", [0.0, 0.3, 1.0])
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=12, deadline=None)
    def test_gnp_instances(self, family, rate, seed):
        _, problem, algorithm_cls, kernel = family
        n = 10 + seed % 40
        p = (0.05, 0.15, 0.5, 0.95)[seed % 4]
        graph = erdos_renyi(n, p, seed=seed)
        predictions = noisy_predictions(problem, graph, rate, seed=seed)
        interpreted, vectorized = _assert_identical(
            algorithm_cls, graph, predictions
        )
        assert vectorized.kernel == kernel
        assert interpreted.kernel is None
        assert not problem.verify_solution(graph, vectorized.outputs)

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f[0])
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_tree_instances(self, family, seed):
        _, problem, algorithm_cls, _ = family
        graph = random_tree(12 + seed % 60, seed=seed)
        predictions = perfect_predictions(problem, graph, seed=seed)
        _, vectorized = _assert_identical(algorithm_cls, graph, predictions)
        assert not problem.verify_solution(graph, vectorized.outputs)

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f[0])
    def test_congest_accounting_matches(self, family):
        _, _, algorithm_cls, _ = family
        graph = erdos_renyi(40, 0.2, seed=3)
        _assert_identical(algorithm_cls, graph, model=CONGEST)

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f[0])
    def test_fast_mode_matches(self, family):
        _, _, algorithm_cls, _ = family
        graph = erdos_renyi(35, 0.25, seed=5)
        interpreted, vectorized = _assert_identical(
            algorithm_cls, graph, fast=True
        )
        assert vectorized.total_bits == 0  # fast mode skips bit estimation

    def test_isolated_and_empty_graphs(self):
        for graph in (erdos_renyi(20, 0.0, seed=0), erdos_renyi(0, 0.5, seed=0)):
            _assert_identical(GreedyMISAlgorithm, graph)


# ----------------------------------------------------------------------
# Introspection: repro.schedules() and scheduler capabilities
# ----------------------------------------------------------------------
class TestSchedules:
    def test_all_schedules_listed(self):
        assert sorted(repro.schedules()) == [
            "async", "eager", "quiescent", "quiescent-debug", "vectorized",
        ]

    def test_vectorized_capabilities(self):
        caps = repro.schedules()["vectorized"]
        assert caps["kernels"] == (
            "greedy-coloring", "greedy-matching", "greedy-mis",
        )
        assert caps["profile"] is True
        assert caps["async"] is False

    def test_interpreted_schedules_have_no_kernels(self):
        for name, caps in repro.schedules().items():
            if name != "vectorized":
                assert caps["kernels"] == ()

    def test_matches_simulator_registry(self):
        assert repro.schedules() == schedule_capabilities()


# ----------------------------------------------------------------------
# ExecutionPolicy and the deprecation shim
# ----------------------------------------------------------------------
class TestExecutionPolicy:
    def test_policy_is_hashable_and_validated(self):
        assert hash(VECTORIZED) == hash(ExecutionPolicy(schedule="vectorized"))
        with pytest.raises(ValueError, match="schedule"):
            ExecutionPolicy(schedule="nope")
        with pytest.raises(ValueError, match="fallback"):
            ExecutionPolicy(schedule="vectorized", fallback="nope")
        with pytest.raises(ValueError, match="vectorized"):
            ExecutionPolicy(schedule="eager", fallback="interpret")

    def test_runconfig_exposes_policy_fields(self):
        config = RunConfig(policy=ExecutionPolicy(schedule="async", phi=2))
        assert config.schedule == "async"
        assert config.phi == 2
        assert config.policy.phi == 2

    def test_flat_kwargs_warn_on_runconfig(self):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            config = RunConfig(schedule="quiescent")
        assert config.policy == ExecutionPolicy(schedule="quiescent")

    def test_flat_kwargs_warn_on_run(self):
        graph = line(6)
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            result = run(GreedyMISAlgorithm(), graph, schedule="quiescent")
        assert result.all_terminated

    def test_policy_kwarg_does_not_warn(self):
        graph = line(6)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(GreedyMISAlgorithm(), graph,
                policy=ExecutionPolicy(schedule="quiescent"))
            RunConfig(policy=ExecutionPolicy(schedule="quiescent"))

    def test_with_overrides_routes_policy_fields_silently(self):
        config = RunConfig(seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            updated = config.with_overrides(schedule="vectorized", seed=2)
        assert updated.schedule == "vectorized"
        assert updated.seed == 2
        assert config.schedule == "eager"  # frozen original untouched


# ----------------------------------------------------------------------
# The capability handshake: loud failure or explicit fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_unregistered_program_raises(self):
        graph = erdos_renyi(12, 0.3, seed=0)
        algorithm = mis_simple()
        predictions = perfect_predictions(MIS, graph, seed=0)
        with pytest.raises(UnsupportedScheduleError, match="no vectorized"):
            run(algorithm, graph, predictions, policy=VECTORIZED)

    def test_sinks_raise(self):
        from repro.obs import MemoryEventSink

        graph = erdos_renyi(12, 0.3, seed=0)
        with pytest.raises(UnsupportedScheduleError, match="sink"):
            run(GreedyMISAlgorithm(), graph, policy=VECTORIZED,
                sinks=[MemoryEventSink()])

    def test_fallback_interpret_warns_and_matches(self):
        graph = erdos_renyi(12, 0.3, seed=0)
        algorithm = mis_simple()
        predictions = perfect_predictions(MIS, graph, seed=0)
        with pytest.warns(RuntimeWarning, match="falling back"):
            fell_back = run(
                algorithm, graph, predictions,
                policy=ExecutionPolicy(
                    schedule="vectorized", fallback="interpret"
                ),
            )
        reference = run(
            algorithm, graph, predictions,
            policy=ExecutionPolicy(schedule="quiescent"),
        )
        assert fell_back.kernel is None
        assert _footprint(fell_back) == _footprint(reference)

    def test_sweep_cell_failure_is_loud(self):
        from repro.exec import Sweep

        sweep = Sweep(name="vec-fallback")
        sweep.add(
            "bad", erdos_renyi(10, 0.3, seed=1), mis_simple, problem="mis",
            predictions=lambda graph: perfect_predictions(MIS, graph, seed=1),
            policy=VECTORIZED,
        )
        with pytest.raises(UnsupportedScheduleError, match="no vectorized"):
            sweep.run("serial")

    def test_sweep_cell_fallback_interpret_runs(self):
        from repro.exec import Sweep

        sweep = Sweep(name="vec-fallback-ok")
        sweep.add(
            "ok", erdos_renyi(10, 0.3, seed=1), mis_simple, problem="mis",
            predictions=lambda graph: perfect_predictions(MIS, graph, seed=1),
            policy=ExecutionPolicy(schedule="vectorized", fallback="interpret"),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = sweep.run("serial")
        row = result.rows[0]
        assert row.failure is None
        assert row.valid is True
        assert row.kernel is None

    def test_cli_run_fails_loud_without_fallback(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="fallback"):
            main(["run", "--template", "simple",
                  "--graph", "gnp:20:0.2", "--schedule", "vectorized"])

    def test_cli_run_fallback_interpret(self):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            code = main(["run", "--template", "simple",
                         "--graph", "gnp:20:0.2", "--schedule", "vectorized",
                         "--fallback", "interpret"])
        assert code == 0

    def test_cli_run_vectorized_kernel(self, capsys):
        from repro.cli import main

        code = main(["run", "--template", "greedy",
                     "--graph", "gnp:50:0.1", "--schedule", "vectorized"])
        assert code == 0
        assert "kernel     : greedy-mis" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Observability: kernel phase, kernel column, sweep telemetry
# ----------------------------------------------------------------------
class TestVectorizedObservability:
    def test_profile_has_kernel_phase(self):
        from repro.obs.profile import PHASES

        assert "kernel" in PHASES
        graph = erdos_renyi(30, 0.2, seed=2)
        result = run(GreedyMISAlgorithm(), graph, policy=VECTORIZED,
                     profile=True)
        summary = result.profile.summary()
        assert summary["kernel_s"] > 0.0
        assert summary["compose_s"] == 0.0
        assert "kernel ms" in result.profile.table()

    def test_sweep_kernel_column_and_telemetry(self, tmp_path):
        from repro.exec import Sweep

        graph = random_tree(200, seed=1)
        sweep = Sweep(name="vec-sweep")
        sweep.add("vec", graph, GreedyMISAlgorithm, problem="mis",
                  policy=VECTORIZED)
        sweep.add("interp", graph, GreedyMISAlgorithm, problem="mis")
        result = sweep.run("serial")
        assert [row.kernel for row in result.rows] == ["greedy-mis", None]
        assert result.rows[0].as_tuple()[1:] != result.rows[1].as_tuple()[1:]
        assert result.telemetry()["vectorized_cells"] == 1

        path = tmp_path / "cells.csv"
        result.to_csv(str(path))
        header, vec_row, interp_row = path.read_text().splitlines()
        assert header.split(",")[12] == "kernel"
        assert vec_row.split(",")[12] == "greedy-mis"
        assert interp_row.split(",")[12] == ""

    def test_bench_baseline_round_trips_kernel(self, tmp_path):
        from repro.exec import Sweep
        from repro.obs.bench import load_baseline, record_run

        graph = random_tree(150, seed=2)
        sweep = Sweep(name="vec-bench")
        sweep.add("cell", graph, GreedyMISAlgorithm, problem="mis",
                  policy=VECTORIZED)
        path = str(tmp_path / "BENCH_vec.json")
        payload, diff = record_run(path, sweep.run("serial"))
        assert diff is None  # first recording
        assert payload["cells"][0]["kernel"] == "greedy-mis"
        assert load_baseline(path)["cells"][0]["kernel"] == "greedy-mis"

        # A second identical run diffs clean against the baseline.
        _, diff = record_run(path, sweep.run("serial"))
        assert diff is not None and not diff.determinism_breaks

    def test_older_baseline_without_kernel_column_is_tolerated(self, tmp_path):
        import json

        from repro.exec import Sweep
        from repro.obs.bench import load_baseline, record_run

        graph = random_tree(120, seed=3)
        sweep = Sweep(name="vec-old-baseline")
        sweep.add("cell", graph, GreedyMISAlgorithm, problem="mis",
                  policy=VECTORIZED)
        path = str(tmp_path / "BENCH_old.json")
        record_run(path, sweep.run("serial"))
        payload = load_baseline(path)
        for cell in payload["cells"]:  # simulate a pre-kernel-era baseline
            del cell["kernel"]
            del cell["retried"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        _, diff = record_run(path, sweep.run("serial"))
        assert diff is not None and not diff.determinism_breaks
