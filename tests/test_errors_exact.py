"""Tests for exact α / τ computation (repro.errors.exact)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.exact import max_independent_set_size, min_vertex_cover_size
from repro.graphs import (
    clique,
    complete_bipartite,
    erdos_renyi,
    grid2d,
    line,
    ring,
    star,
    wheel_fk,
)


def brute_force_alpha(graph) -> int:
    nodes = list(graph.nodes)
    best = 0
    for size in range(len(nodes), 0, -1):
        if size <= best:
            break
        for subset in itertools.combinations(nodes, size):
            chosen = set(subset)
            if all(
                not graph.has_edge(u, v)
                for u in chosen
                for v in chosen
                if u < v
            ):
                best = max(best, size)
                break
    return best


class TestKnownValues:
    def test_path_alpha(self):
        assert max_independent_set_size(line(1)) == 1
        assert max_independent_set_size(line(2)) == 1
        assert max_independent_set_size(line(5)) == 3
        assert max_independent_set_size(line(6)) == 3

    def test_cycle_alpha(self):
        assert max_independent_set_size(ring(5)) == 2
        assert max_independent_set_size(ring(6)) == 3
        assert max_independent_set_size(ring(7)) == 3

    def test_clique_alpha_is_one(self):
        assert max_independent_set_size(clique(7)) == 1

    def test_star_alpha_is_leaves(self):
        assert max_independent_set_size(star(8)) == 7

    def test_complete_bipartite(self):
        assert max_independent_set_size(complete_bipartite(3, 5)) == 5

    def test_grid_alpha_is_half(self):
        assert max_independent_set_size(grid2d(4, 4)) == 8
        assert max_independent_set_size(grid2d(5, 5)) == 13

    def test_wheel(self):
        # All six spoke nodes form a maximum independent set (each spoke
        # node blocks its rim node and the center).
        graph = wheel_fk(6)
        assert max_independent_set_size(graph) == 6

    def test_tau_complement_identity(self):
        for graph in (line(7), ring(8), star(5), clique(4)):
            assert (
                min_vertex_cover_size(graph)
                == graph.n - max_independent_set_size(graph)
            )

    def test_subset_restriction(self):
        graph = ring(8)
        assert max_independent_set_size(graph, nodes=[1, 2, 3]) == 2

    def test_empty_subset(self):
        assert max_independent_set_size(line(4), nodes=[]) == 0


class TestAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_sparse(self, seed):
        graph = erdos_renyi(11, 0.2, seed=seed)
        assert max_independent_set_size(graph) == brute_force_alpha(graph)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_dense(self, seed):
        graph = erdos_renyi(10, 0.6, seed=seed)
        assert max_independent_set_size(graph) == brute_force_alpha(graph)


class TestScaling:
    def test_moderate_grid_is_fast(self):
        # 8x8 grid: 64 nodes; the reductions must keep this quick.
        assert max_independent_set_size(grid2d(8, 8)) == 32

    def test_large_sparse_random(self):
        graph = erdos_renyi(60, 0.05, seed=3)
        alpha = max_independent_set_size(graph)
        assert 0 < alpha <= 60
