"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    DistGraph,
    clique,
    erdos_renyi,
    grid2d,
    line,
    ring,
    star,
)


def random_graph(n: int, p: float, seed: int) -> DistGraph:
    """A seeded G(n, p) instance (helper for hypothesis-style loops)."""
    return erdos_renyi(n, p, seed=seed)


def random_predictions_bits(graph: DistGraph, seed: int) -> dict:
    """Uniformly random MIS predictions."""
    rng = random.Random(f"{seed}:predbits")
    return {node: rng.randint(0, 1) for node in graph.nodes}


@pytest.fixture
def triangle() -> DistGraph:
    """K3 with ids 1, 2, 3."""
    return clique(3)


@pytest.fixture
def path5() -> DistGraph:
    """A 5-node path 1-2-3-4-5."""
    return line(5)


@pytest.fixture
def small_zoo() -> list:
    """A small assortment of graph shapes for cross-shape checks."""
    return [
        line(1),
        line(2),
        line(7),
        ring(6),
        star(8),
        clique(5),
        grid2d(3, 4),
        erdos_renyi(15, 0.25, seed=4),
        erdos_renyi(12, 0.0, seed=4),
    ]
