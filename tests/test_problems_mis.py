"""Tests for the MIS problem definition (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import clique, line, ring, star, erdos_renyi
from repro.problems import MIS

from tests.conftest import random_graph


class TestVerifySolution:
    def test_valid_solution_accepted(self, path5):
        assert MIS.is_solution(path5, {1: 1, 2: 0, 3: 1, 4: 0, 5: 1})

    def test_missing_output_rejected(self, path5):
        violations = MIS.verify_solution(path5, {1: 1, 2: 0})
        assert any("missing" in v for v in violations)

    def test_adjacent_ones_rejected(self, path5):
        violations = MIS.verify_solution(path5, {1: 1, 2: 1, 3: 0, 4: 1, 5: 0})
        assert any("both output 1" in v for v in violations)

    def test_non_maximal_rejected(self, path5):
        violations = MIS.verify_solution(path5, {1: 1, 2: 0, 3: 0, 4: 0, 5: 1})
        assert violations

    def test_non_bit_output_rejected(self, triangle):
        violations = MIS.verify_solution(triangle, {1: 2, 2: 0, 3: 0})
        assert any("expected 0 or 1" in v for v in violations)

    def test_empty_graph_vacuously_solved(self):
        from repro.graphs import DistGraph

        assert MIS.is_solution(DistGraph({}), {})


class TestPartialAndExtendable:
    def test_empty_partial_is_extendable(self, path5):
        assert MIS.is_extendable(path5, {})

    def test_node_and_neighbors_pattern_extendable(self, path5):
        assert MIS.is_extendable(path5, {2: 1, 1: 0, 3: 0})

    def test_one_without_decided_neighbor_not_extendable(self, path5):
        assert not MIS.is_extendable(path5, {2: 1, 1: 0})

    def test_zero_without_one_neighbor_not_extendable(self, path5):
        assert not MIS.is_extendable(path5, {3: 0})

    def test_adjacent_ones_not_extendable(self, path5):
        assert not MIS.is_extendable(path5, {1: 1, 2: 1, 3: 0})

    def test_full_solution_is_extendable(self, path5):
        assert MIS.is_extendable(path5, {1: 1, 2: 0, 3: 1, 4: 0, 5: 1})

    def test_exact_extendability_agrees_on_canonical_partials(self):
        graph = erdos_renyi(9, 0.3, seed=1)
        solution = MIS.solve_sequential(graph)
        chosen = MIS.independent_set_of(solution)
        some = sorted(chosen)[:1]
        partial = {some[0]: 1} if some else {}
        for other in graph.neighbors(some[0]) if some else []:
            partial[other] = 0
        assert MIS.is_extendable(graph, partial)
        assert MIS.is_extendable_exact(graph, partial)

    def test_exact_extendability_rejects_bad_partial(self, path5):
        assert not MIS.is_extendable_exact(path5, {2: 1, 1: 0})


class TestSequentialSolver:
    def test_solver_produces_valid_solutions(self, small_zoo):
        for graph in small_zoo:
            solution = MIS.solve_sequential(graph)
            assert MIS.is_solution(graph, solution), graph.name

    def test_order_changes_solution(self):
        graph = line(4)
        first = MIS.solve_sequential(graph, order=[1, 2, 3, 4])
        second = MIS.solve_sequential(graph, order=[2, 1, 3, 4])
        assert first != second

    def test_clique_has_single_one(self):
        solution = MIS.solve_sequential(clique(6))
        assert sum(solution.values()) == 1

    def test_star_center_first(self):
        solution = MIS.solve_sequential(star(5), order=[1, 2, 3, 4, 5])
        assert solution[1] == 1
        assert sum(solution.values()) == 1

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_solver_valid_on_random_graphs(self, seed):
        graph = random_graph(14, 0.3, seed)
        solution = MIS.solve_sequential(graph)
        assert MIS.is_solution(graph, solution)


class TestEnumeration:
    def test_all_maximal_independent_sets_of_path(self):
        sets = {frozenset(s) for s in MIS.all_maximal_independent_sets(line(3))}
        assert sets == {frozenset({2}), frozenset({1, 3})}

    def test_all_maximal_independent_sets_of_triangle(self):
        sets = {frozenset(s) for s in MIS.all_maximal_independent_sets(clique(3))}
        assert sets == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_every_enumerated_set_is_a_solution(self):
        graph = ring(6)
        for chosen in MIS.all_maximal_independent_sets(graph):
            outputs = {v: (1 if v in chosen else 0) for v in graph.nodes}
            assert MIS.is_solution(graph, outputs)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_enumeration_matches_verifier(self, seed):
        graph = random_graph(9, 0.35, seed)
        count = 0
        for chosen in MIS.all_maximal_independent_sets(graph):
            outputs = {v: (1 if v in chosen else 0) for v in graph.nodes}
            assert MIS.is_solution(graph, outputs)
            count += 1
        assert count >= 1
