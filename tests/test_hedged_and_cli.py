"""Tests for the trade-off template (Section 10 exploration) and the CLI."""

import pytest

from repro import HedgedConsecutiveTemplate, run
from repro.algorithms.mis import (
    GreedyMISAlgorithm,
    MISCleanupAlgorithm,
    MISInitializationAlgorithm,
)
from repro.algorithms.mis.greedy import GreedyMISProgram
from repro.core import FunctionalAlgorithm
from repro.errors import eta1
from repro.graphs import line, sorted_path_ids
from repro.predictions import all_zeros_mis, perfect_predictions
from repro.problems import MIS


def hedged(trust):
    reference = FunctionalAlgorithm(
        "greedy-ref",
        GreedyMISProgram,
        round_bound=lambda n, delta, d: n + 1,
        safe_pause_interval=2,
    )
    return HedgedConsecutiveTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        MISCleanupAlgorithm(),
        reference,
        trust=trust,
    )


class TestHedgedTemplate:
    def test_negative_trust_rejected(self):
        with pytest.raises(ValueError):
            hedged(-0.5)

    def test_consistency_independent_of_trust(self):
        graph = sorted_path_ids(line(30))
        predictions = perfect_predictions(MIS, graph, seed=1)
        for trust in (0.0, 0.25, 1.0, 2.0):
            result = run(hedged(trust), graph, predictions)
            assert result.rounds <= 3
            assert MIS.is_solution(graph, result.outputs)

    def test_zero_trust_worst_case_is_reference_cost(self):
        """λ = 0: straight to the reference — worst case ≈ c + c' + n."""
        graph = sorted_path_ids(line(40))
        result = run(hedged(0.0), graph, all_zeros_mis(graph))
        assert MIS.is_solution(graph, result.outputs)
        assert result.rounds <= 3 + 1 + graph.n + 1

    def test_trust_extends_degradation_window(self):
        """With η₁ ≈ n/2 (half the line corrupted), high trust lets U
        finish within its slice (rounds ≈ η), while zero trust pays the
        clean-up plus the full reference start-up."""
        graph = sorted_path_ids(line(60))
        predictions = perfect_predictions(MIS, graph, seed=1)
        corrupted = dict(predictions)
        for node in range(1, 31):
            corrupted[node] = 0
        error = eta1(graph, corrupted)
        assert error >= 20

        trusting = run(hedged(1.0), graph, corrupted)
        distrusting = run(hedged(0.0), graph, corrupted)
        assert MIS.is_solution(graph, trusting.outputs)
        assert MIS.is_solution(graph, distrusting.outputs)
        # Trusting: degradation bound f(eta) + c + O(1).
        assert trusting.rounds <= error + 3 + 2

    def test_hedging_is_free_when_reference_equals_u(self):
        """An empirical finding on the Section 10 question: when R = U
        (greedy both ways), hedging costs nothing — U's steady progress
        means the λ·r 'wasted' rounds were never wasted.  Worst cases are
        flat in λ (within O(1))."""
        graph = sorted_path_ids(line(48))
        predictions = all_zeros_mis(graph)
        costs = {
            trust: run(hedged(trust), graph, predictions).rounds
            for trust in (0.0, 0.5, 1.0)
        }
        assert max(costs.values()) - min(costs.values()) <= 3
        for trust, rounds in costs.items():
            assert rounds <= 3 + (1 + trust) * (graph.n + 1) + 1 + 3

    def test_worst_case_grows_with_trust_against_fast_reference(self):
        """With a reference far faster than U in the worst case (the
        O(Δ² + log* d) Linial MIS), the trade-off is real: all-wrong
        predictions cost ≈ c + λ·r + c' + r, growing with λ."""
        from repro.algorithms.mis import LinialMISAlgorithm

        graph = sorted_path_ids(line(64))
        reference = LinialMISAlgorithm()
        cap = reference.round_bound(graph.n, graph.delta, graph.d)

        def hedged_fast(trust):
            return HedgedConsecutiveTemplate(
                MISInitializationAlgorithm(),
                GreedyMISAlgorithm(),
                MISCleanupAlgorithm(),
                reference,
                trust=trust,
            )

        predictions = all_zeros_mis(graph)
        costs = {
            trust: run(hedged_fast(trust), graph, predictions).rounds
            for trust in (0.0, 1.0, 2.0)
        }
        for trust, rounds in costs.items():
            assert MIS.is_solution(
                graph, run(hedged_fast(trust), graph, predictions).outputs
            )
            assert rounds <= 3 + trust * cap + 2 + 1 + cap + 2
        # The worst case strictly grows once trust is large enough that
        # the U budget dominates the reference cap.
        assert costs[2.0] > costs[0.0]


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mis" in out and "parallel" in out

    def test_run_valid_instance(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--problem",
                "mis",
                "--template",
                "simple",
                "--graph",
                "gnp:30:0.1:2",
                "--noise",
                "0.2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "valid      : True" in out

    def test_sweep_csv(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep",
                "--problem",
                "vertex-coloring",
                "--graph",
                "ring:12",
                "--rates",
                "0,1.0",
                "--repeats",
                "1",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        content = csv_path.read_text().splitlines()
        assert content[0] == (
            "label,graph,n,seed,rounds,rounds_executed,valid,error,"
            "messages,dropped,delayed,retried,kernel,epoch,recourse,"
            "scratch_rounds,stuck,solution_size,shards,shared_bytes,"
            "ship_bytes,boundary_msgs,boundary_bytes,failure"
        )
        assert len(content) == 3

    def test_dynamic_synthetic(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "dyn.csv"
        code = main(
            [
                "dynamic",
                "--problem", "mis",
                "--template", "simple",
                "--graph", "gnp:30:0.12:2",
                "--epochs", "3",
                "--churn-add", "3",
                "--churn-remove", "3",
                "--csv", str(csv_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recourse" in out
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 5  # header + epochs 0..3
        assert "epoch,recourse,scratch_rounds" in lines[0]

    def test_dynamic_temporal_fallback(self, capsys):
        import warnings

        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code = main(
                [
                    "dynamic",
                    "--dataset", "collegemsg",
                    "--epochs", "2",
                    "--window", "1",
                    "--limit", "200",
                    "--no-scratch",
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert "collegemsg-synthetic" in out

    def test_graph_spec_errors(self):
        from repro.cli import parse_graph

        with pytest.raises(SystemExit):
            parse_graph("nope:3")
        with pytest.raises(SystemExit):
            parse_graph("grid:3")

    def test_graph_spec_families(self):
        from repro.cli import parse_graph

        assert parse_graph("line:5").n == 5
        assert parse_graph("grid:2:3").n == 6
        assert parse_graph("wheel:6").n == 13
        assert parse_graph("gnp:10:0.5:3").n == 10
        assert parse_graph("paths:3:4").n == 12
        assert parse_graph("ptree:3:2").n == 13

    def test_unknown_template_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--problem", "mis", "--template", "nope"])
