"""Tests for CONGEST bit accounting (repro.simulator.message)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulator.message import estimate_bits


class TestScalars:
    def test_none_costs_one_bit(self):
        assert estimate_bits(None) == 1

    def test_booleans_cost_one_bit(self):
        assert estimate_bits(True) == 1
        assert estimate_bits(False) == 1

    def test_zero_costs_one_bit(self):
        assert estimate_bits(0) == 1

    def test_small_int(self):
        assert estimate_bits(1) == 1
        assert estimate_bits(7) == 3

    def test_negative_int_charges_sign_bit(self):
        assert estimate_bits(-7) == estimate_bits(7) + 1

    def test_large_int_is_logarithmic(self):
        assert estimate_bits(2**20) == 21

    def test_float_is_fixed_width(self):
        assert estimate_bits(3.14) == 64

    def test_string_costs_per_char(self):
        assert estimate_bits("in") == 16

    def test_empty_string_still_positive(self):
        assert estimate_bits("") >= 1


class TestComposites:
    def test_tuple_sums_elements(self):
        assert estimate_bits((1, 1)) == 2 * (2 + 1)

    def test_dict_charges_keys_and_values(self):
        single = estimate_bits({1: 1})
        assert single == 2 + 1 + 1

    def test_nested_structures(self):
        nested = estimate_bits(("tag", (1, 2)))
        assert nested > estimate_bits("tag")

    def test_set_equals_sorted_list_cost(self):
        assert estimate_bits({1, 2, 3}) == estimate_bits([1, 2, 3])

    @given(st.integers(min_value=1))
    def test_positive_ints_match_bit_length(self, value):
        assert estimate_bits(value) == value.bit_length()

    @given(st.lists(st.integers(min_value=0, max_value=2**30)))
    def test_lists_are_monotone_in_length(self, values):
        longer = estimate_bits(values + [0])
        assert longer > estimate_bits(values) or not values

    def test_unknown_objects_fall_back_to_repr(self):
        class Strange:
            def __repr__(self):
                return "xx"

        assert estimate_bits(Strange()) == 16


class TestModelBudgets:
    def test_congest_budget_scales_with_log_n(self):
        from repro.simulator.models import CONGEST

        assert CONGEST.bandwidth_bits(1) == 32
        assert CONGEST.bandwidth_bits(1000) == 32 * 10

    def test_local_has_no_budget(self):
        from repro.simulator.models import LOCAL

        assert LOCAL.bandwidth_bits(10**6) is None
        assert LOCAL.allows(10**9, 2)

    def test_congest_allows_within_budget(self):
        from repro.simulator.models import CONGEST

        assert CONGEST.allows(40, 1000)
        assert not CONGEST.allows(10**6, 1000)

    def test_strict_congest_flag(self):
        from repro.simulator.models import strict_congest

        model = strict_congest(4)
        assert model.strict
        assert model.bandwidth_bits(15) == 16
