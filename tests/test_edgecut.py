"""Tests for edge-cut sharding: the boundary transport, the lockstep
driver, and the sweep integration.

The correctness bar is *bit identity*: an edge-cut run must reproduce the
unsharded run's observables exactly — outputs, round counts, message and
bit accounting, and failure sites — for every shard count.  The
differential fuzz below sweeps three greedy families across schedules and
shard counts; the CONGEST tests assert that a boundary message blowing
the bandwidth budget names the same round and edge as the unsharded run
(down to the exception text).
"""

from __future__ import annotations

import warnings

import pytest

from repro.bench.algorithms import (
    coloring_simple,
    greedy_mis_reference,
    matching_simple,
)
from repro.core import RunConfig, run
from repro.core.runner import ExecutionPolicy
from repro.exec import GraphSpec, Sweep
from repro.graphs import (
    complete_kary_tree,
    connected_erdos_renyi,
    preorder_kary_tree,
)
from repro.kernels import UnsupportedScheduleError
from repro.predictions import perfect_predictions
from repro.problems import PROBLEMS
from repro.shard import EdgecutView, edgecut_bounds, run_edgecut
from repro.simulator.engine import RoundLimitExceeded
from repro.simulator.models import strict_congest
from repro.simulator.transport import BandwidthExceeded

#: (algorithm factory, problem name, needs predictions) — one greedy
#: family per problem class exercised by the differential fuzz.
FAMILIES = (
    (greedy_mis_reference, "mis", False),
    (matching_simple, "matching", True),
    (coloring_simple, "vertex-coloring", True),
)

OBSERVABLES = (
    "rounds",
    "rounds_executed",
    "message_count",
    "total_bits",
    "max_message_bits",
)


def _fuzz_graph(seed, n=60, p=0.08):
    return connected_erdos_renyi(n, p, seed=seed)


def _setup(factory, problem_name, needs_predictions, graph, seed):
    algorithm = factory()
    predictions = None
    if needs_predictions:
        problem = PROBLEMS[problem_name]
        predictions = perfect_predictions(problem, graph, seed=seed)
    return algorithm, predictions


def _assert_identical(sharded, reference):
    assert sharded.outputs == reference.outputs
    for name in OBSERVABLES:
        assert getattr(sharded, name) == getattr(reference, name), name


# ----------------------------------------------------------------------
# Partition plan
# ----------------------------------------------------------------------
class TestEdgecutPlan:
    def test_bounds_partition_the_id_space(self):
        for n in (1, 2, 7, 60, 61):
            for shards in (2, 3, 5, 8):
                bounds = edgecut_bounds(n, shards)
                assert bounds[0] == 0 and bounds[-1] == n
                assert all(a <= b for a, b in zip(bounds, bounds[1:]))
                sizes = [b - a for a, b in zip(bounds, bounds[1:])]
                assert max(sizes) - min(sizes) <= 1

    def test_view_pins_parent_ambient_quantities(self):
        graph = _fuzz_graph(1)
        view = EdgecutView(graph, 0, 3)
        assert view.n == graph.n
        assert view.d == graph.d
        assert view.delta == graph.delta
        assert view.is_edgecut
        assert set(view.nodes) < set(graph.nodes)
        # Neighbor lists come from the parent: they may cross the cut.
        for node in view.nodes:
            assert view.neighbors(node) == graph.neighbors(node)

    def test_views_partition_the_nodes(self):
        graph = _fuzz_graph(2)
        shards = 4
        seen = []
        for shard in range(shards):
            seen.extend(EdgecutView(graph, shard, shards).nodes)
        assert sorted(seen) == sorted(graph.nodes)


# ----------------------------------------------------------------------
# Differential fuzz: sharded ≡ unsharded
# ----------------------------------------------------------------------
class TestDifferentialFuzz:
    @pytest.mark.parametrize("factory,problem,needs", FAMILIES)
    @pytest.mark.parametrize("schedule", ("eager", "quiescent"))
    def test_families_and_schedules(self, factory, problem, needs, schedule):
        for seed in (11, 12):
            graph = _fuzz_graph(seed)
            algorithm, predictions = _setup(factory, problem, needs, graph, seed)
            config = RunConfig(
                seed=seed, policy=ExecutionPolicy(schedule=schedule)
            )
            reference = run(algorithm, graph, predictions, config=config)
            for shards in (2, 3, 5):
                sharded = run_edgecut(
                    _setup(factory, problem, needs, graph, seed)[0],
                    graph,
                    predictions,
                    config=config,
                    shard_count=shards,
                )
                _assert_identical(sharded, reference)

    def test_many_shard_counts_including_excess(self):
        """Shard counts up to (and past) the point where shards own a
        handful of nodes each — empty frontiers must not desync the
        barrier."""
        graph = _fuzz_graph(21, n=40)
        algorithm = greedy_mis_reference()
        reference = run(algorithm, graph, seed=5)
        for shards in (2, 4, 8):
            sharded = run_edgecut(
                greedy_mis_reference(),
                graph,
                config=RunConfig(seed=5),
                shard_count=shards,
            )
            _assert_identical(sharded, reference)

    def test_preorder_tree_round_count_is_depth_bounded(self):
        graph = preorder_kary_tree(3, 5)
        reference = run(greedy_mis_reference(), graph, seed=1)
        assert reference.rounds <= 5 + 2
        sharded = run_edgecut(
            greedy_mis_reference(), graph, config=RunConfig(seed=1), shard_count=4
        )
        _assert_identical(sharded, reference)

    def test_complete_kary_tree_bfs_ids_also_identical(self):
        """BFS-numbered trees cut far more edges per block — identity
        must hold regardless of how unfriendly the partition is."""
        graph = complete_kary_tree(3, 4)
        reference = run(greedy_mis_reference(), graph, seed=9)
        sharded = run_edgecut(
            greedy_mis_reference(), graph, config=RunConfig(seed=9), shard_count=3
        )
        _assert_identical(sharded, reference)


# ----------------------------------------------------------------------
# CONGEST accounting parity (satellite: same round, same edge)
# ----------------------------------------------------------------------
class TestCongestParity:
    def test_total_bits_identical_under_congest(self):
        graph = _fuzz_graph(31)
        config = RunConfig(seed=3, model=strict_congest(factor=32))
        reference = run(greedy_mis_reference(), graph, config=config)
        sharded = run_edgecut(
            greedy_mis_reference(), graph, config=config, shard_count=3
        )
        _assert_identical(sharded, reference)

    def test_bandwidth_exceeded_names_same_round_and_edge(self):
        """A boundary message that blows the strict-CONGEST budget must
        raise with the *same* sender, receiver and round as the
        unsharded run — byte-for-byte the same message."""
        graph = _fuzz_graph(31)
        config = RunConfig(seed=3, model=strict_congest(factor=1))
        with pytest.raises(BandwidthExceeded) as reference:
            run(greedy_mis_reference(), graph, config=config)
        for shards in (2, 3, 4, 5):
            with pytest.raises(BandwidthExceeded) as sharded:
                run_edgecut(
                    greedy_mis_reference(),
                    graph,
                    config=config,
                    shard_count=shards,
                )
            assert str(sharded.value) == str(reference.value)


# ----------------------------------------------------------------------
# Round-limit and partial-result parity
# ----------------------------------------------------------------------
class TestLimitParity:
    def test_round_limit_raises_identically(self):
        graph = _fuzz_graph(41)
        config = RunConfig(seed=2, max_rounds=2)
        with pytest.raises(RoundLimitExceeded) as reference:
            run(greedy_mis_reference(), graph, config=config)
        with pytest.raises(RoundLimitExceeded) as sharded:
            run_edgecut(
                greedy_mis_reference(), graph, config=config, shard_count=3
            )
        assert str(sharded.value) == str(reference.value)

    def test_partial_result_and_stuck_report_match(self):
        graph = _fuzz_graph(42)
        config = RunConfig(seed=2, max_rounds=2, on_round_limit="partial")
        reference = run(greedy_mis_reference(), graph, config=config)
        sharded = run_edgecut(
            greedy_mis_reference(), graph, config=config, shard_count=3
        )
        _assert_identical(sharded, reference)
        assert reference.stuck is not None and sharded.stuck is not None
        assert sharded.stuck.live_nodes == reference.stuck.live_nodes
        assert sharded.stuck.round == reference.stuck.round
        assert sharded.stuck.total_nodes == reference.stuck.total_nodes
        assert sharded.stuck.reason == reference.stuck.reason


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
class TestGuards:
    def test_policy_rejects_unknown_shard_mode(self):
        with pytest.raises(ValueError, match="shard"):
            ExecutionPolicy(shard="edges")

    def test_policy_rejects_async_edgecut(self):
        with pytest.raises(ValueError, match="async"):
            ExecutionPolicy(schedule="async", shard="edgecut")

    def test_shard_count_below_two_rejected(self):
        graph = _fuzz_graph(51, n=20)
        with pytest.raises(ValueError, match="shard"):
            run_edgecut(greedy_mis_reference(), graph, shard_count=1)

    def test_trace_rejected(self):
        graph = _fuzz_graph(51, n=20)
        with pytest.raises(ValueError, match="trace"):
            run_edgecut(
                greedy_mis_reference(),
                graph,
                config=RunConfig(trace=True),
                shard_count=2,
            )

    def test_vectorized_kernels_rejected(self):
        graph = _fuzz_graph(52, n=20)
        config = RunConfig(
            policy=ExecutionPolicy(schedule="vectorized", shard="edgecut")
        )
        with pytest.raises(UnsupportedScheduleError, match="edge-cut"):
            run_edgecut(
                greedy_mis_reference(), graph, config=config, shard_count=2
            )

    def test_vectorized_fallback_interprets_identically(self):
        graph = _fuzz_graph(52, n=30)
        config = RunConfig(
            seed=4,
            policy=ExecutionPolicy(
                schedule="vectorized", shard="edgecut", fallback="interpret"
            ),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            sharded = run_edgecut(
                greedy_mis_reference(), graph, config=config, shard_count=2
            )
        reference = run(
            greedy_mis_reference(),
            graph,
            config=RunConfig(
                seed=4, policy=ExecutionPolicy(schedule="quiescent")
            ),
        )
        _assert_identical(sharded, reference)


# ----------------------------------------------------------------------
# Sweep integration: serial and process backends
# ----------------------------------------------------------------------
def _edgecut_sweep(graph, *, shard=None, schedule="quiescent", share=False):
    sweep = Sweep(name="edgecut-test", base_seed=7)
    policy = ExecutionPolicy(schedule=schedule, shard=shard, share_graph=share)
    spec = GraphSpec.literal(graph)
    for seed in (11, 12):
        sweep.add(
            f"greedy-s{seed}",
            spec,
            "greedy_mis_reference",
            problem="mis",
            seed=seed,
            policy=policy,
        )
    return sweep


class TestSweepIntegration:
    def test_serial_backend_rows_are_equivalent(self):
        graph = _fuzz_graph(61, n=120)
        reference = _edgecut_sweep(graph).run("serial")
        sharded = _edgecut_sweep(graph, shard="edgecut").run("serial", jobs=3)
        assert sharded.equivalent_to(reference)
        assert all(row.valid for row in sharded.rows)
        for row in sharded.rows:
            assert row.shards == 3
            assert row.boundary_msgs > 0
            assert row.boundary_bytes > 0

    def test_process_backend_matches_serial_with_store(self):
        graph = _fuzz_graph(61, n=120)
        reference = _edgecut_sweep(graph).run("serial")
        sharded = _edgecut_sweep(graph, shard="edgecut", share=True).run(
            "process", jobs=3
        )
        assert sharded.equivalent_to(reference)
        thread_rows = _edgecut_sweep(graph, shard="edgecut").run(
            "serial", jobs=3
        )
        for process_row, thread_row in zip(sharded.rows, thread_rows.rows):
            assert process_row.boundary_msgs == thread_row.boundary_msgs
            assert process_row.boundary_bytes == thread_row.boundary_bytes

    def test_telemetry_sums_boundary_counters(self):
        graph = _fuzz_graph(62, n=80)
        sharded = _edgecut_sweep(graph, shard="edgecut").run("serial", jobs=2)
        telemetry = sharded.telemetry()
        assert telemetry["boundary_msgs_total"] == sum(
            row.boundary_msgs for row in sharded.rows
        )
        assert telemetry["boundary_bytes_total"] == sum(
            row.boundary_bytes for row in sharded.rows
        )
        assert telemetry["boundary_msgs_total"] > 0

    def test_single_job_degrades_to_unsharded_cell(self):
        graph = _fuzz_graph(63, n=40)
        result = _edgecut_sweep(graph, shard="edgecut").run("serial", jobs=1)
        reference = _edgecut_sweep(graph).run("serial")
        assert result.equivalent_to(reference)
        for row in result.rows:
            assert not row.shards
