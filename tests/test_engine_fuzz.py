"""Engine fuzzing: random node programs never break engine invariants.

A randomized program sends arbitrary payloads to arbitrary neighbors and
terminates at a random round.  Whatever it does, the engine must uphold:
message accounting consistency, monotone active sets, announcement
timing, and clean termination bookkeeping.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.graphs import erdos_renyi
from repro.simulator import NodeProgram, SyncEngine, TraceRecorder


class FuzzProgram(NodeProgram):
    """Sends random payloads; terminates by a per-node random deadline."""

    PAYLOADS = [0, 1, "x", (1, "tag"), [1, 2, 3], {"k": 7}, None, 2**40]

    def __init__(self, seed, node):
        self._rng = random.Random(f"{seed}:{node}:fuzz")
        self._deadline = self._rng.randint(0, 6)

    def setup(self, ctx):
        if self._deadline == 0:
            ctx.set_output(("done", 0))
            ctx.terminate()

    def compose(self, ctx):
        outbox = {}
        for other in ctx.active_neighbors:
            if self._rng.random() < 0.6:
                outbox[other] = self._rng.choice(self.PAYLOADS)
        return outbox

    def process(self, ctx, inbox):
        if ctx.round >= self._deadline:
            ctx.set_output(("done", ctx.round))
            ctx.terminate()


class TestEngineFuzz:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=20),
        st.sampled_from([0.0, 0.2, 0.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, seed, n, p):
        graph = erdos_renyi(n, p, seed=seed)
        trace = TraceRecorder()
        engine = SyncEngine(
            graph,
            lambda node: FuzzProgram(seed, node),
            trace=trace,
        )
        result = engine.run()

        # Everyone terminated by its deadline (≤ 6) and bookkeeping agrees.
        assert result.rounds <= 6
        assert result.all_terminated
        assert set(result.outputs) == set(graph.nodes)
        for node in graph.nodes:
            record = result.records[node]
            assert record.termination_round is not None
            assert record.output == result.outputs[node]

        # Trace terminations match records.
        assert trace.termination_rounds() == {
            node: result.records[node].termination_round
            for node in graph.nodes
        }

        # Accounting sanity: every delivered message was counted with
        # positive bits; the max is at most the total.
        assert result.total_bits >= result.message_count
        assert result.max_message_bits <= result.total_bits or (
            result.message_count == 0
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_fuzz_with_crashes(self, seed):
        rng = random.Random(f"{seed}:crashes")
        graph = erdos_renyi(15, 0.3, seed=seed)
        crash_rounds = {
            node: rng.randint(1, 4)
            for node in graph.nodes
            if rng.random() < 0.3
        }
        engine = SyncEngine(
            graph,
            lambda node: FuzzProgram(seed, node),
            faults=FaultPlan.crash_stop(crash_rounds),
        )
        result = engine.run()
        for node in graph.nodes:
            record = result.records[node]
            if record.crashed:
                assert node not in result.outputs
            else:
                assert record.termination_round is not None


# ----------------------------------------------------------------------
# Quiescent-schedule differential fuzzing
# ----------------------------------------------------------------------

def _run_collect(graph, factory, schedule, plan, profile=False):
    """One engine run returning every observable we compare across
    schedules: outputs, round counters, message accounting, events."""
    from repro.obs import MemoryEventSink

    sink = MemoryEventSink()
    engine = SyncEngine(
        graph,
        factory,
        faults=plan,
        sinks=[sink],
        schedule=schedule,
        max_rounds=200,
        on_round_limit="partial",
        profile=profile,
    )
    result = engine.run()
    return {
        "outputs": result.outputs,
        "rounds": result.rounds,
        "rounds_executed": result.rounds_executed,
        "messages": result.message_count,
        "bits": result.total_bits,
        "max_bits": result.max_message_bits,
        "events": sink.events,
    }


def _random_plan(rng, graph):
    """A random adversarial plan: crash-stop and crash-recover faults
    plus a message adversary dropping/corrupting/replaying."""
    from repro.faults.plan import CrashFault, MessageAdversary

    crashes = tuple(
        CrashFault(
            node,
            rng.randint(1, 5),
            recover_after=rng.choice([None, None, rng.randint(1, 4)]),
        )
        for node in graph.nodes
        if rng.random() < 0.25
    )
    adversary = MessageAdversary(
        drop_rate=rng.choice([0.0, 0.2]),
        corrupt_rate=rng.choice([0.0, 0.15]),
        duplicate_rate=rng.choice([0.0, 0.2]),
    )
    return FaultPlan(
        crashes=crashes,
        messages=adversary if adversary.is_active else None,
        seed=rng.randint(0, 10**6),
    )


def _factories(seed):
    from repro.algorithms.coloring.greedy import PaletteGreedyColoringProgram
    from repro.algorithms.matching.greedy import GreedyMatchingProgram
    from repro.algorithms.mis.greedy import GreedyMISProgram

    def mixed(node):
        # Quiescent programs interleaved with eager fuzz nodes: the
        # wake-set must stay exact with always-awake neighbors
        # injecting arbitrary payloads.
        if node % 2 == 0:
            return FuzzProgram(seed, node)
        return GreedyMISProgram()

    return [
        ("mis", lambda node: GreedyMISProgram()),
        ("matching", lambda node: GreedyMatchingProgram()),
        ("coloring", lambda node: PaletteGreedyColoringProgram()),
        ("fuzz", lambda node: FuzzProgram(seed, node)),
        ("mixed", mixed),
    ]


class TestQuiescentDifferentialFuzz:
    """schedule='quiescent' must be observationally identical to eager
    for every algorithm, graph and fault plan — including a profiled
    quiescent run (the third way of the three-way differential)."""

    def _factories(self, seed):
        return _factories(seed)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_three_way_differential(self, seed):
        rng = random.Random(f"{seed}:quiescent-fuzz")
        graph = erdos_renyi(
            rng.randint(3, 18), rng.choice([0.15, 0.3, 0.6]), seed=seed
        )
        plan = _random_plan(rng, graph)
        name, factory = self._factories(seed)[seed % 5]
        eager = _run_collect(graph, factory, "eager", plan)
        quiescent = _run_collect(graph, factory, "quiescent", plan)
        profiled = _run_collect(graph, factory, "quiescent", plan, profile=True)
        debug = _run_collect(graph, factory, "quiescent-debug", plan)
        assert quiescent == eager, name
        assert profiled == eager, name
        assert debug == eager, name

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_honest_quiescence_under_debug(self, seed):
        """The shipped quiescent programs never trip the debug validator
        even under adversarial faults (the contract test's dual)."""
        from repro.algorithms.mis.greedy import GreedyMISProgram

        rng = random.Random(f"{seed}:debug-fuzz")
        graph = erdos_renyi(rng.randint(3, 15), 0.3, seed=seed)
        plan = _random_plan(rng, graph)
        engine = SyncEngine(
            graph,
            lambda node: GreedyMISProgram(),
            faults=plan,
            schedule="quiescent-debug",
            max_rounds=200,
            on_round_limit="partial",
        )
        engine.run()  # QuiescenceViolation would fail the test


# ----------------------------------------------------------------------
# Old-vs-new differential: the layered runtime vs the frozen monolith
# ----------------------------------------------------------------------

def _observables(engine_cls, graph, factory, plan, schedule, predictions=None):
    """Everything observable about one run: outputs, counters, records,
    the stuck report footprint and the exact event stream (order included)."""
    from repro.obs import MemoryEventSink

    sink = MemoryEventSink()
    engine = engine_cls(
        graph,
        factory,
        predictions=predictions,
        faults=plan,
        sinks=[sink],
        schedule=schedule,
        max_rounds=200,
        on_round_limit="partial",
    )
    result = engine.run()
    return {
        "outputs": result.outputs,
        "rounds": result.rounds,
        "rounds_executed": result.rounds_executed,
        "messages": result.message_count,
        "bits": result.total_bits,
        "max_bits": result.max_message_bits,
        "dropped": result.dropped_messages,
        "corrupted": result.corrupted_messages,
        "duplicated": result.duplicated_messages,
        "violations": result.bandwidth_violations,
        "records": {
            node: (
                record.termination_round,
                record.output,
                record.crashed,
                record.recovery_round,
            )
            for node, record in result.records.items()
        },
        "stuck": None
        if result.stuck is None
        else (result.stuck.round, tuple(result.stuck.live_nodes)),
        "events": sink.events,
    }


class TestLayeredRuntimeDifferential:
    """The layered Transport/Scheduler/Interposer/Lifecycle runtime must be
    bit-identical to the frozen pre-refactor monolith
    (``tests/reference_engine.py``) on every problem family, under faults,
    on both the eager and the quiescent schedule."""

    def _families(self, seed):
        from repro.algorithms.coloring.greedy import PaletteGreedyColoringProgram
        from repro.algorithms.edge_coloring.greedy import GreedyEdgeColoringProgram
        from repro.algorithms.matching.greedy import GreedyMatchingProgram
        from repro.algorithms.mis.greedy import GreedyMISProgram

        return [
            ("mis", lambda node: GreedyMISProgram()),
            ("matching", lambda node: GreedyMatchingProgram()),
            ("coloring", lambda node: PaletteGreedyColoringProgram()),
            ("edge-coloring", lambda node: GreedyEdgeColoringProgram()),
            ("fuzz", lambda node: FuzzProgram(seed, node)),
        ]

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_engine(self, seed):
        from tests.reference_engine import ReferenceSyncEngine

        rng = random.Random(f"{seed}:old-vs-new")
        graph = erdos_renyi(
            rng.randint(3, 18), rng.choice([0.15, 0.3, 0.6]), seed=seed
        )
        plan = _random_plan(rng, graph)
        predictions = (
            {node: node % 2 for node in graph.nodes}
            if rng.random() < 0.5
            else None
        )
        name, factory = self._families(seed)[seed % 5]
        for schedule in ("eager", "quiescent"):
            old = _observables(
                ReferenceSyncEngine, graph, factory, plan, schedule, predictions
            )
            new = _observables(
                SyncEngine, graph, factory, plan, schedule, predictions
            )
            assert new == old, (name, schedule)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_matches_reference_engine_faultless_congest(self, seed):
        """Fault-free CONGEST runs (bit accounting live, no interposer)
        agree too — the interposer-absent fast path of the new engine."""
        from repro.simulator import CONGEST

        from tests.reference_engine import ReferenceSyncEngine

        rng = random.Random(f"{seed}:old-vs-new-congest")
        graph = erdos_renyi(rng.randint(3, 14), 0.3, seed=seed)
        name, factory = self._families(seed)[seed % 5]

        def observe(engine_cls):
            engine = engine_cls(
                graph, factory, model=CONGEST, max_rounds=200,
                on_round_limit="partial",
            )
            result = engine.run()
            return (
                result.outputs,
                result.rounds,
                result.rounds_executed,
                result.message_count,
                result.total_bits,
                result.max_message_bits,
                result.bandwidth_violations,
            )

        assert observe(SyncEngine) == observe(ReferenceSyncEngine), name


# ----------------------------------------------------------------------
# Asynchronous-schedule fuzzing
# ----------------------------------------------------------------------

def _run_async_collect(graph, factory, plan, *, phi, seed=0, send_timeout=None):
    """One async run returning the full result plus its event sink."""
    from repro.obs import MemoryEventSink

    sink = MemoryEventSink()
    engine = SyncEngine(
        graph,
        factory,
        faults=plan,
        sinks=[sink],
        schedule="async",
        phi=phi,
        send_timeout=send_timeout,
        seed=seed,
        max_rounds=200,
        on_round_limit="partial",
    )
    return engine.run(), sink


class TestAsyncDifferentialFuzz:
    """``schedule='async'`` at phi=0 with no send timeouts IS the
    synchronous model: bit-identical to eager on every observable —
    outputs, counters, bit accounting and the exact event stream —
    under random fault plans across every algorithm family."""

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_phi_zero_matches_eager(self, seed):
        rng = random.Random(f"{seed}:async-phi0-fuzz")
        graph = erdos_renyi(
            rng.randint(3, 18), rng.choice([0.15, 0.3, 0.6]), seed=seed
        )
        plan = _random_plan(rng, graph)
        name, factory = _factories(seed)[seed % 5]
        eager = _run_collect(graph, factory, "eager", plan)
        phi0 = _run_collect(graph, factory, "async", plan)
        assert phi0 == eager, name


class TestAsyncInvariantFuzz:
    """phi>0 executions diverge from eager by design (that is the model);
    what must hold instead are the scheduler's own invariants:
    determinism per seed, adversary delays bounded by phi, late
    deliveries never exceeding the number of parked messages, and
    counters that agree with the event stream."""

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_invariants_under_delays(self, seed):
        rng = random.Random(f"{seed}:async-phi-fuzz")
        graph = erdos_renyi(rng.randint(3, 14), 0.3, seed=seed)
        plan = _random_plan(rng, graph)
        phi = rng.randint(1, 4)
        timeout = rng.choice([None, 2])
        name, factory = _factories(seed)[seed % 5]
        r1, s1 = _run_async_collect(
            graph, factory, plan, phi=phi, seed=seed, send_timeout=timeout
        )
        r2, s2 = _run_async_collect(
            graph, factory, plan, phi=phi, seed=seed, send_timeout=timeout
        )

        # Same seed => identical execution (message events; lifecycle
        # entries carry wall-clock timings).
        assert s1.events == s2.events, name
        assert r1.outputs == r2.outputs, name
        assert r1.message_count == r2.message_count, name
        assert r1.rounds_executed == r2.rounds_executed, name

        # Every adversary delay respects the phi bound, and the counters
        # are exactly the event-stream tallies.
        delays = [
            ev["data"]["delay"]
            for ev in s1.events
            if ev["kind"] == "delay"
        ]
        assert all(1 <= delay <= phi for delay in delays), name
        assert r1.delayed_messages == len(delays), name
        delivers = [ev for ev in s1.events if ev["kind"] == "deliver"]
        assert len(delivers) <= len(delays), name
        retries = [ev for ev in s1.events if ev["kind"] == "retry"]
        assert r1.retried_messages == len(retries), name
        if timeout is None:
            assert not retries, name
