"""Tests for the line-graph edge coloring and the colored matching.

These are the n-independent references for the Matching and Edge
Coloring problems (the analogues of Corollary 12's MIS reference).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.edge_coloring import LineGraphEdgeColoringAlgorithm
from repro.algorithms.edge_coloring.linegraph import (
    decode_edge,
    edge_id,
    line_graph_round_bound,
)
from repro.algorithms.matching import ColoredMatchingAlgorithm
from repro.algorithms.matching.via_coloring import MatchingFromEdgeColorsProgram
from repro.core import ConsecutiveTemplate, run
from repro.graphs import (
    clique,
    empty_graph,
    erdos_renyi,
    grid2d,
    line,
    random_ids_from_domain,
    ring,
    sorted_path_ids,
    star,
)
from repro.problems import EDGE_COLORING, MATCHING, MIS
from repro.simulator import SyncEngine

from tests.conftest import random_graph


class TestEdgeIdEncoding:
    def test_roundtrip(self):
        for u, v in ((1, 2), (7, 3), (10, 10**2)):
            identifier = edge_id(u, v, 100)
            assert decode_edge(identifier, 100) == (min(u, v), max(u, v))

    def test_distinct_over_all_edges(self):
        graph = clique(8)
        identifiers = {edge_id(u, v, graph.d) for u, v in graph.edges()}
        assert len(identifiers) == graph.num_edges

    def test_positive(self):
        assert edge_id(1, 2, 5) >= 1


class TestLineGraphEdgeColoring:
    def test_valid_on_shapes(self):
        algorithm = LineGraphEdgeColoringAlgorithm()
        for graph in (line(12), ring(10), star(7), clique(5), grid2d(3, 4)):
            result = run(algorithm, graph, max_rounds=50000)
            assert EDGE_COLORING.is_solution(graph, result.outputs), graph.name

    def test_respects_bound(self):
        algorithm = LineGraphEdgeColoringAlgorithm()
        graph = ring(14)
        result = run(algorithm, graph, max_rounds=50000)
        assert result.rounds <= algorithm.round_bound(
            graph.n, graph.delta, graph.d
        )

    def test_bound_independent_of_n(self):
        algorithm = LineGraphEdgeColoringAlgorithm()
        assert algorithm.round_bound(10, 3, 50) == algorithm.round_bound(
            10**6, 3, 50
        )

    def test_large_id_domain(self):
        graph = random_ids_from_domain(ring(10), d=5000, seed=2)
        result = run(LineGraphEdgeColoringAlgorithm(), graph, max_rounds=50000)
        assert EDGE_COLORING.is_solution(graph, result.outputs)

    def test_bound_grows_slowly_in_d(self):
        small = line_graph_round_bound(10**2, 2)
        large = line_graph_round_bound(10**6, 2)
        assert large <= small + 12

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(12, 0.25, seed)
        result = run(LineGraphEdgeColoringAlgorithm(), graph, max_rounds=50000)
        if graph.num_edges == 0:
            return
        # Nodes with no edges terminate vacuously; others must be proper.
        assert EDGE_COLORING.is_solution(graph, result.outputs)


class TestMatchingFromEdgeColors:
    def test_sweep_on_solved_coloring(self):
        graph = grid2d(4, 4)
        coloring = EDGE_COLORING.solve_sequential(graph)
        programs = {
            v: MatchingFromEdgeColorsProgram(coloring[v]) for v in graph.nodes
        }
        result = SyncEngine(graph, programs).run()
        assert MATCHING.is_solution(graph, result.outputs)
        assert result.rounds <= 2 * graph.delta

    def test_color_classes_are_matchings(self):
        graph = erdos_renyi(20, 0.25, seed=9)
        coloring = EDGE_COLORING.solve_sequential(graph)
        by_color = {}
        for (u, v), color in EDGE_COLORING.colored_edges(coloring).items():
            by_color.setdefault(color, []).append((u, v))
        for color, edges in by_color.items():
            endpoints = [x for edge in edges for x in edge]
            assert len(endpoints) == len(set(endpoints)), color


class TestColoredMatching:
    def test_valid_on_shapes(self):
        algorithm = ColoredMatchingAlgorithm()
        for graph in (line(12), ring(10), star(7), clique(5), empty_graph(3)):
            result = run(algorithm, graph, max_rounds=50000)
            assert MATCHING.is_solution(graph, result.outputs), graph.name

    def test_respects_n_free_bound(self):
        algorithm = ColoredMatchingAlgorithm()
        for n in (16, 48):
            graph = sorted_path_ids(line(n))
            result = run(algorithm, graph, max_rounds=50000)
            assert result.rounds <= algorithm.round_bound(
                graph.n, graph.delta, graph.d
            )

    def test_beats_greedy_matching_on_long_sorted_lines(self):
        from repro.algorithms.matching import GreedyMatchingAlgorithm

        graph = sorted_path_ids(line(96))
        colored = run(ColoredMatchingAlgorithm(), graph, max_rounds=50000).rounds
        greedy = run(GreedyMatchingAlgorithm(), graph).rounds
        assert colored < greedy

    def test_as_consecutive_reference(self):
        """The point of the construction: a robust matching template."""
        from repro.algorithms.matching import (
            GreedyMatchingAlgorithm,
            MatchingCleanupAlgorithm,
            MatchingInitializationAlgorithm,
        )
        from repro.predictions import noisy_predictions

        algorithm = ConsecutiveTemplate(
            MatchingInitializationAlgorithm(),
            GreedyMatchingAlgorithm(),
            MatchingCleanupAlgorithm(),
            ColoredMatchingAlgorithm(),
        )
        graph = sorted_path_ids(line(40))
        for rate in (0.0, 0.3, 1.0):
            predictions = noisy_predictions(MATCHING, graph, rate, seed=3)
            result = run(algorithm, graph, predictions, max_rounds=50000)
            assert MATCHING.is_solution(graph, result.outputs), rate
