"""Tests for the sweep executor: specs, cache, backends, seeding."""

from __future__ import annotations

import os
import pickle
import warnings

import pytest

from repro.core import RunConfig, run
from repro.exec import (
    AlgorithmSpec,
    ArtifactCache,
    FaultSpec,
    GraphSpec,
    PredictionSpec,
    Sweep,
    content_hash,
    derive_cell_seed,
)
from repro.graphs import grid2d, ring


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestSpecs:
    def test_bare_name_resolves_in_namespace(self):
        graph = GraphSpec.of("ring", 8).build()
        assert graph.n == 8

    def test_dotted_path_resolves(self):
        spec = GraphSpec.of("repro.graphs:grid2d", 2, 3)
        assert spec.build().n == 6

    def test_callable_target(self):
        assert GraphSpec.of(ring, 5).build().n == 5

    def test_unknown_name_raises_lookup_error(self):
        with pytest.raises(LookupError, match="no_such_factory"):
            GraphSpec.of("no_such_factory").build()

    def test_literal_spec_round_trips_value(self):
        graph = grid2d(3, 3)
        spec = GraphSpec.literal(graph)
        assert spec.build() is graph
        assert "literal" in spec.key

    def test_key_changes_with_any_argument(self):
        base = GraphSpec.of("ring", 8)
        assert base.key != GraphSpec.of("ring", 9).key
        assert base.key != GraphSpec.of("line", 8).key
        assert (
            GraphSpec.of("erdos_renyi", 16, 0.1, seed=1).key
            != GraphSpec.of("erdos_renyi", 16, 0.1, seed=2).key
        )

    def test_key_is_stable_across_kwarg_order(self):
        a = GraphSpec.of("erdos_renyi", 16, seed=1, p=0.1)
        b = GraphSpec.of("erdos_renyi", 16, p=0.1, seed=1)
        assert a.key == b.key

    def test_specs_are_picklable(self):
        spec = AlgorithmSpec.of("mis_parallel")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build().name == spec.build().name

    def test_prediction_spec_receives_graph_prefix(self):
        graph = ring(6)
        predictions = PredictionSpec.of("all_zeros_mis").build(graph)
        assert predictions == {node: 0 for node in graph.nodes}

    def test_fault_spec_builds_plan_from_graph(self):
        graph = ring(10)
        plan = FaultSpec.of("random_crash_plan", 0.2, seed=3).build(graph)
        assert len(plan.crashes) == 2
        assert all(crash.node in set(graph.nodes) for crash in plan.crashes)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_hit_miss_accounting(self):
        cache = ArtifactCache(maxsize=4)
        calls = []
        build = lambda: calls.append(1) or "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_invalidation_on_spec_change(self):
        cache = ArtifactCache(maxsize=8)
        a = cache.get_or_build(GraphSpec.of("ring", 8).key, lambda: "a")
        b = cache.get_or_build(GraphSpec.of("ring", 9).key, lambda: "b")
        assert (a, b) == ("a", "b")
        assert cache.stats()["misses"] == 2

    def test_lru_eviction(self):
        cache = ArtifactCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_disk_layer_survives_new_cache(self, tmp_path):
        disk = str(tmp_path / "cache")
        first = ArtifactCache(maxsize=4, disk_dir=disk)
        first.get_or_build("key", lambda: {"heavy": True})
        second = ArtifactCache(maxsize=4, disk_dir=disk)
        value = second.get_or_build(
            "key", lambda: pytest.fail("should load from disk")
        )
        assert value == {"heavy": True}
        assert second.stats()["disk_hits"] == 1

    def test_disk_layer_verifies_stored_key(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ArtifactCache(maxsize=0, disk_dir=disk)
        cache.get_or_build("key-one", lambda: 1)
        # Simulate a digest collision: another key whose file we overwrite
        # with key-one's payload must rebuild, not alias.
        path = tmp_path / "cache" / f"{content_hash('key-two')}.pkl"
        path.write_bytes(pickle.dumps(("key-one", 1)))
        assert cache.get_or_build("key-two", lambda: 2) == 2

    def test_corrupt_disk_entry_rebuilds(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ArtifactCache(maxsize=0, disk_dir=disk)
        cache.get_or_build("key", lambda: 7)
        path = tmp_path / "cache" / f"{content_hash('key')}.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.warns(UserWarning, match="corrupt artifact-cache entry"):
            assert cache.get_or_build("key", lambda: 7) == 7

    def test_corrupt_disk_entry_warns_evicts_and_counts(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ArtifactCache(maxsize=0, disk_dir=disk)
        cache.get_or_build("key", lambda: 7)
        path = tmp_path / "cache" / f"{content_hash('key')}.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.warns(UserWarning) as caught:
            assert cache.get_or_build("key", lambda: 7) == 7
        messages = [str(w.message) for w in caught]
        assert any(str(path) in message for message in messages)
        # The poisoned file is evicted (the rebuild re-stores a clean one),
        # so the *next* load round-trips without warning.
        assert cache.stats()["corrupt"] == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get_or_build("key", lambda: 7) == 7
        assert cache.stats()["corrupt"] == 1


# ----------------------------------------------------------------------
# Seeding
# ----------------------------------------------------------------------
class TestSeeding:
    def test_derived_seed_is_deterministic(self):
        assert derive_cell_seed(1, 0, "a") == derive_cell_seed(1, 0, "a")

    def test_derived_seed_varies_with_every_input(self):
        base = derive_cell_seed(1, 0, "a")
        assert base != derive_cell_seed(2, 0, "a")
        assert base != derive_cell_seed(1, 1, "a")
        assert base != derive_cell_seed(1, 0, "b")

    def test_explicit_cell_seed_wins(self):
        sweep = Sweep(base_seed=9)
        sweep.add(
            "cell",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
            seed=42,
        )
        row = sweep.run("serial").rows[0]
        assert row.seed == 42

    def test_rows_record_derived_seeds(self):
        sweep = Sweep(base_seed=9)
        sweep.add(
            "cell",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
        )
        row = sweep.run("serial").rows[0]
        assert row.seed == derive_cell_seed(9, 0, "cell")

    def test_sweep_row_matches_direct_run(self):
        """A sweep cell is one run(): re-executing it standalone with the
        recorded seed reproduces the row."""
        sweep = Sweep(base_seed=3)
        sweep.add(
            "cell",
            GraphSpec.of("erdos_renyi", 24, 0.15, seed=5),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
        )
        row = sweep.run("serial").rows[0]
        from repro.bench.algorithms import mis_parallel
        from repro.graphs import erdos_renyi
        from repro.predictions import all_zeros_mis

        graph = erdos_renyi(24, 0.15, seed=5)
        result = run(mis_parallel(), graph, all_zeros_mis(graph), seed=row.seed)
        assert result.rounds == row.rounds
        assert result.message_count == row.message_count


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def _noise_grid(base_seed=11):
    sweep = Sweep(name="grid", base_seed=base_seed)
    sweep.add_grid(
        {
            "ring24": GraphSpec.of("ring", 24),
            "gnp": GraphSpec.of("erdos_renyi", 24, 0.15, seed=5),
        },
        {"parallel": "mis_parallel", "simple": "mis_simple"},
        predictions={"zeros": "all_zeros_mis"},
        seeds=(0, 1),
        problem="mis",
    )
    return sweep


class TestBackends:
    def test_serial_and_process_are_equivalent(self):
        sweep = _noise_grid()
        serial = sweep.run("serial")
        process = sweep.run("process", jobs=2, chunk_size=3)
        assert serial.equivalent_to(process)
        assert serial.all_valid

    def test_chunking_does_not_change_results(self):
        sweep = _noise_grid()
        one_per_chunk = sweep.run("process", jobs=2, chunk_size=1)
        one_big_chunk = sweep.run("process", jobs=2, chunk_size=64)
        assert one_per_chunk.equivalent_to(one_big_chunk)

    def test_rows_come_back_in_cell_order(self):
        result = _noise_grid().run("process", jobs=2, chunk_size=1)
        assert [row.index for row in result.rows] == list(range(len(result)))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            _noise_grid().run("threads")

    def test_faulty_cells_execute_on_both_backends(self):
        sweep = Sweep(name="faults", base_seed=2)
        for seed in (0, 1, 2):
            sweep.add(
                f"s={seed}",
                GraphSpec.of("grid2d", 5, 5),
                "mis_hardened_simple",
                predictions=PredictionSpec.of("all_zeros_mis"),
                faults=FaultSpec.of(
                    "random_crash_plan", 0.1, drop_rate=0.05, seed=seed
                ),
                problem="mis",
                seed=seed,
                config=RunConfig(max_rounds=50, on_round_limit="partial"),
            )
        serial = sweep.run("serial")
        process = sweep.run("process", jobs=2)
        assert serial.equivalent_to(process)
        assert any(row.dropped_messages for row in serial.rows)

    def test_sweep_result_accessors(self):
        result = _noise_grid().run("serial")
        labels = [row.label for row in result]
        assert result.row(labels[0]).index == 0
        assert set(result.by_label()) == set(labels)
        assert result.rounds_by_error()
        with pytest.raises(KeyError):
            result.row("no-such-label")

    def test_to_csv(self, tmp_path):
        result = _noise_grid().run("serial")
        path = tmp_path / "rows.csv"
        result.to_csv(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(result) + 1
        assert lines[0].startswith("label,graph,n,seed,rounds")

    def test_cache_reused_within_serial_sweep(self):
        result = _noise_grid().run("serial")
        # 2 graphs + 2 prediction mappings built once each; every other
        # lookup is a hit.
        assert result.cache_stats["misses"] == 4
        assert result.cache_stats["hits"] > 0

    def test_disk_cache_shared_across_sweeps(self, tmp_path):
        disk = str(tmp_path / "artifacts")
        first = _noise_grid().run("serial", cache_dir=disk)
        second = _noise_grid().run("serial", cache_dir=disk)
        assert first.equivalent_to(second)
        assert second.cache_stats["disk_hits"] == 4
        assert second.cache_stats["misses"] == 0


# ----------------------------------------------------------------------
# Regressions: None-valued artifacts, seed=0, effective backend
# ----------------------------------------------------------------------
class TestCacheNoneArtifacts:
    def test_memory_layer_caches_none(self):
        """A legitimately-None artifact is a hit, not a rebuild."""
        cache = ArtifactCache(maxsize=4)
        calls = []
        build = lambda: calls.append(1)  # returns None
        assert cache.get_or_build("k", build) is None
        assert cache.get_or_build("k", build) is None
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats["hits"], stats["disk_hits"], stats["misses"]) == (1, 0, 1)

    def test_disk_layer_caches_none(self, tmp_path):
        disk = str(tmp_path / "cache")
        first = ArtifactCache(maxsize=4, disk_dir=disk)
        assert first.get_or_build("k", lambda: None) is None
        second = ArtifactCache(maxsize=4, disk_dir=disk)
        value = second.get_or_build(
            "k", lambda: pytest.fail("should load None from disk")
        )
        assert value is None
        assert second.stats()["disk_hits"] == 1


class TestSeedZero:
    def test_explicit_cell_seed_zero_wins(self):
        sweep = Sweep(base_seed=9)
        sweep.add(
            "cell",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
            seed=0,
        )
        assert sweep.run("serial").rows[0].seed == 0

    def test_config_seed_zero_wins(self):
        """RunConfig(seed=0) is an explicit seed, not 'unset'."""
        sweep = Sweep(base_seed=9)
        sweep.add(
            "cell",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
            config=RunConfig(seed=0),
        )
        assert sweep.run("serial").rows[0].seed == 0

    def test_unset_config_seed_still_derives(self):
        sweep = Sweep(base_seed=9)
        sweep.add(
            "cell",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
            config=RunConfig(max_rounds=50),
        )
        assert sweep.run("serial").rows[0].seed == derive_cell_seed(9, 0, "cell")

    def test_run_config_effective_seed(self):
        assert RunConfig().seed is None
        assert RunConfig().effective_seed == 0
        assert RunConfig(seed=0).effective_seed == 0
        assert RunConfig(seed=5).effective_seed == 5


class TestEffectiveBackend:
    def test_serial_sweep_reports_serial(self):
        result = _noise_grid().run("serial")
        assert result.backend == "serial"
        assert result.requested_backend == "serial"

    def test_process_sweep_reports_what_actually_ran(self):
        result = _noise_grid().run("process", jobs=2)
        assert result.requested_backend == "process"
        assert result.backend in ("process", "serial")

    def test_single_cell_process_request_runs_serially(self):
        """One cell never pays for a pool — and the result says so
        instead of claiming parallelism it didn't have."""
        sweep = Sweep(base_seed=1)
        sweep.add(
            "only",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
        )
        result = sweep.run("process")
        assert result.requested_backend == "process"
        assert result.backend == "serial"

    def test_caller_cache_with_process_backend_raises(self):
        """cache= used to be silently ignored by the process backend."""
        with pytest.raises(ValueError, match="cache"):
            _noise_grid().run("process", cache=ArtifactCache(maxsize=4))

    def test_caller_cache_honored_by_serial_backend(self):
        cache = ArtifactCache(maxsize=16)
        _noise_grid().run("serial", cache=cache)
        assert cache.stats()["misses"] > 0

    def test_telemetry_carries_both_backends(self):
        result = _noise_grid().run("serial")
        telemetry = result.telemetry()
        assert telemetry["backend"] == "serial"
        assert telemetry["requested_backend"] == "serial"


class TestSolutionSize:
    def test_mis_counts_ones_not_outputs(self):
        from repro.problems import solution_size

        outputs = {1: 1, 2: 0, 3: 1, 4: 0}
        assert solution_size(outputs, "mis") == 2
        assert solution_size(outputs, "matching") == 4
        assert solution_size(outputs) == 4
        assert solution_size({}, "mis") == 0

    def test_sweep_rows_use_ones_count_for_mis(self):
        sweep = Sweep(base_seed=1)
        sweep.add(
            "cell",
            GraphSpec.of("ring", 8),
            "mis_parallel",
            predictions=PredictionSpec.of("all_zeros_mis"),
            problem="mis",
        )
        row = sweep.run("serial").rows[0]
        # A ring MIS is a proper subset: strictly between 1 and n-1 ones.
        assert 0 < row.solution_size < 8

    def test_degradation_and_sweep_agree_on_solution_size(self):
        """The harness and the executor share one ones-count helper."""
        from repro.faults import degradation_sweep
        from repro.bench.algorithms import mis_simple
        from repro.predictions import all_zeros_mis
        from repro.problems import MIS, solution_size
        from repro.graphs import grid2d as _grid

        graph = _grid(4, 4)
        points = degradation_sweep(
            mis_simple(),
            MIS,
            graph,
            lambda seed: all_zeros_mis(graph),
            drop_rates=(0.0,),
            seeds=(0,),
        )
        result = run(mis_simple(), graph, all_zeros_mis(graph), seed=0)
        assert points[0].solution_size == solution_size(result.outputs, "mis")


class TestSweepObservability:
    def test_rows_carry_elapsed(self):
        result = _noise_grid().run("serial")
        assert all(row.elapsed > 0 for row in result.rows)

    def test_profile_off_by_default(self):
        result = _noise_grid().run("serial")
        assert all(row.profile is None for row in result.rows)
        assert all(row.events is None for row in result.rows)

    def test_profiled_sweep_attaches_summaries(self):
        result = _noise_grid().run("serial", profile=True)
        for row in result.rows:
            assert row.profile["rounds"] == row.rounds_executed
            assert row.profile["messages"] == row.message_count

    def test_profiled_rows_match_unprofiled(self):
        plain = _noise_grid().run("serial")
        profiled = _noise_grid().run("serial", profile=True)
        assert plain.equivalent_to(profiled)

    def test_events_path_exports_all_cells(self, tmp_path):
        from repro.obs.events import LIFECYCLE_KINDS, read_jsonl_events

        path = str(tmp_path / "events.jsonl")
        result = _noise_grid().run("serial", events_path=path)
        entries = read_jsonl_events(path)
        assert {entry["cell"] for entry in entries} == {
            row.label for row in result.rows
        }
        sends = [e for e in entries if e["kind"] == "send"]
        assert len(sends) == sum(row.message_count for row in result.rows)
        assert any(e["kind"] in LIFECYCLE_KINDS for e in entries)

    def test_process_backend_ships_events_and_profiles(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        result = _noise_grid().run(
            "process", jobs=2, profile=True, events_path=path
        )
        from repro.obs.events import read_jsonl_events

        assert all(row.profile is not None for row in result.rows)
        assert {e["cell"] for e in read_jsonl_events(path)} == {
            row.label for row in result.rows
        }

    def test_telemetry_aggregates(self):
        result = _noise_grid().run("serial")
        telemetry = result.telemetry()
        assert telemetry["cells"] == len(result)
        assert telemetry["rounds_total"] == sum(r.rounds for r in result.rows)
        assert telemetry["messages_total"] == sum(
            r.message_count for r in result.rows
        )
        assert telemetry["valid_cells"] == len(result)
        assert telemetry["invalid_cells"] == 0
        assert telemetry["node_rounds_total"] == sum(
            r.rounds_executed * r.n for r in result.rows
        )
        assert telemetry["node_rounds_per_sec"] > 0


# ----------------------------------------------------------------------
# Worker-death recovery
# ----------------------------------------------------------------------
def _killer_ring(n, marker):
    """``ring(n)``, except building it kills the whole process first —
    unconditionally when ``marker == "ALWAYS"``, once (recording the kill
    in the marker file) otherwise.  ``os._exit`` skips all Python-level
    cleanup, so the pool loses the worker mid-chunk exactly like a
    segfault or an OOM kill would."""
    if marker == "ALWAYS":
        os._exit(1)
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("killed")
        os._exit(1)
    return ring(n)


def _killer_sweep(marker):
    sweep = Sweep(name="killer", base_seed=3)
    for index in range(4):
        sweep.add(
            f"ok{index}",
            GraphSpec.of("ring", 8),
            "mis_simple",
            predictions="all_zeros_mis",
            problem="mis",
            seed=index,
        )
    # Last, alone in its chunk at chunk_size=2: the kill deterministically
    # hits the chunk holding only this cell.
    sweep.add(
        "boom",
        GraphSpec.of(_killer_ring, 8, marker),
        "mis_simple",
        predictions="all_zeros_mis",
        problem="mis",
        seed=9,
    )
    return sweep


class TestBrokenPoolRecovery:
    def test_worker_death_retried_on_fresh_pool(self, tmp_path):
        """A transient worker death (here: dies on first build, healthy on
        retry) loses no cells: the affected cells rerun on a fresh pool and
        the sweep completes as if nothing happened — plus a warning."""
        marker = str(tmp_path / "killed-once")
        with pytest.warns(RuntimeWarning, match="worker died"):
            result = _killer_sweep(marker).run("process", jobs=2, chunk_size=2)
        assert len(result) == 5
        assert [row.index for row in result.rows] == list(range(5))
        assert all(row.failure is None for row in result.rows)
        assert result.all_valid
        assert result.row("boom").rounds > 0

    def test_unrecoverable_cell_becomes_failed_placeholder(self):
        """A cell whose worker dies on the retry too is recorded as a
        failed placeholder row; completed cells keep their results and
        the table stays complete and ordered."""
        with pytest.warns(RuntimeWarning, match="worker died"):
            result = _killer_sweep("ALWAYS").run(
                "process", jobs=2, chunk_size=2
            )
        assert len(result) == 5
        assert [row.index for row in result.rows] == list(range(5))
        boom = result.row("boom")
        assert boom.failure is not None
        assert "BrokenProcessPool" in boom.failure
        assert boom.rounds == 0
        assert boom.valid is None
        others = [row for row in result.rows if row.label != "boom"]
        assert all(row.failure is None for row in others)
        assert all(row.valid for row in others)
        assert result.telemetry()["failed_cells"] == 1


# ----------------------------------------------------------------------
# Bare-controller deprecation through the sweep path
# ----------------------------------------------------------------------
class TestSweepBareControllerWarning:
    def _sweep(self, faults):
        from repro.faults import FaultPlan  # noqa: F401 (namespace check)

        sweep = Sweep(name="bare", base_seed=1)
        sweep.add(
            "a",
            GraphSpec.of("ring", 6),
            "mis_simple",
            predictions="all_zeros_mis",
            faults=faults,
            problem="mis",
            seed=0,
            config=RunConfig(max_rounds=50, on_round_limit="partial"),
        )
        return sweep

    def test_bare_controller_warns_from_sweep(self):
        """The engine-side deprecation fires inside pool workers where
        nobody sees it; the sweep path must warn on the parent side."""
        from repro.faults import FaultPlan

        controller = FaultPlan.crash_stop({1: 2}).build_controller()
        # Broad capture: the serial run also fires the engine-side
        # deprecation, which must not leak (and -W error would promote it).
        with pytest.warns(DeprecationWarning) as record:
            self._sweep(controller).run("serial")
        assert any("sweep cell 'a'" in str(w.message) for w in record)

    def test_fault_plan_does_not_warn(self):
        from repro.faults import FaultPlan

        sweep = self._sweep(FaultPlan.crash_stop({1: 2}))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sweep.run("serial")
