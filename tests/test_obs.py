"""Tests for the observability layer: sinks, profiling, bench baselines."""

from __future__ import annotations

import json

import pytest

from repro.core import RunConfig, run
from repro.faults import FaultPlan
from repro.faults.plan import MessageAdversary
from repro.graphs import erdos_renyi, grid2d
from repro.obs import (
    EventSink,
    JsonlEventSink,
    MemoryEventSink,
    RoundProfile,
)
from repro.obs.bench import (
    SCHEMA,
    BaselineDiff,
    diff_payloads,
    load_baseline,
    record_run,
    write_baseline,
)
from repro.obs.events import (
    LIFECYCLE_KINDS,
    event_dict,
    read_jsonl_events,
    write_jsonl_events,
)
from repro.predictions import noisy_predictions
from repro.problems import MIS
from repro.simulator import NodeProgram


def _mis_setup(n=24, p=0.15, seed=3, noise=0.2):
    from repro.bench.algorithms import mis_simple

    graph = erdos_renyi(n, p, seed=seed)
    predictions = noisy_predictions(MIS, graph, noise, seed=seed)
    return mis_simple(), graph, predictions


def _fault_plan(drop_rate=0.1, seed=5):
    return FaultPlan(
        messages=MessageAdversary(drop_rate=drop_rate, duplicate_rate=0.05),
        seed=seed,
    )


def _trace_stream(trace):
    """TraceEvents in canonical dict form, for stream comparison."""
    return [event_dict(e.round, e.kind, e.node, e.data) for e in trace.events]


# ----------------------------------------------------------------------
# Event sinks
# ----------------------------------------------------------------------
class TestEventSinks:
    def test_memory_sink_agrees_with_trace_recorder(self):
        """A sink receives exactly the TraceRecorder stream, in order —
        including adversarial drop/duplicate events under faults."""
        algorithm, graph, predictions = _mis_setup()
        sink = MemoryEventSink()
        kwargs = dict(
            seed=7, faults=_fault_plan(), max_rounds=60, on_round_limit="partial"
        )
        run(algorithm, graph, predictions, sinks=[sink], **kwargs)

        algorithm, graph, predictions = _mis_setup()
        traced = run(algorithm, graph, predictions, trace=True, **kwargs)
        expected = _trace_stream(traced.trace)
        assert any(e["kind"] == "drop" for e in expected)  # faults did fire
        assert sink.events == expected

    def test_jsonl_sink_replays_event_for_event(self, tmp_path):
        """The JSONL export, read back, is the TraceRecorder stream."""
        path = str(tmp_path / "events.jsonl")
        algorithm, graph, predictions = _mis_setup()
        kwargs = dict(
            seed=7, faults=_fault_plan(), max_rounds=60, on_round_limit="partial"
        )
        with JsonlEventSink(path) as sink:
            run(algorithm, graph, predictions, sinks=[sink], **kwargs)
        assert sink.lines_written > 0

        algorithm, graph, predictions = _mis_setup()
        traced = run(algorithm, graph, predictions, trace=True, **kwargs)
        replayed = [
            entry
            for entry in read_jsonl_events(path)
            if entry["kind"] not in LIFECYCLE_KINDS
        ]
        assert replayed == _trace_stream(traced.trace)

    def test_lifecycle_entries_bracket_rounds(self):
        algorithm, graph, predictions = _mis_setup()
        sink = MemoryEventSink()
        result = run(algorithm, graph, predictions, seed=1, sinks=[sink])
        lifecycle = sink.lifecycle
        assert lifecycle[0]["kind"] == "run_begin"
        assert lifecycle[0]["n"] == graph.n
        assert lifecycle[-1]["kind"] == "run_end"
        begins = [e for e in lifecycle if e["kind"] == "round_begin"]
        ends = [e for e in lifecycle if e["kind"] == "round_end"]
        assert len(begins) == len(ends) == result.rounds_executed

    def test_round_end_timing_is_monotone_and_consistent(self):
        """Round indices increase 1..R, elapsed is non-negative, and the
        per-round message deltas sum to the run's message count."""
        algorithm, graph, predictions = _mis_setup()
        sink = MemoryEventSink()
        result = run(algorithm, graph, predictions, seed=1, sinks=[sink])
        ends = [e for e in sink.lifecycle if e["kind"] == "round_end"]
        assert [e["round"] for e in ends] == list(
            range(1, result.rounds_executed + 1)
        )
        assert all(e["elapsed"] >= 0.0 for e in ends)
        assert sum(e["messages"] for e in ends) == result.message_count

    def test_multiple_sinks_receive_the_same_stream(self):
        algorithm, graph, predictions = _mis_setup()
        first, second = MemoryEventSink(), MemoryEventSink()
        run(algorithm, graph, predictions, seed=1, sinks=[first, second])
        assert first.entries == second.entries

    def test_sinks_disabled_by_default(self):
        """A plain run attaches no sinks and records no profile."""
        from repro.simulator import SyncEngine

        algorithm, graph, predictions = _mis_setup()
        result = run(algorithm, graph, predictions, seed=1)
        assert result.profile is None
        engine = SyncEngine(grid2d(2, 2), lambda v: _Noop())
        assert engine._sinks == ()
        assert engine._profile is None

    def test_custom_sink_needs_only_the_hooks_it_wants(self):
        class CountingSink(EventSink):
            sends = 0

            def record(self, round_index, kind, node, data=None):
                if kind == "send":
                    self.sends += 1

        algorithm, graph, predictions = _mis_setup()
        sink = CountingSink()
        result = run(algorithm, graph, predictions, seed=1, sinks=[sink])
        assert sink.sends == result.message_count

    def test_jsonl_sink_reprs_unserializable_payloads(self, tmp_path):
        path = str(tmp_path / "weird.jsonl")
        with JsonlEventSink(path) as sink:
            sink.record(1, "send", 2, {"payload": object()})
        (entry,) = read_jsonl_events(path)
        assert entry["data"]["payload"].startswith("<object object")

    def test_write_jsonl_events_tags_cells_and_appends(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        open(path, "w").close()
        write_jsonl_events(path, [event_dict(1, "send", 2)], cell="a")
        write_jsonl_events(path, [event_dict(1, "send", 3)], cell="b")
        entries = read_jsonl_events(path)
        assert [e["cell"] for e in entries] == ["a", "b"]


class _Noop(NodeProgram):
    def compose(self, ctx):
        return {}

    def process(self, ctx, inbox):
        ctx.set_output(0)
        ctx.terminate()


# ----------------------------------------------------------------------
# Round profiling
# ----------------------------------------------------------------------
class TestRoundProfile:
    def _profiled(self, **kwargs):
        algorithm, graph, predictions = _mis_setup()
        return run(
            algorithm, graph, predictions, seed=2, profile=True, **kwargs
        )

    def test_profiled_run_is_observationally_identical(self):
        """Same outputs, rounds, message counts and event stream as the
        unprofiled path — the split loop only adds timers."""
        kwargs = dict(
            seed=7, faults=_fault_plan(), max_rounds=60, on_round_limit="partial"
        )
        algorithm, graph, predictions = _mis_setup()
        sink = MemoryEventSink()
        profiled = run(
            algorithm, graph, predictions, sinks=[sink], profile=True, **kwargs
        )
        algorithm, graph, predictions = _mis_setup()
        plain_sink = MemoryEventSink()
        plain = run(algorithm, graph, predictions, sinks=[plain_sink], **kwargs)
        assert profiled.outputs == plain.outputs
        assert profiled.rounds == plain.rounds
        assert profiled.message_count == plain.message_count
        assert profiled.dropped_messages == plain.dropped_messages
        assert sink.events == plain_sink.events

    def test_one_sample_per_executed_round(self):
        result = self._profiled()
        profile = result.profile
        assert isinstance(profile, RoundProfile)
        assert len(profile) == result.rounds_executed
        assert [s.round for s in profile.samples] == list(
            range(1, result.rounds_executed + 1)
        )

    def test_phase_timings_are_nonnegative_and_sum_to_elapsed(self):
        profile = self._profiled().profile
        for sample in profile.samples:
            for phase in ("compose", "deliver", "process", "finalize"):
                assert getattr(sample, phase) >= 0.0
            assert sample.elapsed == pytest.approx(
                sample.compose + sample.deliver + sample.process + sample.finalize
            )
        assert profile.elapsed >= sum(profile.round_times())

    def test_message_counts_match_run_total(self):
        result = self._profiled()
        assert sum(result.profile.message_counts()) == result.message_count

    def test_summary_is_flat_and_json_safe(self):
        result = self._profiled()
        summary = result.profile.summary()
        json.dumps(summary)  # must not raise
        assert summary["rounds"] == result.rounds_executed
        assert summary["messages"] == result.message_count
        shares = [
            summary[f"{phase}_share"]
            for phase in ("compose", "deliver", "process", "finalize")
        ]
        assert sum(shares) == pytest.approx(1.0)
        assert summary["max_round_s"] >= 0.0

    def test_histograms_cover_every_round(self):
        profile = self._profiled().profile
        timing = profile.timing_histogram(bins=4)
        messages = profile.message_histogram(bins=4)
        assert sum(count for _, _, count in timing) == len(profile)
        assert sum(count for _, _, count in messages) == len(profile)

    def test_table_renders_one_line_per_round(self):
        profile = self._profiled().profile
        lines = profile.table().splitlines()
        assert len(lines) == len(profile) + 2  # header + rounds + total
        assert "compose" in lines[0] and lines[-1].startswith("total")

    def test_profile_via_run_config(self):
        algorithm, graph, predictions = _mis_setup()
        result = run(
            algorithm,
            graph,
            predictions,
            config=RunConfig(seed=2, profile=True),
        )
        assert isinstance(result.profile, RoundProfile)

    def test_empty_profile_aggregates(self):
        profile = RoundProfile()
        assert profile.summary()["rounds"] == 0
        assert profile.timing_histogram() == []
        assert profile.phase_totals()["compose"] == 0.0


# ----------------------------------------------------------------------
# Bench baselines
# ----------------------------------------------------------------------
def _tiny_sweep():
    from repro.exec import GraphSpec, PredictionSpec, Sweep

    sweep = Sweep(name="bench-test", base_seed=1)
    sweep.add_grid(
        {"gnp": GraphSpec.of("erdos_renyi", 16, 0.2, seed=4)},
        {"simple": "mis_simple"},
        predictions={"zeros": "all_zeros_mis"},
        seeds=(0, 1),
        problem="mis",
    )
    return sweep


class TestBenchBaselines:
    def test_write_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        result = _tiny_sweep().run("serial")
        payload = write_baseline(path, result)
        loaded = load_baseline(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["name"] == "bench-test"
        assert len(loaded["cells"]) == len(result.rows)
        assert loaded["telemetry"] == payload["telemetry"]

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(str(path))

    def test_first_record_run_has_no_diff(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        payload, diff = record_run(path, _tiny_sweep().run("serial"))
        assert diff is None
        assert load_baseline(path) == json.loads(json.dumps(payload))

    def test_second_identical_run_diffs_clean(self, tmp_path):
        """The acceptance check: same sweep twice -> clean diff (same
        per-cell rounds/messages; throughput within the gate)."""
        path = str(tmp_path / "BENCH_test.json")
        record_run(path, _tiny_sweep().run("serial"))
        _, diff = record_run(path, _tiny_sweep().run("serial"))
        assert isinstance(diff, BaselineDiff)
        assert diff.ok, diff.summary()
        assert diff.determinism_breaks == []
        assert "clean" in diff.summary()

    def test_throughput_regression_beyond_gate_fails(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        result = _tiny_sweep().run("serial")
        previous = write_baseline(path, result)
        current = json.loads(json.dumps(previous))
        current["telemetry"]["node_rounds_per_sec"] = (
            previous["telemetry"]["node_rounds_per_sec"] / 3.0
        )
        diff = diff_payloads(current, previous, gate=2.0)
        assert not diff.ok
        assert diff.throughput_ratio == pytest.approx(3.0)
        assert any("regressed" in entry for entry in diff.regressions)
        assert "REGRESSED" in diff.summary()

    def test_determinism_break_fails_regardless_of_timing(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        previous = write_baseline(path, _tiny_sweep().run("serial"))
        current = json.loads(json.dumps(previous))
        current["cells"][0]["rounds"] += 1
        diff = diff_payloads(current, previous)
        assert not diff.ok
        assert diff.determinism_breaks
        assert diff.throughput_ratio is not None

    def test_new_and_missing_cells_are_notes_not_failures(self):
        previous = {
            "name": "x",
            "telemetry": {},
            "cells": [{"label": "old", "rounds": 3}],
        }
        current = {
            "name": "x",
            "telemetry": {},
            "cells": [{"label": "new", "rounds": 3}],
        }
        diff = diff_payloads(current, previous)
        assert diff.ok
        assert len(diff.notes) == 2

    def test_record_run_replaces_baseline_even_on_regression(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        result = _tiny_sweep().run("serial")
        first = write_baseline(path, result)
        # Rewrite the stored baseline to claim implausibly high throughput
        # so the next record_run sees a >2x regression.
        doctored = json.loads(json.dumps(first))
        doctored["telemetry"]["node_rounds_per_sec"] *= 1e6
        with open(path, "w") as handle:
            json.dump(doctored, handle)
        payload, diff = record_run(path, _tiny_sweep().run("serial"))
        assert diff is not None and not diff.ok
        assert load_baseline(path)["telemetry"] == payload["telemetry"]
