"""Fault-injection subsystem: plans, adversaries, recovery, degradation.

The paper's model is reliable and synchronous; ``repro.faults`` measures
what happens outside it.  These tests pin down the subsystem's contracts:
declarative plans validate their inputs, every adversarial decision is a
deterministic function of (seed, round, edge), crash-recovery rejoins
nodes with fresh state, partial runs return a measurable
:class:`StuckReport`, and the legacy ``crash_rounds`` path is exactly
equivalent to the plan it desugars into.
"""

import pytest

from repro.algorithms.mis import GreedyMISAlgorithm, HardenedGreedyMIS
from repro.bench.algorithms import mis_hardened_simple, mis_simple
from repro.core import run
from repro.faults import (
    CrashFault,
    FaultController,
    FaultPlan,
    MessageAdversary,
    PredictionAdversary,
    degradation_sweep,
    random_crash_plan,
    summarize_points,
    survivor_coverage,
    survivor_violations,
)
from repro.graphs import erdos_renyi, grid2d, line, perturb_edges, ring
from repro.predictions import perfect_predictions
from repro.problems import MIS
from repro.simulator import StuckReport, SyncEngine


class TestFaultPlan:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            MessageAdversary(drop_rate=1.5)
        with pytest.raises(ValueError):
            MessageAdversary(corrupt_rate=-0.1)

    def test_rejects_bad_crash(self):
        with pytest.raises(ValueError):
            CrashFault(node=1, round=-1)
        with pytest.raises(ValueError):
            CrashFault(node=1, round=2, recover_after=0)

    def test_rejects_duplicate_crash_nodes(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(CrashFault(1, 2), CrashFault(1, 3)))

    def test_from_crash_rounds_round_trips(self):
        plan = FaultPlan.from_crash_rounds({3: 2, 7: 5})
        assert {(c.node, c.round) for c in plan.crashes} == {(3, 2), (7, 5)}
        assert all(c.recover_after is None for c in plan.crashes)

    def test_recovery_round(self):
        fault = CrashFault(node=4, round=3, recover_after=2)
        assert fault.recovery_round == 5

    def test_message_loss_constructor(self):
        plan = FaultPlan.message_loss(0.3, seed=7)
        assert plan.messages is not None
        assert plan.messages.drop_rate == 0.3
        assert plan.seed == 7


class TestMessageAdversaryDeterminism:
    def test_fate_is_a_function_of_seed_round_edge(self):
        plan = FaultPlan.message_loss(0.5, seed=11)
        a = FaultController(plan)
        b = FaultController(plan)
        for round_index in range(1, 6):
            for sender, receiver in [(0, 1), (1, 0), (2, 3)]:
                fa = a.message_fate(round_index, sender, receiver, "x")
                fb = b.message_fate(round_index, sender, receiver, "x")
                assert (fa.dropped, fa.corrupted, fa.duplicate) == (
                    fb.dropped,
                    fb.corrupted,
                    fb.duplicate,
                )

    def test_fate_is_order_independent(self):
        """Querying edges in a different order gives identical fates."""
        plan = FaultPlan.message_loss(0.5, seed=2)
        forward = FaultController(plan)
        backward = FaultController(plan)
        edges = [(u, v, r) for r in (1, 2) for u in range(4) for v in range(4) if u != v]
        fates_fwd = {e: forward.message_fate(e[2], e[0], e[1], "m") for e in edges}
        fates_bwd = {
            e: backward.message_fate(e[2], e[0], e[1], "m") for e in reversed(edges)
        }
        for e in edges:
            assert fates_fwd[e].dropped == fates_bwd[e].dropped

    def test_per_edge_adversary_only_attacks_listed_edges(self):
        adversary = MessageAdversary(drop_rate=1.0, edges=((0, 1),))
        plan = FaultPlan(messages=adversary, seed=0)
        controller = FaultController(plan)
        assert controller.message_fate(1, 0, 1, "m").dropped
        assert controller.message_fate(1, 1, 0, "m").dropped
        assert not controller.message_fate(1, 1, 2, "m").dropped

    def test_dropped_message_is_not_duplicated(self):
        """drop=1 and duplicate=1: the drop wins, nothing is replayed."""
        plan = FaultPlan(
            messages=MessageAdversary(drop_rate=1.0, duplicate_rate=1.0)
        )
        controller = FaultController(plan)
        fate = controller.message_fate(1, 0, 1, "m")
        assert fate.dropped and not fate.duplicate


class TestSeedDeterminismRegression:
    """Same plan + seed => byte-identical results; different seeds differ."""

    def _noisy_plan(self, seed):
        return FaultPlan(
            crashes=(CrashFault(5, 2), CrashFault(9, 3, recover_after=2)),
            messages=MessageAdversary(
                drop_rate=0.2, corrupt_rate=0.1, duplicate_rate=0.1
            ),
            seed=seed,
        )

    def test_identical_reruns(self):
        graph = erdos_renyi(30, 0.15, seed=1)
        predictions = perfect_predictions(MIS, graph, seed=1)
        results = [
            run(
                mis_hardened_simple(),
                graph,
                predictions,
                faults=self._noisy_plan(seed=4),
                max_rounds=40,
                on_round_limit="partial",
            )
            for _ in range(2)
        ]
        assert repr(results[0]) == repr(results[1])
        assert results[0].dropped_messages == results[1].dropped_messages
        assert results[0].outputs == results[1].outputs

    def test_different_seeds_differ(self):
        graph = erdos_renyi(30, 0.15, seed=1)
        predictions = perfect_predictions(MIS, graph, seed=1)
        a, b = (
            run(
                mis_hardened_simple(),
                graph,
                predictions,
                faults=self._noisy_plan(seed=seed),
                max_rounds=40,
                on_round_limit="partial",
            )
            for seed in (0, 1)
        )
        assert repr(a) != repr(b)


class TestTraceInterplay:
    def test_send_to_crashed_node_still_traced(self):
        """The send is the sender's act; the trace keeps it even though
        the crashed receiver never gets the message."""
        from repro.simulator import TraceRecorder
        from repro.simulator.program import NodeProgram

        class Broadcast(NodeProgram):
            def compose(self, ctx):
                return {other: "ping" for other in ctx.neighbors}

            def process(self, ctx, inbox):
                if ctx.round >= 3:
                    ctx.set_output(0)
                    ctx.terminate()

        graph = ring(6)
        plan = FaultPlan(crashes=(CrashFault(1, 1),))
        trace = TraceRecorder()
        engine = SyncEngine(
            graph, lambda node: Broadcast(), trace=trace, faults=plan
        )
        result = engine.run()
        sends_to_crashed = [
            e
            for e in trace.of_kind("send")
            if e.data.get("to") == 1 and e.round >= 2
        ]
        assert sends_to_crashed
        assert result.records[1].crashed

    def test_drop_events_reference_their_sends(self):
        graph = line(8)
        plan = FaultPlan.message_loss(0.5, seed=3)
        trace = run(
            HardenedGreedyMIS(), graph, faults=plan, max_rounds=100, trace=True
        ).trace
        drops = list(trace.of_kind("drop"))
        assert drops
        sends = {
            (e.round, e.node, e.data["to"]) for e in trace.of_kind("send")
        }
        for event in drops:
            assert (event.round, event.node, event.data["to"]) in sends

    def test_corrupt_events_carry_original_payload(self):
        graph = line(8)
        plan = FaultPlan(
            messages=MessageAdversary(corrupt_rate=1.0), seed=0
        )
        predictions = perfect_predictions(MIS, graph, seed=0)
        trace = run(
            mis_hardened_simple(),
            graph,
            predictions,
            faults=plan,
            max_rounds=100,
            trace=True,
        ).trace
        corruptions = list(trace.of_kind("corrupt"))
        assert corruptions
        for event in corruptions:
            assert "original" in event.data
            assert event.data["payload"] != event.data["original"]

    def test_duplicates_are_delivered_one_round_later(self):
        graph = line(8)
        plan = FaultPlan(
            messages=MessageAdversary(duplicate_rate=1.0), seed=0
        )
        result = run(
            HardenedGreedyMIS(), graph, faults=plan, max_rounds=100, trace=True
        )
        trace = result.trace
        duplicates = list(trace.of_kind("duplicate"))
        assert duplicates
        assert result.duplicated_messages == len(duplicates)
        sends = {
            (e.round, e.node, e.data["to"]) for e in trace.of_kind("send")
        }
        for event in duplicates:
            assert (event.round - 1, event.node, event.data["to"]) in sends

    def test_trace_records_crash_and_recover(self):
        graph = ring(6)
        plan = FaultPlan(crashes=(CrashFault(2, 1, recover_after=2),))
        trace = run(
            HardenedGreedyMIS(), graph, faults=plan, max_rounds=100, trace=True
        ).trace
        assert trace.first_round_of("crash") == 1
        assert trace.first_round_of("recover") == 3


class TestCrashRecovery:
    def test_recovered_node_rejoins_and_decides(self):
        graph = ring(8)
        plan = FaultPlan(crashes=(CrashFault(3, 1, recover_after=3),))
        result = run(HardenedGreedyMIS(), graph, faults=plan, max_rounds=100)
        record = result.records[3]
        assert not record.crashed
        assert record.recovery_round == 4
        assert 3 in result.outputs
        assert MIS.verify_solution(graph, result.outputs) == []

    def test_crash_stop_node_stays_dark(self):
        graph = ring(8)
        plan = FaultPlan(crashes=(CrashFault(3, 1),))
        result = run(HardenedGreedyMIS(), graph, faults=plan, max_rounds=100)
        assert result.records[3].crashed
        assert result.records[3].recovery_round is None
        assert 3 not in result.outputs

    def test_crash_rounds_backcompat_equivalence(self):
        """Legacy crash_rounds= warns, and the plan it desugars to is
        identical to FaultPlan.crash_stop."""
        graph = erdos_renyi(24, 0.2, seed=7)
        crash_rounds = {5: 2, 9: 4}
        with pytest.warns(DeprecationWarning, match="crash_stop"):
            legacy = run(
                GreedyMISAlgorithm(),
                graph,
                crash_rounds=crash_rounds,
                max_rounds=1000,
            )
        plan = run(
            GreedyMISAlgorithm(),
            graph,
            faults=FaultPlan.from_crash_rounds(crash_rounds),
            max_rounds=1000,
        )
        assert repr(legacy) == repr(plan)


class TestPredictionAdversary:
    def test_flips_are_seeded_and_partial(self):
        graph = grid2d(5, 5)
        predictions = perfect_predictions(MIS, graph, seed=0)
        plan = FaultPlan(
            predictions=PredictionAdversary(flip_rate=0.4), seed=1
        )
        controller = FaultController(plan)
        corrupted_a = controller.corrupt_predictions(predictions, graph.nodes)
        corrupted_b = controller.corrupt_predictions(predictions, graph.nodes)
        assert corrupted_a == corrupted_b
        flipped = [n for n in graph.nodes if corrupted_a[n] != predictions[n]]
        assert 0 < len(flipped) < graph.n

    def test_corrupted_predictions_slow_but_stay_safe(self):
        graph = grid2d(5, 5)
        predictions = perfect_predictions(MIS, graph, seed=0)
        plan = FaultPlan(
            predictions=PredictionAdversary(flip_rate=0.5), seed=3
        )
        result = run(
            mis_hardened_simple(), graph, predictions, faults=plan, max_rounds=100
        )
        assert MIS.verify_solution(graph, result.outputs) == []


class TestRoundsExecuted:
    def test_stop_after_sets_rounds_executed(self):
        graph = line(30)
        engine = SyncEngine(graph, lambda node: GreedyMISAlgorithm().build_program())
        result = engine.run(stop_after=4)
        assert result.rounds_executed == 4

    def test_all_crashed_run_is_measurable(self):
        """Nobody can terminate in round 1 of the initialization, so a
        round-1 crash of every node leaves rounds=0 but a measurable run."""
        from repro.algorithms.mis import MISInitializationAlgorithm

        graph = ring(4)
        predictions = perfect_predictions(MIS, graph, seed=0)
        plan = FaultPlan(
            crashes=tuple(CrashFault(v, 1) for v in graph.nodes)
        )
        result = run(
            MISInitializationAlgorithm(),
            graph,
            predictions,
            faults=plan,
            max_rounds=50,
        )
        assert result.rounds == 0
        assert result.rounds_executed == 1
        assert all(record.crashed for record in result.records.values())

    def test_clean_run_rounds_match(self):
        graph = line(10)
        result = run(GreedyMISAlgorithm(), graph)
        assert result.rounds_executed == result.rounds


class TestPartialMode:
    def test_partial_returns_stuck_report(self):
        graph = line(40)
        result = run(
            GreedyMISAlgorithm(), graph, max_rounds=5, on_round_limit="partial"
        )
        assert isinstance(result.stuck, StuckReport)
        assert result.stuck.round == 5
        assert result.stuck.live_nodes
        assert result.stuck.total_nodes == 40
        assert result.rounds_executed == 5
        snapshot = result.stuck.snapshots[result.stuck.live_nodes[0]]
        assert snapshot.state  # program attrs captured as reprs
        # Decided nodes are still reported in outputs.
        assert result.outputs
        assert "node(s) still live" in result.stuck.summary()

    def test_raise_mode_still_raises(self):
        from repro.simulator import RoundLimitExceeded

        graph = line(40)
        with pytest.raises(RoundLimitExceeded):
            run(GreedyMISAlgorithm(), graph, max_rounds=5)

    def test_invalid_mode_rejected(self):
        graph = line(4)
        with pytest.raises(ValueError):
            SyncEngine(
                graph,
                lambda node: GreedyMISAlgorithm().build_program(),
                on_round_limit="explode",
            )


class TestValidatorsAndHarness:
    def test_survivor_coverage_counts_only_survivors(self):
        graph = ring(8)
        plan = FaultPlan(crashes=(CrashFault(0, 1), CrashFault(4, 1)))
        result = run(HardenedGreedyMIS(), graph, faults=plan, max_rounds=100)
        assert survivor_coverage(result) == 1.0
        assert survivor_violations(MIS, graph, result) == []

    def test_adjacent_ones_are_flagged(self):
        graph = line(4)
        result = run(GreedyMISAlgorithm(), graph)
        result.outputs[1] = 1
        result.outputs[2] = 1
        assert survivor_violations(MIS, graph, result)

    def test_random_crash_plan_is_seeded(self):
        graph = erdos_renyi(30, 0.2, seed=0)
        a = random_crash_plan(graph, 0.3, seed=5)
        b = random_crash_plan(graph, 0.3, seed=5)
        assert a == b
        assert len(a.crashes) == 9

    def test_degradation_sweep_shape(self):
        graph = grid2d(4, 4)
        points = degradation_sweep(
            mis_hardened_simple(),
            MIS,
            graph,
            lambda seed: perfect_predictions(MIS, graph, seed=seed),
            drop_rates=(0.0, 0.2),
            seeds=(0, 1),
            max_rounds=30,
        )
        assert len(points) == 4
        rows = summarize_points(points)
        assert [row["drop_rate"] for row in rows] == [0.0, 0.2]
        assert rows[0]["mean_coverage"] == 1.0
        assert all(row["violations"] == 0 for row in rows)


class TestChurnEdgePerturbation:
    def test_removed_edges_are_not_readded(self):
        graph = ring(12)
        perturbed = perturb_edges(graph, add=6, remove=6, seed=2)
        removed = set(graph.edges()) - set(perturbed.edges())
        assert len(removed) == 6
        assert not (removed & set(perturbed.edges()))

    def test_large_addition_terminates_quickly(self):
        """The rejection loop is set-based: adding hundreds of edges to a
        sparse graph stays linear in the number added."""
        graph = line(200)
        perturbed = perturb_edges(graph, add=400, seed=1)
        assert perturbed.num_edges == graph.num_edges + 400


class TestBareControllerDeprecation:
    """Passing a pre-built controller as ``faults=`` is a legacy entry
    point: it bypasses the plan layer and couples callers to the engine's
    internal hook API.  The shim still works but warns."""

    def test_bare_controller_warns(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        plan = FaultPlan.message_loss(0.4, seed=7)
        graph = line(8)
        with pytest.warns(DeprecationWarning, match="bare fault controller"):
            engine = SyncEngine(
                graph,
                lambda node: GreedyMISProgram(),
                faults=plan.build_controller(),
            )
        assert engine.interposer is not None

    def test_bare_controller_behaves_like_the_plan(self):
        import warnings

        from repro.algorithms.mis.greedy import GreedyMISProgram

        plan = FaultPlan.message_loss(0.4, seed=7)
        graph = line(8)

        def outcome(faults):
            engine = SyncEngine(
                graph,
                lambda node: GreedyMISProgram(),
                faults=faults,
                max_rounds=60,
                on_round_limit="partial",
            )
            result = engine.run()
            return (result.outputs, result.rounds, result.dropped_messages)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = outcome(plan.build_controller())
        assert legacy == outcome(plan)

    def test_plan_path_does_not_warn(self):
        import warnings

        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = line(6)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SyncEngine(
                graph,
                lambda node: GreedyMISProgram(),
                faults=FaultPlan.message_loss(0.2, seed=1),
            ).run()
