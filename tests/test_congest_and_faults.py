"""CONGEST-compatibility and fault-tolerance coverage.

The paper works in LOCAL "for simplicity" but notes that some algorithms
also fit CONGEST.  Here we pin down which of ours do: everything except
the clustering reference (whose intra-cluster gather ships topology maps)
sends O(log n)-bit messages.  We also exercise the fault-tolerance
contract of the Parallel Template's part-1 components under engine-level
crash injection.
"""

import pytest

from repro.algorithms.coloring import (
    LinialColoringAlgorithm,
    PaletteGreedyColoringAlgorithm,
    VertexColoringBaseAlgorithm,
)
from repro.algorithms.edge_coloring import GreedyEdgeColoringAlgorithm
from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import (
    BlackWhiteGreedyMIS,
    ClusteringMISReference,
    GreedyMISAlgorithm,
    LinialMISAlgorithm,
    LubyMISAlgorithm,
    MISBaseAlgorithm,
    MISInitializationAlgorithm,
)
from repro.bench.algorithms import (
    matching_simple,
    mis_parallel,
    mis_simple,
)
from repro.core import run
from repro.faults import FaultPlan
from repro.graphs import erdos_renyi, random_ids_from_domain, random_regular, ring
from repro.predictions import noisy_predictions
from repro.problems import MATCHING, MIS, VERTEX_COLORING


class TestCongestCompatibility:
    """Max message width stays within the CONGEST budget."""

    CONGEST_ALGORITHMS = [
        ("greedy-mis", GreedyMISAlgorithm, MIS, False),
        ("luby-mis", LubyMISAlgorithm, MIS, False),
        ("linial-mis", LinialMISAlgorithm, MIS, False),
        ("greedy-matching", GreedyMatchingAlgorithm, MATCHING, False),
        ("palette-coloring", PaletteGreedyColoringAlgorithm, VERTEX_COLORING, False),
        ("linial-coloring", LinialColoringAlgorithm, VERTEX_COLORING, False),
    ]

    @pytest.mark.parametrize(
        "name,factory,problem,needs_predictions",
        CONGEST_ALGORITHMS,
        ids=[case[0] for case in CONGEST_ALGORITHMS],
    )
    def test_prediction_free_algorithms(
        self, name, factory, problem, needs_predictions
    ):
        graph = erdos_renyi(40, 0.12, seed=3)
        result = run(factory(), graph)
        assert problem.is_solution(graph, result.outputs)
        assert result.congest_compatible(graph.n), result.max_message_bits

    def test_prediction_exchanging_algorithms(self):
        """Base/initialization algorithms send one prediction per edge."""
        graph = erdos_renyi(30, 0.15, seed=4)
        for problem, algorithm in [
            (MIS, mis_simple()),
            (MATCHING, matching_simple()),
        ]:
            predictions = noisy_predictions(problem, graph, 0.3, seed=5)
            result = run(algorithm, graph, predictions)
            assert result.congest_compatible(graph.n)

    def test_blackwhite_is_congest(self):
        graph = erdos_renyi(30, 0.15, seed=6)
        predictions = noisy_predictions(MIS, graph, 0.5, seed=1)
        result = run(BlackWhiteGreedyMIS(), graph, predictions)
        assert result.congest_compatible(graph.n)

    def test_parallel_template_is_congest(self):
        """Corollary 12's composition stays CONGEST: tagged pairs of
        O(log n)-bit component messages."""
        graph = random_regular(32, 3, seed=2)
        predictions = noisy_predictions(MIS, graph, 0.4, seed=2)
        result = run(mis_parallel(), graph, predictions)
        assert result.congest_compatible(graph.n)

    def test_clustering_reference_is_local_only(self):
        """The gather stage ships topology maps: declared (and measured)
        beyond CONGEST width — matching its LOCAL-model declaration."""
        graph = random_regular(24, 3, seed=3)
        result = run(ClusteringMISReference(), graph, max_rounds=20000)
        assert MIS.is_solution(graph, result.outputs)
        assert not result.congest_compatible(graph.n)

    def test_edge_coloring_width_scales_with_degree(self):
        """The edge-coloring refresh lists uncolored neighbor ids: within
        O(Δ log n) — CONGEST only for bounded degree."""
        graph = ring(24)
        result = run(GreedyEdgeColoringAlgorithm(), graph)
        assert result.congest_compatible(graph.n)

    def test_large_id_domain_still_congest(self):
        """log d-bit identifiers with d = n^3 still fit the budget."""
        graph = random_ids_from_domain(ring(16), d=16**3, seed=1)
        result = run(GreedyMISAlgorithm(), graph)
        assert result.congest_compatible(graph.n)


class TestFaultToleranceContracts:
    def test_greedy_mis_not_fault_tolerant_contract_is_documented(self):
        """Not a contract violation test — a documentation pin: greedy's
        correctness among survivors still holds for 1-outputs (no two
        adjacent 1s), even though dominated nodes may be left hanging."""
        graph = erdos_renyi(24, 0.2, seed=7)
        result = run(
            GreedyMISAlgorithm(),
            graph,
            faults=FaultPlan.crash_stop({5: 2, 9: 4}),
            max_rounds=1000,
        )
        ones = {v for v, out in result.outputs.items() if out == 1}
        for node in ones:
            assert not (graph.neighbors(node) & ones)

    def test_linial_coloring_survives_repeated_crashes(self):
        graph = erdos_renyi(36, 0.12, seed=8)
        crash_rounds = {v: (v % 7) + 1 for v in list(graph.nodes)[:10]}
        result = run(
            LinialColoringAlgorithm(respect_neighbor_outputs=False),
            graph,
            faults=FaultPlan.crash_stop(crash_rounds),
        )
        survivors = {
            v: out for v, out in result.outputs.items() if v not in crash_rounds
        }
        for node, color in survivors.items():
            for other in graph.neighbors(node):
                if other in survivors:
                    assert survivors[other] != color

    def test_parallel_template_with_mid_run_crashes(self):
        """Crashing nodes during the PAR slice: all survivors still
        produce a valid MIS of the surviving subgraph."""
        graph = random_regular(30, 3, seed=4)
        predictions = noisy_predictions(MIS, graph, 0.4, seed=4)
        crash_rounds = {3: 4, 11: 6, 19: 9}
        result = run(
            mis_parallel(),
            graph,
            predictions,
            faults=FaultPlan.crash_stop(crash_rounds),
        )
        survivors = [v for v in graph.nodes if v not in crash_rounds]
        surviving_graph = graph.subgraph(survivors)
        outputs = {v: result.outputs[v] for v in survivors if v in result.outputs}
        # Independence must hold outright among survivors.
        ones = {v for v, out in outputs.items() if out == 1}
        for node in ones:
            assert not (surviving_graph.neighbors(node) & ones)
        # Every surviving 0 must be dominated by a 1 (possibly a crashed
        # one that had already terminated — check against all outputs).
        all_ones = {v for v, out in result.outputs.items() if out == 1}
        for node, out in outputs.items():
            if out == 0:
                assert graph.neighbors(node) & all_ones
