"""Tests for identifier schemes and graph churn."""

import pytest

from repro.graphs import (
    clique,
    erdos_renyi,
    line,
    node_churn_plan,
    perturb_edges,
    perturb_nodes,
    random_ids_from_domain,
    random_rooted_tree,
    relabel,
    sequential_ids,
    sorted_path_ids,
    star,
    validate_instance,
)


class TestRelabel:
    def test_edges_follow_relabeling(self):
        graph = line(3)
        relabeled = relabel(graph, {1: 10, 2: 20, 3: 30})
        assert relabeled.edges() == [(10, 20), (20, 30)]

    def test_incomplete_mapping_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            relabel(line(3), {1: 10})

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError, match="injective"):
            relabel(line(3), {1: 5, 2: 5, 3: 6})

    def test_parent_pointers_follow(self):
        graph = random_rooted_tree(10, seed=1)
        mapping = {v: v + 100 for v in graph.nodes}
        relabeled = relabel(graph, mapping)
        assert validate_instance(relabeled, rooted=True) == []

    def test_sequential_ids(self):
        graph = relabel(line(3), {1: 7, 2: 13, 3: 22})
        assert sequential_ids(graph).nodes == (1, 2, 3)


class TestRandomIds:
    def test_ids_within_domain(self):
        graph = random_ids_from_domain(line(10), d=1000, seed=3)
        assert all(1 <= v <= 1000 for v in graph.nodes)
        assert graph.d == 1000
        assert len(set(graph.nodes)) == 10

    def test_domain_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_ids_from_domain(line(10), d=5)

    def test_seeded(self):
        a = random_ids_from_domain(line(10), d=100, seed=1)
        b = random_ids_from_domain(line(10), d=100, seed=1)
        assert a.nodes == b.nodes


class TestSortedPathIds:
    def test_ids_increase_along_path(self):
        graph = sorted_path_ids(line(6))
        # Endpoint 1 connects to 2, etc.
        assert graph.edges() == [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]

    def test_reverse(self):
        graph = sorted_path_ids(line(4), reverse=True)
        assert graph.edges() == [(1, 2), (2, 3), (3, 4)]

    def test_rejects_non_path(self):
        with pytest.raises(ValueError, match="path"):
            sorted_path_ids(star(5))


class TestChurn:
    def test_edge_removal(self):
        graph = erdos_renyi(30, 0.3, seed=2)
        perturbed = perturb_edges(graph, remove=10, seed=1)
        assert perturbed.num_edges == graph.num_edges - 10
        assert perturbed.nodes == graph.nodes

    def test_edge_addition(self):
        graph = line(20)
        perturbed = perturb_edges(graph, add=5, seed=1)
        assert perturbed.num_edges == graph.num_edges + 5

    def test_edge_churn_seeded(self):
        graph = erdos_renyi(25, 0.2, seed=3)
        a = perturb_edges(graph, add=3, remove=3, seed=9)
        b = perturb_edges(graph, add=3, remove=3, seed=9)
        assert a.edges() == b.edges()

    def test_node_removal(self):
        graph = erdos_renyi(20, 0.3, seed=4)
        perturbed = perturb_nodes(graph, remove=5, seed=1)
        assert perturbed.n == 15
        assert validate_instance(perturbed) == []

    def test_node_addition_gets_fresh_ids(self):
        graph = line(10)
        perturbed = perturb_nodes(graph, add=3, seed=1)
        assert perturbed.n == 13
        assert max(perturbed.nodes) == 13
        assert perturbed.d >= 13

    def test_near_complete_graph_delivers_exactly(self):
        # 10 nodes, complete minus 3 edges: rejection sampling alone
        # cannot find the few remaining non-edges reliably, but the
        # enumeration fallback must deliver all 3 exactly.
        full = clique(10)
        graph = perturb_edges(full, remove=3, seed=5)
        assert graph.num_edges == full.num_edges - 3
        refilled = perturb_edges(graph, add=3, seed=6)
        assert refilled.num_edges == full.num_edges
        assert sorted(refilled.edges()) == sorted(full.edges())

    def test_add_shortfall_warns_and_saturates(self):
        full = clique(8)
        graph = perturb_edges(full, remove=2, seed=1)
        with pytest.warns(UserWarning, match="shortfall 3"):
            refilled = perturb_edges(graph, add=5, seed=2)
        # Exactly the 2 available non-edges were added, never fewer.
        assert refilled.num_edges == full.num_edges

    def test_add_on_complete_graph_warns(self):
        with pytest.warns(UserWarning, match="shortfall"):
            perturbed = perturb_edges(clique(6), add=1, seed=0)
        assert perturbed.num_edges == clique(6).num_edges

    def test_exact_delivery_is_seeded(self):
        graph = perturb_edges(clique(9), remove=4, seed=3)
        a = perturb_edges(graph, add=4, seed=7)
        b = perturb_edges(graph, add=4, seed=7)
        assert a.edges() == b.edges()

    def test_remove_all_nodes_clamps_with_warning(self):
        graph = erdos_renyi(12, 0.3, seed=1)
        with pytest.warns(UserWarning, match="one survivor"):
            perturbed = perturb_nodes(graph, remove=12, seed=2)
        assert perturbed.n == 1
        assert perturbed.churn_removed == tuple(
            sorted(set(graph.nodes) - set(perturbed.nodes))
        )
        assert len(perturbed.churn_removed) == 11
        assert "+nodechurn[-11+0]" in perturbed.name

    def test_remove_beyond_size_clamps_identically(self):
        graph = line(5)
        with pytest.warns(UserWarning):
            perturbed = perturb_nodes(graph, remove=100, seed=3)
        assert perturbed.n == 1

    def test_zero_churn_is_identity(self):
        graph = erdos_renyi(15, 0.2, seed=6)
        assert perturb_nodes(graph, remove=0, add=0, seed=9) is graph

    def test_removed_set_exposed(self):
        graph = erdos_renyi(20, 0.2, seed=7)
        perturbed = perturb_nodes(graph, remove=4, add=2, seed=11)
        assert len(perturbed.churn_removed) == 4
        assert all(node not in perturbed for node in perturbed.churn_removed)
        assert "+nodechurn[-4+2]" in perturbed.name
        planned_removed, planned_added = node_churn_plan(
            graph, remove=4, add=2, seed=11
        )
        assert planned_removed == perturbed.churn_removed
        assert all(node in perturbed for node in planned_added)
