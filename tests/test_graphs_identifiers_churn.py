"""Tests for identifier schemes and graph churn."""

import pytest

from repro.graphs import (
    erdos_renyi,
    line,
    perturb_edges,
    perturb_nodes,
    random_ids_from_domain,
    random_rooted_tree,
    relabel,
    sequential_ids,
    sorted_path_ids,
    star,
    validate_instance,
)


class TestRelabel:
    def test_edges_follow_relabeling(self):
        graph = line(3)
        relabeled = relabel(graph, {1: 10, 2: 20, 3: 30})
        assert relabeled.edges() == [(10, 20), (20, 30)]

    def test_incomplete_mapping_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            relabel(line(3), {1: 10})

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError, match="injective"):
            relabel(line(3), {1: 5, 2: 5, 3: 6})

    def test_parent_pointers_follow(self):
        graph = random_rooted_tree(10, seed=1)
        mapping = {v: v + 100 for v in graph.nodes}
        relabeled = relabel(graph, mapping)
        assert validate_instance(relabeled, rooted=True) == []

    def test_sequential_ids(self):
        graph = relabel(line(3), {1: 7, 2: 13, 3: 22})
        assert sequential_ids(graph).nodes == (1, 2, 3)


class TestRandomIds:
    def test_ids_within_domain(self):
        graph = random_ids_from_domain(line(10), d=1000, seed=3)
        assert all(1 <= v <= 1000 for v in graph.nodes)
        assert graph.d == 1000
        assert len(set(graph.nodes)) == 10

    def test_domain_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_ids_from_domain(line(10), d=5)

    def test_seeded(self):
        a = random_ids_from_domain(line(10), d=100, seed=1)
        b = random_ids_from_domain(line(10), d=100, seed=1)
        assert a.nodes == b.nodes


class TestSortedPathIds:
    def test_ids_increase_along_path(self):
        graph = sorted_path_ids(line(6))
        # Endpoint 1 connects to 2, etc.
        assert graph.edges() == [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]

    def test_reverse(self):
        graph = sorted_path_ids(line(4), reverse=True)
        assert graph.edges() == [(1, 2), (2, 3), (3, 4)]

    def test_rejects_non_path(self):
        with pytest.raises(ValueError, match="path"):
            sorted_path_ids(star(5))


class TestChurn:
    def test_edge_removal(self):
        graph = erdos_renyi(30, 0.3, seed=2)
        perturbed = perturb_edges(graph, remove=10, seed=1)
        assert perturbed.num_edges == graph.num_edges - 10
        assert perturbed.nodes == graph.nodes

    def test_edge_addition(self):
        graph = line(20)
        perturbed = perturb_edges(graph, add=5, seed=1)
        assert perturbed.num_edges == graph.num_edges + 5

    def test_edge_churn_seeded(self):
        graph = erdos_renyi(25, 0.2, seed=3)
        a = perturb_edges(graph, add=3, remove=3, seed=9)
        b = perturb_edges(graph, add=3, remove=3, seed=9)
        assert a.edges() == b.edges()

    def test_node_removal(self):
        graph = erdos_renyi(20, 0.3, seed=4)
        perturbed = perturb_nodes(graph, remove=5, seed=1)
        assert perturbed.n == 15
        assert validate_instance(perturbed) == []

    def test_node_addition_gets_fresh_ids(self):
        graph = line(10)
        perturbed = perturb_nodes(graph, add=3, seed=1)
        assert perturbed.n == 13
        assert max(perturbed.nodes) == 13
        assert perturbed.d >= 13
