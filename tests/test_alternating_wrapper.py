"""Tests for the generic black/white alternation combinator (Section 9.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import (
    AlternatingColorWrapper,
    BlackWhiteGreedyMIS,
    GreedyMISAlgorithm,
    LubyMISAlgorithm,
    MISBaseAlgorithm,
)
from repro.core import SimpleTemplate, run
from repro.graphs import erdos_renyi, grid2d, line, sorted_path_ids
from repro.predictions import grid_blackwhite_predictions, noisy_predictions
from repro.problems import MIS

from tests.conftest import random_graph, random_predictions_bits


def wrapped(child=None, phase_length=None):
    return SimpleTemplate(
        MISBaseAlgorithm(),
        AlternatingColorWrapper(child or GreedyMISAlgorithm(), phase_length),
    )


class TestConstruction:
    def test_phase_length_defaults_to_safe_interval(self):
        wrapper = AlternatingColorWrapper(GreedyMISAlgorithm())
        assert wrapper.name == "alternating(greedy-mis)"
        assert wrapper.safe_pause_interval == 2 * (2 + 1)

    def test_misaligned_phase_length_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            AlternatingColorWrapper(GreedyMISAlgorithm(), phase_length=3)

    def test_longer_phases_allowed(self):
        wrapper = AlternatingColorWrapper(GreedyMISAlgorithm(), phase_length=4)
        assert wrapper.safe_pause_interval == 10


class TestWithGreedyChild:
    def test_valid_on_random_instances(self):
        algorithm = wrapped()
        for seed in range(8):
            graph = random_graph(25, 0.2, seed)
            predictions = random_predictions_bits(graph, seed)
            result = run(algorithm, graph, predictions)
            assert MIS.is_solution(graph, result.outputs), seed

    def test_constant_rounds_on_figure2_grid(self):
        algorithm = wrapped()
        rounds = []
        for size in (8, 16):
            graph = grid2d(size, size)
            predictions = grid_blackwhite_predictions(graph)
            result = run(algorithm, graph, predictions)
            assert MIS.is_solution(graph, result.outputs)
            rounds.append(result.rounds)
        assert rounds[0] == rounds[1]

    def test_beats_plain_greedy_on_sorted_block_line(self):
        graph = sorted_path_ids(line(96))
        predictions = {v: (1 if (v - 1) % 4 < 2 else 0) for v in graph.nodes}
        plain = SimpleTemplate(MISBaseAlgorithm(), GreedyMISAlgorithm())
        plain_rounds = run(plain, graph, predictions).rounds
        wrapped_rounds = run(wrapped(), graph, predictions).rounds
        assert wrapped_rounds * 4 < plain_rounds

    def test_comparable_to_specialized_implementation(self):
        """The generic wrapper tracks the hand-written U_bw within a
        small constant factor on the grid pattern."""
        graph = grid2d(12, 12)
        predictions = grid_blackwhite_predictions(graph)
        special = SimpleTemplate(MISBaseAlgorithm(), BlackWhiteGreedyMIS())
        special_rounds = run(special, graph, predictions).rounds
        generic_rounds = run(wrapped(), graph, predictions).rounds
        assert generic_rounds <= 3 * special_rounds

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_random_graphs(self, seed):
        graph = random_graph(14, 0.3, seed)
        predictions = random_predictions_bits(graph, seed + 1)
        result = run(wrapped(), graph, predictions)
        assert MIS.is_solution(graph, result.outputs)


class TestWithLubyChild:
    def test_valid_on_random_instances(self):
        algorithm = wrapped(LubyMISAlgorithm())
        for seed in range(6):
            graph = erdos_renyi(25, 0.2, seed=seed)
            predictions = random_predictions_bits(graph, seed)
            result = run(algorithm, graph, predictions, seed=seed)
            assert MIS.is_solution(graph, result.outputs), seed

    def test_reproducible(self):
        algorithm = wrapped(LubyMISAlgorithm())
        graph = erdos_renyi(20, 0.25, seed=2)
        predictions = random_predictions_bits(graph, 4)
        first = run(algorithm, graph, predictions, seed=9).outputs
        second = run(algorithm, graph, predictions, seed=9).outputs
        assert first == second


class TestUbwInsideTemplates:
    """Section 9.1: 'This measure-uniform algorithm could be combined
    with a reference algorithm, using whichever template is appropriate.'"""

    def test_ubw_in_parallel_template(self):
        from repro.algorithms.mis import (
            ColoringMISReference,
            MISInitializationAlgorithm,
        )
        from repro.core import ParallelTemplate

        algorithm = ParallelTemplate(
            MISInitializationAlgorithm(),
            BlackWhiteGreedyMIS(),
            ColoringMISReference(),
        )
        for seed in range(5):
            graph = random_graph(24, 0.2, seed)
            predictions = random_predictions_bits(graph, seed)
            result = run(algorithm, graph, predictions)
            assert MIS.is_solution(graph, result.outputs), seed

    def test_ubw_in_parallel_template_on_grid_pattern(self):
        from repro.algorithms.mis import (
            ColoringMISReference,
            MISInitializationAlgorithm,
        )
        from repro.core import ParallelTemplate

        algorithm = ParallelTemplate(
            MISInitializationAlgorithm(),
            BlackWhiteGreedyMIS(),
            ColoringMISReference(),
        )
        graph = grid2d(12, 12)
        predictions = grid_blackwhite_predictions(graph)
        result = run(algorithm, graph, predictions)
        assert MIS.is_solution(graph, result.outputs)
        # eta_bw = 4: finishes far below the coloring reference cap.
        assert result.rounds <= 16


class TestLongerPhases:
    def test_phase_length_four_still_valid(self):
        algorithm = wrapped(phase_length=4)
        for seed in range(5):
            graph = random_graph(20, 0.25, seed)
            predictions = random_predictions_bits(graph, seed + 2)
            result = run(algorithm, graph, predictions)
            assert MIS.is_solution(graph, result.outputs)
