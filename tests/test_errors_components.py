"""Tests for base partial solutions and error components (Sections 4, 8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run
from repro.errors import (
    black_white_components,
    edge_coloring_base_partial,
    error_components,
    matching_base_partial,
    mis_base_partial,
    vertex_coloring_base_partial,
)
from repro.errors.components import edge_error_components
from repro.graphs import clique, grid2d, line, ring, star
from repro.predictions import (
    all_ones_mis,
    all_zeros_mis,
    grid_blackwhite_predictions,
    noisy_predictions,
    perfect_predictions,
)
from repro.problems import EDGE_COLORING, MATCHING, MIS, UNMATCHED, VERTEX_COLORING

from tests.conftest import random_graph, random_predictions_bits


class TestMISBasePartial:
    def test_correct_predictions_fully_output(self, path5):
        predictions = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        outputs = mis_base_partial(path5, predictions)
        assert outputs == predictions

    def test_all_ones_outputs_nothing(self, path5):
        assert mis_base_partial(path5, all_ones_mis(path5)) == {}

    def test_all_zeros_outputs_nothing(self, path5):
        assert mis_base_partial(path5, all_zeros_mis(path5)) == {}

    def test_pruning_property_outputs_equal_predictions(self):
        graph = random_graph(20, 0.2, 3)
        predictions = random_predictions_bits(graph, 7)
        outputs = mis_base_partial(graph, predictions)
        assert all(outputs[v] == predictions[v] for v in outputs)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_base_partial_always_extendable(self, seed):
        graph = random_graph(15, 0.25, seed)
        predictions = random_predictions_bits(graph, seed + 1)
        outputs = mis_base_partial(graph, predictions)
        assert MIS.is_extendable(graph, outputs)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_pure_function_matches_simulated_base_algorithm(self, seed):
        from repro.algorithms.mis import MISBaseAlgorithm
        from repro.simulator import SyncEngine

        graph = random_graph(12, 0.3, seed)
        predictions = random_predictions_bits(graph, seed + 5)
        pure = mis_base_partial(graph, predictions)
        algorithm = MISBaseAlgorithm()
        engine = SyncEngine(
            graph,
            lambda v: algorithm.build_program(),
            predictions=predictions,
        )
        result = engine.run(stop_after=3)
        assert result.outputs == pure


class TestErrorComponents:
    def test_no_error_no_components(self, path5):
        predictions = perfect_predictions(MIS, path5)
        assert error_components("mis", path5, predictions) == []

    def test_all_ones_single_component_per_component(self, path5):
        components = error_components("mis", path5, all_ones_mis(path5))
        assert components == [frozenset({1, 2, 3, 4, 5})]

    def test_unknown_problem_rejected(self, path5):
        import pytest

        with pytest.raises(ValueError):
            error_components("nope", path5, {})

    def test_partial_error_isolates_components(self):
        graph = line(7)
        # Correct except node 4 flipped to 1 adjacent to 3 (also 1).
        predictions = {1: 1, 2: 0, 3: 1, 4: 1, 5: 0, 6: 0, 7: 1}
        components = error_components("mis", graph, predictions)
        assert components  # some error exists
        union = set().union(*components)
        assert 7 not in union  # the far end is unaffected


class TestBlackWhiteComponents:
    def test_grid_pattern_components_are_small(self):
        graph = grid2d(12, 12)
        predictions = grid_blackwhite_predictions(graph)
        black, white = black_white_components(graph, predictions)
        assert black and white
        assert max(len(c) for c in black + white) == 4

    def test_uniform_prediction_components_match_error_components(self, path5):
        predictions = all_ones_mis(path5)
        black, white = black_white_components(path5, predictions)
        assert [set(c) for c in black] == [{1, 2, 3, 4, 5}]
        assert white == []


class TestMatchingBasePartial:
    def test_correct_predictions_fully_output(self, path5):
        predictions = MATCHING.solve_sequential(path5)
        outputs = matching_base_partial(path5, predictions)
        assert outputs == predictions

    def test_unreciprocated_prediction_ignored(self, path5):
        predictions = {1: 2, 2: 3, 3: 2, 4: UNMATCHED, 5: UNMATCHED}
        outputs = matching_base_partial(path5, predictions)
        assert outputs.get(2) == 3 and outputs.get(3) == 2
        assert 1 not in outputs

    def test_bottom_requires_matched_neighbors(self, path5):
        predictions = {1: UNMATCHED, 2: UNMATCHED, 3: UNMATCHED, 4: 5, 5: 4}
        outputs = matching_base_partial(path5, predictions)
        assert 1 not in outputs and 2 not in outputs
        assert outputs[4] == 5

    def test_partial_is_extendable(self):
        graph = random_graph(14, 0.3, 2)
        predictions = noisy_predictions(MATCHING, graph, 0.3, seed=5)
        outputs = matching_base_partial(graph, predictions)
        assert MATCHING.is_extendable(graph, outputs)


class TestColoringBasePartials:
    def test_vertex_coloring_correct_predictions(self, path5):
        predictions = VERTEX_COLORING.solve_sequential(path5)
        assert vertex_coloring_base_partial(path5, predictions) == predictions

    def test_vertex_coloring_conflicts_suppressed(self, triangle):
        predictions = {1: 1, 2: 1, 3: 2}
        outputs = vertex_coloring_base_partial(triangle, predictions)
        assert 1 not in outputs and 2 not in outputs
        assert outputs[3] == 2

    def test_vertex_coloring_illegal_color_suppressed(self, path5):
        predictions = {1: 99, 2: 2, 3: 1, 4: 2, 5: 1}
        outputs = vertex_coloring_base_partial(path5, predictions)
        assert 1 not in outputs

    def test_vertex_coloring_partial_extendable(self):
        graph = random_graph(14, 0.3, 4)
        predictions = noisy_predictions(VERTEX_COLORING, graph, 0.4, seed=2)
        outputs = vertex_coloring_base_partial(graph, predictions)
        assert VERTEX_COLORING.is_extendable(graph, outputs)

    def test_edge_coloring_correct_predictions(self, path5):
        predictions = EDGE_COLORING.solve_sequential(path5)
        outputs = edge_coloring_base_partial(path5, predictions)
        assert outputs == {v: p for v, p in predictions.items() if p}

    def test_edge_coloring_disagreement_suppressed(self, path5):
        predictions = {
            1: {2: 1},
            2: {1: 2, 3: 3},
            3: {2: 3, 4: 1},
            4: {3: 1, 5: 2},
            5: {4: 2},
        }
        outputs = edge_coloring_base_partial(path5, predictions)
        assert 2 not in (outputs.get(1) or {})
        assert (outputs.get(3) or {}).get(2) == 3

    def test_edge_coloring_duplicate_color_suppressed(self, path5):
        predictions = {
            1: {2: 1},
            2: {1: 1, 3: 1},
            3: {2: 1, 4: 2},
            4: {3: 2, 5: 3},
            5: {4: 3},
        }
        outputs = edge_coloring_base_partial(path5, predictions)
        # Node 2 predicted color 1 twice: both of its proposals are void.
        assert 2 not in outputs or not outputs[2]

    def test_edge_error_components_cover_uncolored_edges(self, path5):
        predictions = {v: {} for v in path5.nodes}
        components = edge_error_components(path5, predictions)
        assert len(components) == 1
        nodes, edges = components[0]
        assert nodes == frozenset(path5.nodes)
        assert edges == frozenset(path5.edges())

    def test_partial_is_extendable(self):
        graph = random_graph(12, 0.3, 8)
        predictions = noisy_predictions(EDGE_COLORING, graph, 0.4, seed=3)
        outputs = edge_coloring_base_partial(graph, predictions)
        assert EDGE_COLORING.is_extendable(graph, outputs)
