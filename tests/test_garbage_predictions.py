"""Hardening: predictions can be arbitrary garbage, not just wrong.

The paper's model says predictions "may be incorrect"; a production
implementation must also survive *malformed* predictions (wrong types,
missing entries, out-of-range values) — treating them as maximally wrong
rather than crashing.  Every template × problem pipeline is exercised
with hostile prediction payloads.
"""

import pytest

from repro.bench.algorithms import (
    coloring_parallel,
    coloring_simple,
    edge_coloring_simple,
    matching_simple,
    mis_blackwhite_simple,
    mis_parallel,
    mis_simple,
)
from repro.core import run
from repro.errors import error_components, eta1
from repro.graphs import erdos_renyi
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING


GRAPH = erdos_renyi(24, 0.2, seed=20)


def garbage_variants(graph):
    """A grab bag of hostile prediction maps."""
    yield "all-none", {v: None for v in graph.nodes}
    yield "strings", {v: "banana" for v in graph.nodes}
    yield "floats", {v: 0.5 for v in graph.nodes}
    yield "huge-ints", {v: 10**12 for v in graph.nodes}
    yield "negative", {v: -1 for v in graph.nodes}
    yield "mixed", {
        v: [None, "x", 3.14, -7, 10**9][v % 5] for v in graph.nodes
    }
    yield "empty", {}


MIS_ALGORITHMS = [mis_simple, mis_parallel, mis_blackwhite_simple]


class TestMISGarbage:
    @pytest.mark.parametrize("factory", MIS_ALGORITHMS, ids=lambda f: f.__name__)
    def test_all_variants_still_solve(self, factory):
        algorithm = factory()
        for label, predictions in garbage_variants(GRAPH):
            result = run(algorithm, GRAPH, predictions, max_rounds=20000)
            assert MIS.is_solution(GRAPH, result.outputs), (
                factory.__name__,
                label,
            )

    def test_garbage_is_maximal_error(self):
        for label, predictions in garbage_variants(GRAPH):
            error = eta1(GRAPH, predictions)
            biggest = max(len(c) for c in GRAPH.components())
            assert error == biggest, label


class TestOtherProblemsGarbage:
    def test_matching(self):
        algorithm = matching_simple()
        for label, predictions in garbage_variants(GRAPH):
            result = run(algorithm, GRAPH, predictions, max_rounds=20000)
            assert MATCHING.is_solution(GRAPH, result.outputs), label

    def test_vertex_coloring(self):
        for factory in (coloring_simple, coloring_parallel):
            algorithm = factory()
            for label, predictions in garbage_variants(GRAPH):
                result = run(algorithm, GRAPH, predictions, max_rounds=20000)
                assert VERTEX_COLORING.is_solution(GRAPH, result.outputs), (
                    factory.__name__,
                    label,
                )

    def test_edge_coloring(self):
        algorithm = edge_coloring_simple()
        variants = list(garbage_variants(GRAPH)) + [
            (
                "bad-dicts",
                {v: {99: "red", -3: 0.1} for v in GRAPH.nodes},
            ),
            (
                "self-colors",
                {v: {v: 1} for v in GRAPH.nodes},
            ),
        ]
        for label, predictions in variants:
            result = run(algorithm, GRAPH, predictions, max_rounds=20000)
            assert EDGE_COLORING.is_solution(GRAPH, result.outputs), label


class TestErrorMachineryGarbage:
    def test_error_components_accept_garbage(self):
        for problem in ("mis", "matching", "vertex-coloring", "edge-coloring"):
            for label, predictions in garbage_variants(GRAPH):
                components = error_components(problem, GRAPH, predictions)
                union = set().union(*components) if components else set()
                assert union <= set(GRAPH.nodes), (problem, label)

    def test_partial_prediction_maps(self):
        """Predictions covering only some nodes behave like garbage on
        the rest (missing = None)."""
        half = {v: 1 for v in list(GRAPH.nodes)[: GRAPH.n // 2]}
        result = run(mis_simple(), GRAPH, half, max_rounds=20000)
        assert MIS.is_solution(GRAPH, result.outputs)
