"""Tests for the extra graph families and the μ₂ bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run
from repro.errors import mu2, mu2_bounds
from repro.graphs import (
    complete_kary_tree,
    erdos_renyi,
    hypercube,
    torus,
    validate_instance,
)
from repro.problems import MIS

from tests.conftest import random_graph


class TestHypercube:
    def test_structure(self):
        graph = hypercube(3)
        assert graph.n == 8
        assert all(graph.degree(v) == 3 for v in graph.nodes)
        assert graph.diameter() == 3
        assert validate_instance(graph) == []

    def test_dimension_zero_and_one(self):
        assert hypercube(0).n == 1
        assert hypercube(1).edges() == [(1, 2)]

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            hypercube(-1)

    def test_bipartite_alpha_is_half(self):
        from repro.errors import max_independent_set_size

        assert max_independent_set_size(hypercube(4)) == 8

    def test_algorithms_run_on_hypercubes(self):
        from repro.bench.algorithms import mis_parallel
        from repro.predictions import noisy_predictions

        graph = hypercube(5)
        predictions = noisy_predictions(MIS, graph, 0.3, seed=1)
        result = run(mis_parallel(), graph, predictions)
        assert MIS.is_solution(graph, result.outputs)


class TestTorus:
    def test_structure(self):
        graph = torus(4, 5)
        assert graph.n == 20
        assert all(graph.degree(v) == 4 for v in graph.nodes)
        assert validate_instance(graph) == []

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            torus(2, 5)

    def test_positions_present(self):
        graph = torus(3, 3)
        assert graph.node_attrs(1)["pos"] == (0, 0)


class TestCompleteKaryTree:
    def test_node_count(self):
        assert complete_kary_tree(2, 3).n == 15
        assert complete_kary_tree(3, 2).n == 13

    def test_is_tree(self):
        graph = complete_kary_tree(4, 2)
        assert graph.num_edges == graph.n - 1
        assert graph.is_connected()

    def test_height_zero(self):
        assert complete_kary_tree(3, 0).n == 1

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            complete_kary_tree(0, 2)


class TestMu2Bounds:
    def test_sandwich_on_known_families(self):
        from repro.graphs import clique, grid2d, line, star

        for graph in (clique(9), star(10), line(13), grid2d(4, 5)):
            low, high = mu2_bounds(graph)
            exact = mu2(graph)
            assert low <= exact <= high, graph.name

    def test_empty_subset(self):
        low, high = mu2_bounds(erdos_renyi(10, 0.3, seed=1), nodes=[])
        assert (low, high) == (0, 0)

    def test_singleton(self):
        low, high = mu2_bounds(erdos_renyi(10, 0.3, seed=1), nodes=[1])
        assert low == high == 0

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_sandwich_on_random_graphs(self, seed):
        graph = random_graph(14, 0.3, seed)
        low, high = mu2_bounds(graph)
        exact = mu2(graph)
        assert low <= exact <= high

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_bounds_on_subsets(self, seed):
        graph = random_graph(16, 0.25, seed)
        subset = [v for v in graph.nodes if v % 2 == 0]
        for piece in graph.subgraph(subset).components():
            low, high = mu2_bounds(graph, piece)
            assert low <= mu2(graph, piece) <= high

    def test_cheap_on_large_graphs(self):
        """The whole point: usable where exact alpha would blow up."""
        graph = erdos_renyi(400, 0.05, seed=2)
        low, high = mu2_bounds(graph)
        assert 0 <= low <= high <= graph.n
