"""Dedicated tests for NodeContext semantics."""

import pytest

from repro.simulator.context import NodeContext, OutputAlreadySet


def make(**overrides):
    defaults = dict(node_id=5, neighbors=frozenset({2, 7}), n=4, d=10, delta=2)
    defaults.update(overrides)
    return NodeContext(**defaults)


class TestKnowledge:
    def test_static_fields(self):
        ctx = make(prediction=1, attrs={"parent": 2})
        assert ctx.node_id == 5
        assert ctx.neighbors == frozenset({2, 7})
        assert ctx.n == 4 and ctx.d == 10 and ctx.delta == 2
        assert ctx.prediction == 1
        assert ctx.attrs["parent"] == 2

    def test_degree(self):
        assert make().degree == 2

    def test_neighbors_are_immutable(self):
        ctx = make()
        with pytest.raises(AttributeError):
            ctx.neighbors.add(99)

    def test_active_neighbors_start_full(self):
        ctx = make()
        assert ctx.active_neighbors == {2, 7}

    def test_local_maximum_with_active_shrinkage(self):
        ctx = make()
        assert not ctx.is_local_maximum()  # 7 > 5
        ctx.active_neighbors.discard(7)
        assert ctx.is_local_maximum()

    def test_local_maximum_isolated(self):
        ctx = make(neighbors=frozenset())
        assert ctx.is_local_maximum()

    def test_rng_is_seeded_per_node(self):
        first = make(seed=3).rng.random()
        second = make(seed=3).rng.random()
        other_node = make(seed=3, node_id=6).rng.random()
        assert first == second
        assert first != other_node


class TestOutputs:
    def test_scalar_output_lifecycle(self):
        ctx = make()
        assert not ctx.has_output
        assert ctx.output is None
        ctx.set_output(42)
        assert ctx.has_output
        assert ctx.output == 42

    def test_scalar_write_once(self):
        ctx = make()
        ctx.set_output(1)
        with pytest.raises(OutputAlreadySet):
            ctx.set_output(2)

    def test_none_is_a_real_output(self):
        ctx = make()
        ctx.set_output(None)
        assert ctx.has_output
        with pytest.raises(OutputAlreadySet):
            ctx.set_output(1)

    def test_parts_lifecycle(self):
        ctx = make()
        ctx.set_output_part(2, "a")
        ctx.set_output_part(7, "b")
        assert ctx.output == {2: "a", 7: "b"}
        assert ctx.output_part(2) == "a"
        assert ctx.output_part(99, "default") == "default"

    def test_part_write_once(self):
        ctx = make()
        ctx.set_output_part(2, "a")
        with pytest.raises(OutputAlreadySet):
            ctx.set_output_part(2, "b")

    def test_parts_and_scalar_exclusive_both_ways(self):
        ctx = make()
        ctx.set_output(1)
        with pytest.raises(OutputAlreadySet):
            ctx.set_output_part(2, "a")
        ctx2 = make()
        ctx2.set_output_part(2, "a")
        with pytest.raises(OutputAlreadySet):
            ctx2.set_output(1)

    def test_terminate_flag(self):
        ctx = make()
        assert not ctx.terminate_requested
        ctx.terminate()
        assert ctx.terminate_requested
        assert not ctx.terminated  # finalized by the engine, not here
