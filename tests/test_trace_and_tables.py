"""Coverage for the trace utilities and the bench table renderer."""

from repro.bench import Table
from repro.graphs import line
from repro.simulator import NodeProgram, SyncEngine, TraceRecorder
from repro.simulator.trace import TraceEvent


class _TwoRound(NodeProgram):
    def compose(self, ctx):
        if ctx.round == 1:
            return {other: "ping" for other in ctx.active_neighbors}
        return {}

    def process(self, ctx, inbox):
        if ctx.round == 2:
            ctx.set_output(ctx.node_id)
            ctx.terminate()


class TestTraceRecorder:
    def _trace(self):
        trace = TraceRecorder()
        SyncEngine(line(3), lambda v: _TwoRound(), trace=trace).run()
        return trace

    def test_of_kind_filters(self):
        trace = self._trace()
        sends = list(trace.of_kind("send"))
        assert sends and all(event.kind == "send" for event in sends)

    def test_sends_in_round(self):
        trace = self._trace()
        assert len(trace.sends_in_round(1)) == 4  # 1->2, 2->1, 2->3, 3->2
        assert trace.sends_in_round(2) == []

    def test_messages_between(self):
        trace = self._trace()
        messages = trace.messages_between(1, 2)
        assert len(messages) == 1
        assert messages[0].data["payload"] == "ping"

    def test_termination_rounds(self):
        trace = self._trace()
        assert trace.termination_rounds() == {1: 2, 2: 2, 3: 2}

    def test_first_round_of_missing_kind(self):
        trace = self._trace()
        assert trace.first_round_of("crash") is None

    def test_output_events_carry_values(self):
        trace = self._trace()
        outputs = {e.node: e.data["value"] for e in trace.of_kind("output")}
        assert outputs == {1: 1, 2: 2, 3: 3}

    def test_events_are_immutable_records(self):
        event = TraceEvent(1, "send", 2, {"to": 3})
        import pytest

        with pytest.raises(AttributeError):
            event.round = 5


class TestTableRenderer:
    def test_column_widths_adapt(self):
        table = Table("t", ["short", "x"])
        table.add_row("a-very-long-cell", 1)
        rendered = table.render()
        header, body = rendered.splitlines()[2], rendered.splitlines()[4]
        assert body.index("1") == header.index("x")

    def test_empty_table_renders(self):
        rendered = Table("empty", ["a"]).render()
        assert "empty" in rendered and "a" in rendered

    def test_print_goes_to_stdout(self, capsys):
        table = Table("demo", ["col"])
        table.add_row("val")
        table.print()
        out = capsys.readouterr().out
        assert "demo" in out and "val" in out

    def test_values_are_stringified(self):
        table = Table("t", ["a", "b"])
        table.add_row(3.5, None)
        assert "3.5" in table.render() and "None" in table.render()
