"""Tests for the MIS reference algorithms: the Corollary 12 two-part
coloring reference and the Corollary 10 clustering reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import ClusteringMISReference, ColoringMISReference
from repro.algorithms.mis.color_reduction import MISFromColoringProgram
from repro.core import run
from repro.graphs import clique, erdos_renyi, grid2d, line, random_regular, ring
from repro.problems import MIS, VERTEX_COLORING
from repro.simulator import SyncEngine

from tests.conftest import random_graph


class TestMISFromColoring:
    def _run_from_coloring(self, graph):
        coloring = VERTEX_COLORING.solve_sequential(graph)
        programs = {
            v: MISFromColoringProgram(coloring[v]) for v in graph.nodes
        }
        return SyncEngine(graph, programs).run()

    def test_valid_mis_from_greedy_coloring(self, small_zoo):
        for graph in small_zoo:
            result = self._run_from_coloring(graph)
            assert MIS.is_solution(graph, result.outputs), graph.name

    def test_round_bound_delta_plus_constant(self):
        for seed in range(8):
            graph = random_graph(16, 0.3, seed)
            result = self._run_from_coloring(graph)
            assert result.rounds <= graph.delta + 3

    def test_greedy_augmentation_accelerates_paths(self):
        """On a 2-colorable path the sweep needs only O(1) color rounds,
        and the augmentation admits extra local maxima."""
        graph = line(30)
        result = self._run_from_coloring(graph)
        assert result.rounds <= 5

    def test_requires_color(self):
        import pytest

        with pytest.raises(ValueError):
            MISFromColoringProgram(None)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(13, 0.35, seed)
        result = self._run_from_coloring(graph)
        assert MIS.is_solution(graph, result.outputs)


class TestColoringMISReferenceBounds:
    def test_part_bounds_are_positive(self):
        reference = ColoringMISReference()
        assert reference.part1_bound(100, 4, 100) > 0
        assert reference.part2_bound(100, 4, 100) == 7

    def test_part1_bound_independent_of_n(self):
        reference = ColoringMISReference()
        assert reference.part1_bound(10, 4, 500) == reference.part1_bound(
            10**6, 4, 500
        )


class TestClusteringReference:
    def test_standalone_produces_valid_mis(self):
        for graph in (line(20), ring(16), grid2d(5, 5)):
            result = run(ClusteringMISReference(), graph, max_rounds=20000)
            assert MIS.is_solution(graph, result.outputs), graph.name

    def test_random_graphs(self):
        for seed in range(4):
            graph = erdos_renyi(40, 0.08, seed=seed)
            result = run(ClusteringMISReference(), graph, max_rounds=20000)
            assert MIS.is_solution(graph, result.outputs)

    def test_phase_bound_is_node_computable_and_decreasing(self):
        reference = ClusteringMISReference()
        bounds = [reference.phase_bound(i, 256, 4, 256) for i in range(1, 8)]
        assert all(b > 0 for b in bounds)
        assert bounds == sorted(bounds, reverse=True)

    def test_each_phase_ends_extendable(self):
        graph = random_regular(24, 3, seed=5)
        reference = ClusteringMISReference()
        bound = reference.phase_bound(1, graph.n, graph.delta, graph.d)
        engine = SyncEngine(
            graph, lambda v: reference.build_program(), seed=3
        )
        outputs = engine.run(stop_after=bound).outputs
        assert MIS.is_extendable(graph, outputs)

    def test_first_phase_retires_at_least_half_on_average(self):
        """The halving property Lemma 9 relies on, checked empirically."""
        total_nodes = 0
        total_retired = 0
        reference = ClusteringMISReference()
        for seed in range(5):
            graph = random_regular(30, 3, seed=seed)
            bound = reference.phase_bound(1, graph.n, graph.delta, graph.d)
            engine = SyncEngine(
                graph, lambda v: reference.build_program(), seed=seed
            )
            outputs = engine.run(stop_after=bound).outputs
            total_nodes += graph.n
            total_retired += len(outputs)
        assert total_retired >= total_nodes / 2
