"""Tests for Maximal Matching, (Δ+1)-Vertex and (2Δ−1)-Edge Coloring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import clique, grid2d, line, ring, star
from repro.problems import EDGE_COLORING, MATCHING, UNMATCHED, VERTEX_COLORING

from tests.conftest import random_graph


class TestMatchingVerifier:
    def test_valid_matching(self, path5):
        outputs = {1: 2, 2: 1, 3: 4, 4: 3, 5: UNMATCHED}
        assert MATCHING.is_solution(path5, outputs)

    def test_unreciprocated_match_rejected(self, path5):
        outputs = {1: 2, 2: 3, 3: 2, 4: 5, 5: 4}
        assert MATCHING.verify_solution(path5, outputs)

    def test_match_to_non_neighbor_rejected(self, path5):
        outputs = {1: 3, 3: 1, 2: UNMATCHED, 4: 5, 5: 4}
        violations = MATCHING.verify_solution(path5, outputs)
        assert any("non-neighbor" in v for v in violations)

    def test_adjacent_unmatched_rejected(self, path5):
        outputs = {1: 2, 2: 1, 3: UNMATCHED, 4: UNMATCHED, 5: UNMATCHED}
        violations = MATCHING.verify_solution(path5, outputs)
        assert any("adjacent unmatched" in v for v in violations)

    def test_extendability_needs_neighbors_decided(self, path5):
        # 5 is unmatched but 4 is undecided: not extendable.
        assert not MATCHING.is_extendable(path5, {5: UNMATCHED})
        # Matched pair with no claims about others: extendable.
        assert MATCHING.is_extendable(path5, {1: 2, 2: 1})

    def test_matched_edges_helper(self, path5):
        outputs = {1: 2, 2: 1, 3: 4, 4: 3, 5: UNMATCHED}
        assert MATCHING.matched_edges(outputs) == {(1, 2), (3, 4)}

    def test_solver_valid_everywhere(self, small_zoo):
        for graph in small_zoo:
            solution = MATCHING.solve_sequential(graph)
            assert MATCHING.is_solution(graph, solution), graph.name

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_solver_valid_on_random_graphs(self, seed):
        graph = random_graph(14, 0.3, seed)
        assert MATCHING.is_solution(graph, MATCHING.solve_sequential(graph))


class TestVertexColoringVerifier:
    def test_valid_coloring(self, triangle):
        assert VERTEX_COLORING.is_solution(triangle, {1: 1, 2: 2, 3: 3})

    def test_conflict_rejected(self, triangle):
        violations = VERTEX_COLORING.verify_solution(triangle, {1: 1, 2: 1, 3: 2})
        assert any("share color" in v for v in violations)

    def test_out_of_palette_rejected(self, triangle):
        violations = VERTEX_COLORING.verify_solution(triangle, {1: 9, 2: 2, 3: 3})
        assert any("expected a color" in v for v in violations)

    def test_palette_size_is_delta_plus_one(self):
        assert VERTEX_COLORING.num_colors(star(5)) == 5
        assert VERTEX_COLORING.num_colors(ring(6)) == 3

    def test_partial_proper_coloring_extendable(self, path5):
        assert VERTEX_COLORING.is_extendable(path5, {1: 1, 2: 2})

    def test_remaining_palette(self, path5):
        palette = VERTEX_COLORING.remaining_palette(path5, {2: 2}, 3)
        assert palette == {1, 3}

    def test_solver_valid_everywhere(self, small_zoo):
        for graph in small_zoo:
            solution = VERTEX_COLORING.solve_sequential(graph)
            assert VERTEX_COLORING.is_solution(graph, solution), graph.name

    def test_greedy_uses_few_colors_on_line(self):
        solution = VERTEX_COLORING.solve_sequential(line(10))
        assert max(solution.values()) <= 2

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_solver_valid_on_random_graphs(self, seed):
        graph = random_graph(14, 0.3, seed)
        assert VERTEX_COLORING.is_solution(
            graph, VERTEX_COLORING.solve_sequential(graph)
        )


class TestEdgeColoringVerifier:
    def test_valid_edge_coloring(self, path5):
        outputs = {
            1: {2: 1},
            2: {1: 1, 3: 2},
            3: {2: 2, 4: 1},
            4: {3: 1, 5: 2},
            5: {4: 2},
        }
        assert EDGE_COLORING.is_solution(path5, outputs)

    def test_endpoint_disagreement_rejected(self, path5):
        outputs = {
            1: {2: 1},
            2: {1: 3, 3: 2},
            3: {2: 2, 4: 1},
            4: {3: 1, 5: 2},
            5: {4: 2},
        }
        violations = EDGE_COLORING.verify_solution(path5, outputs)
        assert any("colored" in v for v in violations)

    def test_reused_color_at_node_rejected(self, path5):
        outputs = {
            1: {2: 1},
            2: {1: 1, 3: 1},
            3: {2: 1, 4: 2},
            4: {3: 2, 5: 1},
            5: {4: 1},
        }
        violations = EDGE_COLORING.verify_solution(path5, outputs)
        assert any("reused" in v for v in violations)

    def test_uncolored_edge_rejected_in_full_verification(self, path5):
        outputs = {1: {2: 1}, 2: {1: 1}, 3: {}, 4: {}, 5: {}}
        violations = EDGE_COLORING.verify_solution(path5, outputs)
        assert any("uncolored" in v for v in violations)

    def test_palette_size(self):
        assert EDGE_COLORING.num_colors(star(5)) == 7
        assert EDGE_COLORING.num_colors(line(3)) == 3

    def test_colored_edges_helper(self, path5):
        outputs = {1: {2: 1}, 2: {1: 1}}
        assert EDGE_COLORING.colored_edges(outputs) == {(1, 2): 1}

    def test_solver_valid_everywhere(self, small_zoo):
        for graph in small_zoo:
            solution = EDGE_COLORING.solve_sequential(graph)
            assert EDGE_COLORING.is_solution(graph, solution), graph.name

    def test_solver_on_dense_graphs(self):
        for graph in (clique(6), grid2d(4, 4), star(8)):
            solution = EDGE_COLORING.solve_sequential(graph)
            assert EDGE_COLORING.is_solution(graph, solution)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_solver_valid_on_random_graphs(self, seed):
        graph = random_graph(12, 0.3, seed)
        assert EDGE_COLORING.is_solution(
            graph, EDGE_COLORING.solve_sequential(graph)
        )
