"""The asynchronous execution model: delays, timeouts, stabilization.

``schedule="async"`` relaxes lockstep delivery behind a seeded delay
adversary bounded by phi, adds sender-side send timeouts with bounded
exponential-backoff retransmission, and ends runs that provably cannot
act again via a self-stabilization pulse.  At ``phi=0`` with no timeout
the model degenerates to the synchronous engine bit-for-bit (enforced
differentially in ``tests/test_engine_fuzz.py``); this file tests the
asynchronous behaviors themselves.
"""

from __future__ import annotations

import pytest

from repro.core import ExecutionPolicy, RunConfig, run
from repro.faults import FaultPlan
from repro.faults.plan import MessageAdversary
from repro.graphs import erdos_renyi, line, ring
from repro.obs import MemoryEventSink, async_telemetry
from repro.simulator import (
    DelayAdversary,
    NodeProgram,
    RetryPolicy,
    RoundLimitExceeded,
    SyncEngine,
)


# ----------------------------------------------------------------------
# Test programs
# ----------------------------------------------------------------------
class WaiterProgram(NodeProgram):
    """Quiescent node that acts only when a message reaches it."""

    quiescent_when_idle = True

    def process(self, ctx, inbox):
        if inbox:
            ctx.set_output("woke")
            ctx.terminate()


class PingProgram(NodeProgram):
    """Node 1 pings every neighbor once in round 1 and waits for their
    outputs; everyone else terminates on receipt (Waiter-style)."""

    quiescent_when_idle = True

    def setup(self, ctx):
        if ctx.node_id == 1:
            ctx.wake_at(1)

    def compose(self, ctx):
        if ctx.node_id == 1 and ctx.round == 1:
            return {other: "ping" for other in ctx.active_neighbors}
        return {}

    def process(self, ctx, inbox):
        if ctx.node_id != 1 and inbox:
            ctx.set_output("got")
            ctx.terminate()
        elif ctx.node_id == 1 and ctx.neighbor_outputs:
            ctx.set_output("acked")
            ctx.terminate()


class SpinnerProgram(NodeProgram):
    """Never terminates; floods neighbors every round (deadline tests)."""

    def compose(self, ctx):
        return {other: "spin" for other in ctx.active_neighbors}

    def process(self, ctx, inbox):
        pass


def _run_async(graph, factory, *, phi=0, send_timeout=None, max_retries=2,
               faults=None, max_rounds=300, seed=0):
    sink = MemoryEventSink()
    engine = SyncEngine(
        graph,
        factory,
        faults=faults,
        seed=seed,
        schedule="async",
        phi=phi,
        send_timeout=send_timeout,
        max_retries=max_retries,
        max_rounds=max_rounds,
        on_round_limit="partial",
        sinks=[sink],
    )
    return engine.run(), sink


# ----------------------------------------------------------------------
# Adversary and retry-policy units
# ----------------------------------------------------------------------
class TestDelayAdversary:
    def test_delays_bounded_by_phi(self):
        adversary = DelayAdversary(phi=3, seed=7)
        delays = {
            adversary.delay(tick, s, r)
            for tick in range(10) for s in range(5) for r in range(5)
        }
        assert delays <= set(range(4))
        assert max(delays) > 0  # the adversary actually delays something

    def test_deterministic_and_order_independent(self):
        a = DelayAdversary(phi=4, seed=11)
        b = DelayAdversary(phi=4, seed=11)
        keys = [(t, s, r) for t in range(5) for s in range(4) for r in range(4)]
        forward = [a.delay(*key) for key in keys]
        backward = [b.delay(*key) for key in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        keys = [(t, s, r) for t in range(8) for s in range(6) for r in range(6)]
        a = [DelayAdversary(3, 1).delay(*key) for key in keys]
        b = [DelayAdversary(3, 2).delay(*key) for key in keys]
        assert a != b

    def test_phi_zero_never_delays(self):
        adversary = DelayAdversary(phi=0, seed=5)
        assert all(
            adversary.delay(t, s, r) == 0
            for t in range(10) for s in range(4) for r in range(4)
        )

    def test_negative_phi_rejected(self):
        with pytest.raises(ValueError, match="phi"):
            DelayAdversary(phi=-1, seed=0)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(send_timeout=2, max_retries=4)
        dues = [policy.retry_due(10, attempt, 2) for attempt in (1, 2, 3, 4)]
        assert dues == [12, 14, 18, 26]  # 10 + 2*2**(k-1)

    def test_exhausted_budget_returns_none(self):
        policy = RetryPolicy(send_timeout=1, max_retries=2)
        assert policy.retry_due(0, 3, 1) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="send_timeout"):
            RetryPolicy(send_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(send_timeout=1, max_retries=-1)


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
class TestAsyncConfig:
    def test_phi_requires_async_schedule(self):
        graph = ring(4)
        with pytest.raises(ValueError, match="async"):
            SyncEngine(graph, lambda n: WaiterProgram(), phi=2)
        with pytest.raises(ValueError, match="async"):
            ExecutionPolicy(phi=2, schedule="eager")

    def test_send_timeout_requires_async_schedule(self):
        with pytest.raises(ValueError, match="async"):
            ExecutionPolicy(send_timeout=2, schedule="quiescent")

    def test_negative_phi_rejected(self):
        with pytest.raises(ValueError, match="phi"):
            ExecutionPolicy(phi=-1, schedule="async")
        with pytest.raises(ValueError, match="phi"):
            SyncEngine(ring(4), lambda n: WaiterProgram(),
                       schedule="async", phi=-1)

    def test_profile_unsupported_under_async(self):
        with pytest.raises(ValueError, match="profil"):
            SyncEngine(ring(4), lambda n: WaiterProgram(),
                       schedule="async", profile=True)

    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            ExecutionPolicy(deadline_s=0)
        with pytest.raises(ValueError, match="deadline"):
            SyncEngine(ring(4), lambda n: WaiterProgram(), deadline_s=-1.0)

    def test_run_accepts_async_overrides(self):
        from repro.algorithms.mis.greedy import GreedyMISAlgorithm

        graph = erdos_renyi(12, 0.3, seed=1)
        result = run(GreedyMISAlgorithm(), graph,
                     policy=ExecutionPolicy(schedule="async", phi=1),
                     on_round_limit="partial")
        assert result.all_terminated


# ----------------------------------------------------------------------
# Delayed delivery
# ----------------------------------------------------------------------
class TestDelays:
    def test_delay_events_bounded_by_phi(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(24, 0.25, seed=3)
        for phi in (1, 2, 5):
            result, sink = _run_async(
                graph, lambda n: GreedyMISProgram(), phi=phi, seed=9
            )
            delays = [
                ev["data"]["delay"]
                for ev in sink.events if ev["kind"] == "delay"
            ]
            assert delays, "the adversary never delayed anything"
            assert all(1 <= d <= phi for d in delays)
            assert result.delayed_messages == len(delays)

    def test_delayed_messages_are_delivered_not_duplicated(self):
        """Every parked message lands at most once, at send tick + delay,
        unless its receiver left the computation while it was in flight."""
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(18, 0.3, seed=4)
        result, sink = _run_async(graph, lambda n: GreedyMISProgram(),
                                  phi=3, seed=2)
        parked = []
        delivers = []
        for ev in sink.events:
            if ev["kind"] == "delay":
                parked.append(
                    (ev["round"] + ev["data"]["delay"], ev["node"],
                     ev["data"]["to"])
                )
            elif ev["kind"] == "deliver":
                delivers.append((ev["round"], ev["node"], ev["data"]["to"]))
        assert len(delivers) <= len(parked)
        # Every deliver matches exactly one parked message (multiset-wise).
        remaining = list(parked)
        for deliver in delivers:
            assert deliver in remaining
            remaining.remove(deliver)

    def test_same_seed_identical_event_streams(self):
        from repro.algorithms.matching.greedy import GreedyMatchingProgram

        graph = erdos_renyi(20, 0.3, seed=6)
        plan = FaultPlan(messages=MessageAdversary(drop_rate=0.2), seed=3)
        runs = [
            _run_async(graph, lambda n: GreedyMatchingProgram(), phi=2,
                       send_timeout=2, faults=plan, seed=13)
            for _ in range(2)
        ]
        (r1, s1), (r2, s2) = runs
        # entries would include round_end wall-clock timings; the event
        # stream is the deterministic part.
        assert s1.events == s2.events
        assert r1.outputs == r2.outputs
        assert (r1.rounds, r1.message_count, r1.total_bits) == (
            r2.rounds, r2.message_count, r2.total_bits
        )

    def test_different_seeds_change_the_schedule(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(20, 0.3, seed=6)
        _, s1 = _run_async(graph, lambda n: GreedyMISProgram(), phi=3, seed=1)
        _, s2 = _run_async(graph, lambda n: GreedyMISProgram(), phi=3, seed=2)
        assert s1.events != s2.events

    def test_no_async_event_kinds_at_phi_zero(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(15, 0.3, seed=0)
        _, sink = _run_async(graph, lambda n: GreedyMISProgram(), phi=0)
        kinds = {ev["kind"] for ev in sink.events}
        assert not kinds & {"delay", "deliver", "retry", "stabilize"}


# ----------------------------------------------------------------------
# Send timeouts and retransmission
# ----------------------------------------------------------------------
class TestSendTimeouts:
    def _lossy_ping(self, *, send_timeout, max_retries, per_node=None):
        graph = line(2)

        def factory(node):
            program = PingProgram()
            if per_node is not None:
                original_setup = program.setup

                def setup(ctx, _orig=original_setup):
                    _orig(ctx)
                    ctx.set_send_timeout(per_node)

                program.setup = setup
            return program

        plan = FaultPlan(messages=MessageAdversary(drop_rate=0.95), seed=0)
        return _run_async(
            graph, factory, phi=0, send_timeout=send_timeout,
            max_retries=max_retries, faults=plan, max_rounds=120,
        )

    def test_retries_follow_exponential_backoff(self):
        result, sink = self._lossy_ping(send_timeout=1, max_retries=5)
        retries = [ev for ev in sink.events if ev["kind"] == "retry"]
        assert retries, "no retransmission fired"
        assert [ev["data"]["attempt"] for ev in retries] == list(
            range(1, len(retries) + 1)
        )
        drop_round = next(
            ev["round"] for ev in sink.events if ev["kind"] == "drop"
        )
        assert [ev["round"] for ev in retries] == [
            drop_round + (2 ** attempt - 1)
            for attempt in range(1, len(retries) + 1)
        ]
        assert result.retried_messages == len(retries)

    def test_retry_budget_is_bounded(self):
        _, sink = self._lossy_ping(send_timeout=1, max_retries=2)
        retries = [ev for ev in sink.events if ev["kind"] == "retry"]
        assert len(retries) <= 2

    def test_no_retries_without_timeout(self):
        result, sink = self._lossy_ping(send_timeout=None, max_retries=3)
        assert result.retried_messages == 0
        assert not [ev for ev in sink.events if ev["kind"] == "retry"]

    def test_per_node_timeout_overrides_engine_default(self):
        result, sink = self._lossy_ping(
            send_timeout=None, max_retries=3, per_node=1
        )
        assert [ev for ev in sink.events if ev["kind"] == "retry"]

    def test_set_send_timeout_validation(self):
        from repro.simulator.context import NodeContext

        ctx = NodeContext(1, frozenset(), n=1, d=1, delta=0)
        with pytest.raises(ValueError, match="timeout"):
            ctx.set_send_timeout(0)
        ctx.set_send_timeout(3)
        assert ctx._send_timeout == 3
        ctx.set_send_timeout(None)
        assert ctx._send_timeout is None

    def test_retry_can_complete_a_blocked_run(self):
        """With retransmission armed, an execution that would stabilize
        short of termination (the only JOIN was dropped) completes."""
        graph = line(2)
        plan = FaultPlan(messages=MessageAdversary(drop_rate=0.55), seed=5)
        without, _ = _run_async(graph, lambda n: PingProgram(), phi=0,
                                faults=plan, max_rounds=120)
        with_retry, _ = _run_async(graph, lambda n: PingProgram(), phi=0,
                                   send_timeout=1, max_retries=6,
                                   faults=plan, max_rounds=120)
        # The seeded adversary drops the round-1 ping; only the retrying
        # run finishes.
        assert not without.all_terminated
        assert with_retry.all_terminated


# ----------------------------------------------------------------------
# Self-stabilization and termination detection
# ----------------------------------------------------------------------
class TestStabilization:
    def test_stalled_run_stabilizes_early(self):
        graph = erdos_renyi(6, 0.5, seed=3)
        result, sink = _run_async(graph, lambda n: WaiterProgram(), phi=2,
                                  max_rounds=500)
        assert result.stuck is not None
        assert result.stuck.reason == "stabilized"
        assert result.recovery_pulses == 1
        assert result.rounds_executed < 500
        pulses = [ev for ev in sink.events if ev["kind"] == "stabilize"]
        assert len(pulses) == 1
        assert pulses[0]["node"] == -1

    def test_stabilization_raises_under_raise_mode(self):
        graph = erdos_renyi(6, 0.5, seed=3)
        engine = SyncEngine(graph, lambda n: WaiterProgram(),
                            schedule="async", phi=2, max_rounds=500)
        with pytest.raises(RoundLimitExceeded, match="stabilized"):
            engine.run()

    def test_pulse_does_not_fire_while_work_is_in_flight(self):
        """A healthy terminating run never needs a stabilization pulse."""
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(20, 0.3, seed=8)
        result, _ = _run_async(graph, lambda n: GreedyMISProgram(), phi=4)
        assert result.all_terminated
        assert result.recovery_pulses == 0

    def test_detector_dormant_at_phi_zero(self):
        """At phi=0 a starved run spins to the round budget exactly like
        the synchronous schedules — no pulse, no early stabilization."""
        graph = erdos_renyi(6, 0.5, seed=3)
        result, sink = _run_async(graph, lambda n: WaiterProgram(), phi=0,
                                  max_rounds=40)
        assert result.recovery_pulses == 0
        assert result.stuck is not None
        assert result.stuck.reason == "round-limit"
        assert result.rounds_executed == 40


# ----------------------------------------------------------------------
# Wall-clock deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_deadline_returns_partial_result(self):
        graph = erdos_renyi(30, 0.5, seed=1)
        engine = SyncEngine(graph, lambda n: SpinnerProgram(),
                            max_rounds=10**9, deadline_s=0.15,
                            on_round_limit="partial")
        result = engine.run()
        assert result.stuck is not None
        assert result.stuck.reason == "deadline"
        assert result.stuck.live_nodes

    def test_deadline_is_graceful_even_under_raise_mode(self):
        """deadline_s exists so CI cannot hang; it never raises."""
        graph = erdos_renyi(30, 0.5, seed=1)
        engine = SyncEngine(graph, lambda n: SpinnerProgram(),
                            max_rounds=10**9, deadline_s=0.15)
        result = engine.run()
        assert result.stuck is not None
        assert result.stuck.reason == "deadline"

    def test_fast_run_beats_its_deadline(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(12, 0.3, seed=2)
        engine = SyncEngine(graph, lambda n: GreedyMISProgram(),
                            deadline_s=30.0)
        result = engine.run()
        assert result.stuck is None
        assert result.all_terminated

    def test_runconfig_deadline_passthrough(self):
        from repro.algorithms.mis.greedy import GreedyMISAlgorithm

        graph = erdos_renyi(10, 0.3, seed=0)
        result = run(GreedyMISAlgorithm(), graph,
                     config=RunConfig(policy=ExecutionPolicy(deadline_s=30.0)))
        assert result.stuck is None


# ----------------------------------------------------------------------
# Template bound stretching
# ----------------------------------------------------------------------
class TestTemplateStretch:
    def test_required_bound_scales_with_phi(self):
        from repro.core.templates import _required_bound, _stretch
        from repro.simulator.context import NodeContext

        class Bounded:
            name = "bounded"

            def round_bound(self, n, delta, d):
                return 7

        plain = NodeContext(1, frozenset(), n=4, d=4, delta=2, phi=0)
        delayed = NodeContext(1, frozenset(), n=4, d=4, delta=2, phi=3)
        assert _stretch(plain) == 1
        assert _stretch(delayed) == 4
        assert _required_bound(Bounded(), plain) == 7
        assert _required_bound(Bounded(), delayed) == 28

    def test_template_runs_end_to_end_under_async(self):
        from repro.bench.algorithms import mis_simple
        from repro.predictions import all_zeros_mis

        graph = erdos_renyi(16, 0.25, seed=5)
        algorithm = mis_simple()
        result = run(algorithm, graph, all_zeros_mis(graph),
                     policy=ExecutionPolicy(schedule="async", phi=2),
                     on_round_limit="partial", max_rounds=400)
        assert result.rounds_executed > 0
        # Bookkeeping invariant: exactly the terminated nodes have outputs.
        terminated = {
            node for node, record in result.records.items()
            if record.termination_round is not None
        }
        assert set(result.outputs) == terminated


# ----------------------------------------------------------------------
# Telemetry digest
# ----------------------------------------------------------------------
class TestAsyncTelemetry:
    def test_digest_counts_async_kinds(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(20, 0.3, seed=7)
        plan = FaultPlan(messages=MessageAdversary(drop_rate=0.3), seed=1)
        result, sink = _run_async(graph, lambda n: GreedyMISProgram(),
                                  phi=3, send_timeout=2, faults=plan, seed=4)
        digest = async_telemetry(sink.entries)
        assert digest["delayed"] == result.delayed_messages
        assert digest["retries"] == result.retried_messages
        assert digest["pulses"] == result.recovery_pulses
        assert digest["max_delay"] <= 3
        assert sum(digest["delay_histogram"].values()) == digest["delayed"]

    def test_digest_is_empty_on_synchronous_runs(self):
        from repro.algorithms.mis.greedy import GreedyMISProgram

        graph = erdos_renyi(10, 0.3, seed=0)
        sink = MemoryEventSink()
        SyncEngine(graph, lambda n: GreedyMISProgram(), sinks=[sink]).run()
        digest = async_telemetry(sink.entries)
        assert digest == {
            "delayed": 0, "delivered_late": 0, "retries": 0, "pulses": 0,
            "delay_histogram": {}, "max_delay": 0, "max_retry_attempt": 0,
        }
