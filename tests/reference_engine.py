"""Frozen pre-layering engine, kept verbatim as a differential test oracle.

This is the monolithic ``repro.simulator.engine`` exactly as it stood
before the runtime was decomposed into Transport / Scheduler /
FaultInterposer / NodeLifecycle / ObsDispatch stages (the class is renamed
``ReferenceSyncEngine``; nothing else changed).  The old-vs-new
differential fuzz in ``tests/test_engine_fuzz.py`` runs both engines on
identical instances and asserts bit-identical observational behavior:
outputs, round counts, message/bit counters and the full event stream.

Do not fix bugs here — any behavioral divergence from the live engine is
either a regression in the refactor or a deliberate, documented change
that must update this oracle in the same commit.

:class:`ReferenceSyncEngine` executes one :class:`~repro.simulator.program.
NodeProgram` per node under the model of Section 2 of the paper: rounds are
synchronous; in each round every active node composes messages (from its
state at the end of the previous round), all messages are delivered, then
every active node processes its inbox, may assign outputs, and may
terminate.  Messages a node sends in its final round are delivered normally
— the paper's "notifies its neighbors ... outputs ... and terminates".

After a node terminates, the engine exposes its output to its neighbors at
the start of the following round (``ctx.neighbor_outputs``), which is
exactly the information and the timing an explicit final-round notification
message provides.  This keeps composed algorithms (the templates of
Section 7) faithful to the paper without every component re-implementing
the notification handshake.

Fault injection is delegated to a controller from :mod:`repro.faults`
interposed in the compose/deliver path (see ``docs/MODEL.md``, "Fault
model"): message adversaries act between compose and delivery, crashes
fire at the end of a round, recoveries at the start of one.  The
``on_round_limit="partial"`` mode turns a blown round budget into a
partial :class:`~repro.simulator.metrics.RunResult` carrying a
:class:`~repro.simulator.metrics.StuckReport` instead of an exception, so
benchmarks under faults can *measure* degradation rather than abort.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.profile import RoundProfile
from repro.simulator.context import NodeContext
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import NodeRecord, NodeSnapshot, RunResult, StuckReport
from repro.simulator.models import LOCAL, ExecutionModel
from repro.simulator.program import NodeProgram
from repro.simulator.trace import TraceRecorder


class RoundLimitExceeded(RuntimeError):
    """Raised when a run exceeds its round budget without terminating.

    Every algorithm in the paper has a finite worst-case round complexity;
    hitting this limit under fault-free execution always indicates a bug
    (e.g. deadlocked composition or a non-terminating wait).  Under fault
    injection it may instead mean the adversary starved the algorithm —
    pass ``on_round_limit="partial"`` to record that outcome instead of
    raising.
    """


class BandwidthExceeded(RuntimeError):
    """Raised in strict CONGEST mode when a message exceeds the budget."""


class QuiescenceViolation(RuntimeError):
    """Raised under ``schedule="quiescent-debug"`` on an idle-contract break.

    A program that declares ``quiescent_when_idle = True`` promises that in
    rounds where nothing woke it (no message received last round, no
    neighbor event, no timed wakeup due) it neither sends, outputs, nor
    terminates.  The debug schedule executes every node eagerly while
    tracking the wake-set the quiescent schedule would have used, and
    raises this error the moment a supposedly idle node acts — the same
    divergence ``schedule="quiescent"`` would have silently introduced.
    """


ProgramSource = Union[Mapping[int, NodeProgram], Callable[[int], NodeProgram]]


class ReferenceSyncEngine:
    """Runs node programs over a graph in synchronous rounds.

    Args:
        graph: A :class:`~repro.graphs.graph.DistGraph` (or any object with
            ``nodes``, ``neighbors(v)``, ``n``, ``d``, ``delta`` and
            ``node_attrs(v)``).
        programs: Either a mapping ``node -> NodeProgram`` or a factory
            ``node -> NodeProgram`` called once per node.
        predictions: Optional mapping ``node -> prediction`` handed to each
            node's context (the per-node prediction of Section 1.1).
        model: Execution model for bandwidth accounting.
        max_rounds: Round budget; defaults to ``8 * n + 64``.
        seed: Base seed for the per-node random streams.
        trace: Optional :class:`TraceRecorder` receiving every event
            (kept as a named argument because the recorder is attached
            to ``result.trace``; it is also just one sink).
        sinks: Additional :class:`~repro.obs.events.EventSink` objects
            receiving every event plus run/round lifecycle hooks with
            wall-clock and message deltas.  When neither sinks nor a
            trace are attached, the round loop does no observability
            work at all.
        profile: ``True`` (or a :class:`~repro.obs.profile.RoundProfile`
            to fill) records per-round compose/deliver/process/finalize
            phase timings on ``result.profile``, via a split round path
            that is observationally identical to the fused one.
        crash_rounds: Deprecated fault injection — mapping
            ``node -> round``; the node executes that round and then
            vanishes without output.  Use
            :meth:`repro.faults.plan.FaultPlan.crash_stop` instead.
        faults: A :class:`~repro.faults.plan.FaultPlan` (or any controller
            implementing its hook API) describing crashes, crash-recovery,
            message adversaries and prediction corruption.
        on_round_limit: ``"raise"`` (default) raises
            :class:`RoundLimitExceeded` when the budget is blown;
            ``"partial"`` stops instead and returns the partial
            :class:`RunResult` with a populated ``stuck`` report.
        fast: Skip per-message bit-size estimation (``total_bits``,
            ``max_message_bits`` and CONGEST budget checks stay zero) for
            maximum throughput; ``message_count`` is still maintained.
            Outputs, round counts and termination records are identical
            to a normal run.
        schedule: Round-scheduling policy.  ``"eager"`` (default) runs
            every active node every round.  ``"quiescent"`` skips nodes
            whose programs declare ``quiescent_when_idle = True`` in
            rounds where nothing can observably reach them — they ran in
            the previous round's delivery, a neighbor terminated, crashed
            or recovered, they were just set up or recovered, or a timed
            wakeup (``ctx.wake_at`` / ``ctx.request_wakeup``) is due; on
            frontier workloads this cuts simulator work from
            Θ(n · rounds) to Θ(total activity) while staying
            observationally identical (same outputs, rounds, message
            counts and event order).  ``"quiescent-debug"`` executes
            eagerly while tracking the hypothetical wake-set and raises
            :class:`QuiescenceViolation` when an idle node acts — use it
            to validate a program's idle contract.
    """

    def __init__(
        self,
        graph: Any,
        programs: ProgramSource,
        *,
        predictions: Optional[Mapping[int, Any]] = None,
        model: ExecutionModel = LOCAL,
        max_rounds: Optional[int] = None,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        sinks: Optional[Sequence[Any]] = None,
        profile: Union[bool, RoundProfile, None] = None,
        crash_rounds: Optional[Mapping[int, int]] = None,
        faults: Optional[Any] = None,
        on_round_limit: str = "raise",
        fast: bool = False,
        schedule: str = "eager",
    ) -> None:
        if on_round_limit not in ("raise", "partial"):
            raise ValueError(
                f"on_round_limit must be 'raise' or 'partial', got {on_round_limit!r}"
            )
        if schedule not in ("eager", "quiescent", "quiescent-debug"):
            raise ValueError(
                "schedule must be 'eager', 'quiescent' or 'quiescent-debug', "
                f"got {schedule!r}"
            )
        if crash_rounds:
            warnings.warn(
                "crash_rounds= is deprecated; pass "
                "faults=FaultPlan.crash_stop({node: round, ...}) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.graph = graph
        self.model = model
        self.trace = trace
        sink_list: List[Any] = list(sinks) if sinks else []
        if trace is not None:
            sink_list.append(trace)
        #: Every attached sink (the trace recorder included).  The round
        #: loop checks emptiness once per round; no sinks means no
        #: observability work on the hot path.
        self._sinks: Tuple[Any, ...] = tuple(sink_list)
        if profile is None or profile is False:
            self._profile: Optional[RoundProfile] = None
        elif profile is True:
            self._profile = RoundProfile()
        else:
            self._profile = profile
        self.max_rounds = max_rounds if max_rounds is not None else 8 * graph.n + 64
        self.on_round_limit = on_round_limit
        self.fast = fast
        self.schedule = schedule
        #: Whether wake-set bookkeeping is live (quiescent and debug
        #: schedules); the eager hot path never touches it.
        self._track_wakes = schedule != "eager"
        if self._track_wakes and self._profile is not None and schedule != "quiescent":
            raise ValueError("profiling is not supported with schedule='quiescent-debug'")
        self._seed = seed
        self._faults = self._resolve_faults(faults, crash_rounds)
        predictions = dict(predictions or {})
        if self._faults is not None and predictions:
            predictions = self._faults.corrupt_predictions(
                predictions, sorted(graph.nodes)
            )
        self._predictions = predictions
        self._program_source = programs

        self.programs: Dict[int, NodeProgram] = {}
        self.contexts: Dict[int, NodeContext] = {}
        for node in sorted(graph.nodes):
            if callable(programs):
                program = programs(node)
            else:
                program = programs[node]
            self.programs[node] = program
            self.contexts[node] = self._build_context(node)

        self._active = set(self.graph.nodes)
        #: Sorted view of ``_active``, rebuilt only when membership changes
        #: (terminations, crashes, recoveries) instead of thrice per round.
        self._active_order: List[int] = sorted(self._active)
        self._result = RunResult(model=model)
        for node in self.graph.nodes:
            self._result.records[node] = NodeRecord(node_id=node)
        #: Adversarial replays scheduled for a later round:
        #: (due round, sender, receiver, payload).
        self._pending_replays: List[Tuple[int, int, int, Any]] = []
        #: Per-node inboxes, allocated once and cleared between rounds.
        #: Safe to reuse: programs consume their inbox during ``process``
        #: and never retain the mapping.
        self._inboxes: Dict[int, Dict[int, Any]] = {
            node: {} for node in self.graph.nodes
        }
        #: Quiescence bookkeeping (unused under the eager schedule).
        #: ``_next_wake`` holds the nodes with a pending wake condition for
        #: the upcoming round (everyone before round 1); ``_timed_wake``
        #: maps node -> earliest requested wakeup round; ``_always_awake``
        #: holds nodes whose programs did not opt into quiescence.
        self._next_wake: set = set(self.graph.nodes) if self._track_wakes else set()
        self._timed_wake: Dict[int, int] = {}
        self._always_awake: set = set()
        if self._track_wakes:
            for node, program in self.programs.items():
                if not getattr(program, "quiescent_when_idle", False):
                    self._always_awake.add(node)
        #: Nodes the last executed round actually processed (``None`` means
        #: every active node, the eager schedules) — keeps stuck-report
        #: inbox snapshots identical across schedules.
        self._processed_last_round: Optional[set] = None

    @staticmethod
    def _resolve_faults(
        faults: Optional[Any], crash_rounds: Optional[Mapping[int, int]]
    ) -> Optional[Any]:
        """Normalize ``faults``/``crash_rounds`` into one controller."""
        controller = None
        if faults is not None:
            if hasattr(faults, "build_controller"):
                controller = faults.build_controller()
            else:
                controller = faults
        if crash_rounds:
            if controller is None:
                # Imported here: the simulator package must stay importable
                # without repro.faults (which itself imports the simulator).
                from repro.faults.plan import FaultPlan

                controller = FaultPlan.from_crash_rounds(crash_rounds).build_controller()
            else:
                controller.add_crash_rounds(crash_rounds)
        return controller

    def _build_context(self, node: int) -> NodeContext:
        return NodeContext(
            node_id=node,
            neighbors=frozenset(self.graph.neighbors(node)),
            n=self.graph.n,
            d=self.graph.d,
            delta=self.graph.delta,
            prediction=self._predictions.get(node),
            attrs=self.graph.node_attrs(node),
            seed=self._seed,
        )

    # ------------------------------------------------------------------
    def run(self, stop_after: Optional[int] = None) -> RunResult:
        """Execute until every node terminates (or faults/limits stop it).

        With ``stop_after``, execute at most that many rounds and return
        the partial record without raising — how tests observe the partial
        solution a bounded component (e.g. a base algorithm) leaves behind.
        """
        sinks = self._sinks
        profile = self._profile
        if sinks:
            meta = {
                "n": self.graph.n,
                "model": getattr(self.model, "name", str(self.model)),
                "max_rounds": self.max_rounds,
                "seed": self._seed,
                "fast": self.fast,
                "transport": "LocalTransport",
            }
            for sink in sinks:
                sink.on_run_begin(meta)
        if profile is not None:
            setup_start = perf_counter()
            self._setup_phase()
            profile.setup = perf_counter() - setup_start
        else:
            self._setup_phase()
        if self.schedule == "quiescent":
            run_round = (
                self._run_round_quiescent_profiled
                if profile is not None
                else self._run_round_quiescent
            )
        elif self.schedule == "quiescent-debug":
            run_round = self._run_round_debug
        else:
            run_round = (
                self._run_round_profiled if profile is not None else self._run_round
            )
        round_index = 0
        while self._active or self._has_pending_recoveries(round_index):
            if stop_after is not None and round_index >= stop_after:
                break
            if round_index >= self.max_rounds:
                if self.on_round_limit == "partial":
                    self._result.stuck = self._build_stuck_report(round_index)
                    break
                raise RoundLimitExceeded(
                    f"{len(self._active)} node(s) still active after "
                    f"{self.max_rounds} rounds: {sorted(self._active)[:10]}"
                )
            round_index += 1
            if sinks:
                for sink in sinks:
                    sink.on_round_begin(round_index, len(self._active))
                round_start = perf_counter()
                messages_before = self._result.message_count
            run_round(round_index)
            if sinks:
                info = {
                    "elapsed": perf_counter() - round_start,
                    "messages": self._result.message_count - messages_before,
                    "active": len(self._active),
                }
                for sink in sinks:
                    sink.on_round_end(round_index, info)
        self._result.rounds_executed = round_index
        self._result.rounds = max(
            (
                record.termination_round
                for record in self._result.records.values()
                if record.termination_round is not None
            ),
            default=0,
        )
        self._result.profile = profile
        if sinks:
            summary = {
                "rounds": self._result.rounds,
                "rounds_executed": self._result.rounds_executed,
                "messages": self._result.message_count,
                "dropped": self._result.dropped_messages,
                "terminated": sum(
                    1
                    for record in self._result.records.values()
                    if record.termination_round is not None
                ),
                "stuck": self._result.stuck is not None,
            }
            for sink in sinks:
                sink.on_run_end(summary)
        return self._result

    def _has_pending_recoveries(self, round_index: int) -> bool:
        """Whether a crashed node is still scheduled to rejoin later.

        Keeps the run alive across a window in which *every* node is
        momentarily crashed but recoveries are due.
        """
        if self._faults is None:
            return False
        last = getattr(self._faults, "last_recovery_round", None)
        if last is None:
            return False
        due = last()
        # A rejoin beyond the round budget can never fire; ignore it.
        return round_index < due <= self.max_rounds

    # ------------------------------------------------------------------
    def _setup_phase(self) -> None:
        track = self._track_wakes
        for node in self._active_order:
            ctx = self.contexts[node]
            ctx.round = 0
            self.programs[node].setup(ctx)
            if track:
                self._collect_wake(node, ctx)
        self._finalize_round(0)

    def _collect_wake(self, node: int, ctx: NodeContext) -> None:
        """Fold a context's pending ``wake_at`` request into the schedule."""
        request = ctx._wake_request
        if request is not None:
            ctx._wake_request = None
            current = self._timed_wake.get(node)
            if current is None or request < current:
                self._timed_wake[node] = request

    def _emit(self, round_index: int, kind: str, node: int, data: Any = None) -> None:
        """Fan one event out to every attached sink."""
        for sink in self._sinks:
            sink.record(round_index, kind, node, data)

    def _run_round(self, round_index: int) -> None:
        self._apply_recoveries(round_index)
        # Local bindings keep the per-round loops free of attribute churn;
        # the fault/sink hooks are skipped entirely when nothing is
        # installed, and ``fast`` elides bandwidth accounting.
        active = self._active
        order = self._active_order
        programs = self.programs
        contexts = self.contexts
        inboxes = self._inboxes
        emit = self._emit if self._sinks else None
        faults = self._faults
        account = not self.fast

        for node in order:
            inboxes[node].clear()
        if self._pending_replays:
            self._deliver_replays(round_index, inboxes)

        # Compose phase: every active node decides its messages using state
        # from the end of the previous round.
        for node in order:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                # Messages to nodes that already terminated or crashed are
                # dropped: the recipient no longer participates.  (A sender
                # learns of a neighbor's termination only in the following
                # round, so such sends are legitimate.)
                if receiver not in active:
                    continue
                if faults is not None:
                    payload = self._adjudicate(round_index, node, receiver, payload)
                    if payload is _DROPPED:
                        continue
                if account:
                    self._account_message(payload)
                else:
                    self._result.message_count += 1
                inboxes[receiver][node] = payload

        # Process phase: every active node consumes its inbox.
        for node in order:
            programs[node].process(contexts[node], inboxes[node])

        self._finalize_round(round_index)

    def _run_round_profiled(self, round_index: int) -> None:
        """One round with the compose/deliver split timed per phase.

        Observationally identical to :meth:`_run_round` — same outputs,
        message counts, event order — but compose collects every outbox
        before any delivery, so the two phases can be timed separately.
        (Replays still land before fresh sends, and the inbox insertion
        order per receiver is unchanged because delivery walks nodes in
        the same order compose did.)
        """
        profile = self._profile
        self._apply_recoveries(round_index)
        active = self._active
        order = self._active_order
        programs = self.programs
        contexts = self.contexts
        inboxes = self._inboxes
        emit = self._emit if self._sinks else None
        faults = self._faults
        account = not self.fast
        messages_before = self._result.message_count
        participants = len(order)

        compose_start = perf_counter()
        outboxes: List[Tuple[int, Dict[int, Any]]] = []
        for node in order:
            inboxes[node].clear()
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver in outbox:
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
            outboxes.append((node, outbox))

        deliver_start = perf_counter()
        if self._pending_replays:
            self._deliver_replays(round_index, inboxes)
        for node, outbox in outboxes:
            for receiver, payload in outbox.items():
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    continue
                if faults is not None:
                    payload = self._adjudicate(round_index, node, receiver, payload)
                    if payload is _DROPPED:
                        continue
                if account:
                    self._account_message(payload)
                else:
                    self._result.message_count += 1
                inboxes[receiver][node] = payload

        process_start = perf_counter()
        for node in order:
            programs[node].process(contexts[node], inboxes[node])

        finalize_start = perf_counter()
        self._finalize_round(round_index)
        finalize_end = perf_counter()
        profile.add_round(
            round_index,
            compose=deliver_start - compose_start,
            deliver=process_start - deliver_start,
            process=finalize_start - process_start,
            finalize=finalize_end - finalize_start,
            messages=self._result.message_count - messages_before,
            active=participants,
        )

    # ------------------------------------------------------------------
    # Quiescent scheduling
    # ------------------------------------------------------------------
    def _compute_wake_order(self, round_index: int) -> List[int]:
        """This round's compose schedule: woken ∪ always-awake, active, sorted.

        Consumes the accumulated wake-set and the due timed wakeups, and
        resets ``_next_wake`` so this round's events feed the next one.
        """
        wake = self._next_wake
        timed = self._timed_wake
        if timed:
            due = [node for node, when in timed.items() if when <= round_index]
            for node in due:
                del timed[node]
            wake.update(due)
        if self._always_awake:
            wake |= self._always_awake
        active = self._active
        scheduled = sorted(node for node in wake if node in active)
        self._next_wake = set()
        return scheduled

    def _run_round_quiescent(self, round_index: int) -> None:
        """One round that runs only the wake-set, not every active node.

        Observationally identical to :meth:`_run_round` under the idle
        contract: a node outside the wake-set would have composed an empty
        outbox and processed an empty inbox without acting, so skipping it
        changes no output, message, round count or event.  Nodes that
        *receive* a message this round are pulled into the process phase
        (and the next round's wake-set) even if they were asleep, exactly
        as the fused path would have processed them.
        """
        self._apply_recoveries(round_index)
        scheduled = self._compute_wake_order(round_index)
        next_wake = self._next_wake
        active = self._active
        programs = self.programs
        contexts = self.contexts
        inboxes = self._inboxes
        emit = self._emit if self._sinks else None
        faults = self._faults
        account = not self.fast
        #: Nodes to run in the process phase; sleeping nodes keep stale
        #: inboxes, cleared lazily when a delivery first wakes them.
        process_set = set(scheduled)

        for node in scheduled:
            inboxes[node].clear()
        if self._pending_replays:
            self._deliver_replays(round_index, inboxes, awaken=process_set)

        for node in scheduled:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    continue
                if faults is not None:
                    payload = self._adjudicate(round_index, node, receiver, payload)
                    if payload is _DROPPED:
                        # The drop may have starved a waiter mid-protocol;
                        # waking the would-be receiver is harmless (an idle
                        # round is a no-op by contract) and keeps it live.
                        next_wake.add(receiver)
                        continue
                if account:
                    self._account_message(payload)
                else:
                    self._result.message_count += 1
                if receiver not in process_set:
                    inboxes[receiver].clear()
                    process_set.add(receiver)
                inboxes[receiver][node] = payload
                next_wake.add(receiver)

        if len(process_set) == len(scheduled):
            process_order: List[int] = scheduled
        else:
            process_order = sorted(process_set)
        for node in process_order:
            ctx = contexts[node]
            ctx.round = round_index
            programs[node].process(ctx, inboxes[node])
            self._collect_wake(node, ctx)
        self._processed_last_round = process_set
        self._finalize_round(round_index, participants=process_order)

    def _run_round_quiescent_profiled(self, round_index: int) -> None:
        """Quiescent scheduling with the split, per-phase-timed round path.

        Wake-set computation is charged to the compose phase (it is the
        scheduler's overhead); everything else mirrors
        :meth:`_run_round_profiled` restricted to the wake-set.
        """
        profile = self._profile
        self._apply_recoveries(round_index)
        active = self._active
        programs = self.programs
        contexts = self.contexts
        inboxes = self._inboxes
        emit = self._emit if self._sinks else None
        faults = self._faults
        account = not self.fast
        messages_before = self._result.message_count
        participants = len(self._active_order)

        compose_start = perf_counter()
        scheduled = self._compute_wake_order(round_index)
        next_wake = self._next_wake
        process_set = set(scheduled)
        outboxes: List[Tuple[int, Dict[int, Any]]] = []
        for node in scheduled:
            inboxes[node].clear()
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver in outbox:
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
            outboxes.append((node, outbox))

        deliver_start = perf_counter()
        if self._pending_replays:
            self._deliver_replays(round_index, inboxes, awaken=process_set)
        for node, outbox in outboxes:
            for receiver, payload in outbox.items():
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    continue
                if faults is not None:
                    payload = self._adjudicate(round_index, node, receiver, payload)
                    if payload is _DROPPED:
                        next_wake.add(receiver)
                        continue
                if account:
                    self._account_message(payload)
                else:
                    self._result.message_count += 1
                if receiver not in process_set:
                    inboxes[receiver].clear()
                    process_set.add(receiver)
                inboxes[receiver][node] = payload
                next_wake.add(receiver)

        process_start = perf_counter()
        if len(process_set) == len(scheduled):
            process_order: List[int] = scheduled
        else:
            process_order = sorted(process_set)
        for node in process_order:
            ctx = contexts[node]
            ctx.round = round_index
            programs[node].process(ctx, inboxes[node])
            self._collect_wake(node, ctx)
        self._processed_last_round = process_set

        finalize_start = perf_counter()
        self._finalize_round(round_index, participants=process_order)
        finalize_end = perf_counter()
        profile.add_round(
            round_index,
            compose=deliver_start - compose_start,
            deliver=process_start - deliver_start,
            process=finalize_start - process_start,
            finalize=finalize_end - finalize_start,
            messages=self._result.message_count - messages_before,
            active=participants,
            scheduled=len(process_order),
        )

    def _run_round_debug(self, round_index: int) -> None:
        """Eager execution that polices the quiescence idle contract.

        Runs every active node (so state evolution matches the eager
        schedule exactly, including programs whose idle rounds mutate
        private counters) while maintaining the wake-set the quiescent
        schedule would have used; any observable action — a send, an
        output, a termination — by a node outside that set raises
        :class:`QuiescenceViolation`.
        """
        self._apply_recoveries(round_index)
        expected = set(self._compute_wake_order(round_index))
        next_wake = self._next_wake
        active = self._active
        order = self._active_order
        programs = self.programs
        contexts = self.contexts
        inboxes = self._inboxes
        emit = self._emit if self._sinks else None
        faults = self._faults
        account = not self.fast

        for node in order:
            inboxes[node].clear()
        if self._pending_replays:
            self._deliver_replays(round_index, inboxes)

        for node in order:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            if node not in expected:
                raise QuiescenceViolation(
                    f"node {node} ({type(programs[node]).__name__}) composed "
                    f"a non-empty outbox in round {round_index} while idle: "
                    f"schedule='quiescent' would have skipped this send"
                )
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    continue
                if faults is not None:
                    payload = self._adjudicate(round_index, node, receiver, payload)
                    if payload is _DROPPED:
                        next_wake.add(receiver)
                        continue
                if account:
                    self._account_message(payload)
                else:
                    self._result.message_count += 1
                inboxes[receiver][node] = payload
                next_wake.add(receiver)

        for node in order:
            ctx = contexts[node]
            inbox = inboxes[node]
            if node in expected or inbox:
                programs[node].process(ctx, inbox)
                self._collect_wake(node, ctx)
                continue
            before = (ctx.has_output, ctx.output)
            programs[node].process(ctx, inbox)
            self._collect_wake(node, ctx)
            if ctx.terminate_requested or (ctx.has_output, ctx.output) != before:
                raise QuiescenceViolation(
                    f"node {node} ({type(programs[node]).__name__}) "
                    f"{'terminated' if ctx.terminate_requested else 'assigned output'} "
                    f"in round {round_index} while idle: schedule='quiescent' "
                    f"would not have run it"
                )

        self._finalize_round(round_index)

    # ------------------------------------------------------------------
    # Fault interposition
    # ------------------------------------------------------------------
    def _adjudicate(
        self, round_index: int, sender: int, receiver: int, payload: Any
    ) -> Any:
        """Run one message through the adversary; ``_DROPPED`` if lost."""
        if self._faults is None:
            return payload
        fate = self._faults.message_fate(round_index, sender, receiver, payload)
        if fate.dropped:
            self._result.dropped_messages += 1
            if self._sinks:
                self._emit(
                    round_index, "drop", sender, {"to": receiver, "payload": payload}
                )
            return _DROPPED
        if fate.corrupted:
            self._result.corrupted_messages += 1
            if self._sinks:
                self._emit(
                    round_index,
                    "corrupt",
                    sender,
                    {"to": receiver, "original": payload, "payload": fate.payload},
                )
        if fate.duplicate:
            self._pending_replays.append(
                (round_index + 1, sender, receiver, fate.payload)
            )
        return fate.payload

    def _deliver_replays(
        self,
        round_index: int,
        inboxes: Dict[int, Dict[int, Any]],
        awaken: Optional[set] = None,
    ) -> None:
        """Deliver adversarial replays due this round.

        Replays are inserted before fresh sends, so a fresh message from
        the same sender supersedes its own stale copy (the channel keeps
        at most one message per ordered pair per round).

        ``awaken`` is the quiescent schedule's process-set: a replay to a
        sleeping receiver clears its stale inbox and pulls it into this
        round's process phase, just as the eager path would have processed
        it.
        """
        if not self._pending_replays:
            return
        account = not self.fast
        still_pending: List[Tuple[int, int, int, Any]] = []
        for due, sender, receiver, payload in self._pending_replays:
            if due != round_index:
                still_pending.append((due, sender, receiver, payload))
                continue
            if receiver not in self._active:
                continue
            self._result.duplicated_messages += 1
            if self._sinks:
                self._emit(
                    round_index,
                    "duplicate",
                    sender,
                    {"to": receiver, "payload": payload},
                )
            if account:
                self._account_message(payload)
            else:
                self._result.message_count += 1
            if awaken is not None and receiver not in awaken:
                inboxes[receiver].clear()
                awaken.add(receiver)
            if self._track_wakes:
                self._next_wake.add(receiver)
            inboxes[receiver][sender] = payload
        self._pending_replays = still_pending

    def _apply_recoveries(self, round_index: int) -> None:
        """Rejoin crash-with-recovery nodes at the start of this round."""
        if self._faults is None:
            return
        rejoined = False
        for node in self._faults.recoveries_at(round_index):
            record = self._result.records.get(node)
            if record is None or not record.crashed:
                continue  # never crashed (or already back): nothing to do
            if callable(self._program_source):
                self.programs[node] = self._program_source(node)
            # else: mapping-provided program instances cannot be rebuilt;
            # the node rejoins with whatever state the instance holds.
            ctx = self._build_context(node)
            ctx.round = round_index
            ctx.active_neighbors = {
                other for other in ctx.neighbors if other in self._active
            }
            for other in ctx.neighbors:
                other_record = self._result.records[other]
                if other_record.termination_round is not None:
                    ctx.neighbor_outputs[other] = other_record.output
                elif other_record.crashed:
                    ctx.crashed_neighbors.add(other)
            self.contexts[node] = ctx
            self._active.add(node)
            record.crashed = False
            record.recovery_round = round_index
            for other in ctx.neighbors:
                neighbor_ctx = self.contexts[other]
                neighbor_ctx.active_neighbors.add(node)
                neighbor_ctx.crashed_neighbors.discard(node)
            self.programs[node].setup(ctx)
            rejoined = True
            if self._track_wakes:
                # The rejoined node starts fresh (round-1 semantics) and
                # its neighbors observe the recovery, so all of them are
                # schedulable this round; stale timed wakeups of the old
                # incarnation die with it.
                self._timed_wake.pop(node, None)
                self._next_wake.add(node)
                self._next_wake.update(ctx.neighbors)
                if getattr(self.programs[node], "quiescent_when_idle", False):
                    self._always_awake.discard(node)
                else:
                    self._always_awake.add(node)
                self._collect_wake(node, ctx)
            if self._sinks:
                self._emit(round_index, "recover", node)
            if ctx.terminate_requested:
                # A program may output and terminate straight from its
                # recovery setup (e.g. every neighbor is already gone).
                # Honor it before the round runs — the same semantics
                # ``_finalize_round(0)`` gives the initial setup — so the
                # node never re-enters the hot loop and cannot output a
                # second time.
                ctx.terminated = True
                ctx.termination_round = round_index
                record.output = ctx.output
                record.termination_round = round_index
                self._result.outputs[node] = ctx.output
                self._active.discard(node)
                for other in ctx.neighbors:
                    neighbor_ctx = self.contexts[other]
                    neighbor_ctx.active_neighbors.discard(node)
                    neighbor_ctx.neighbor_outputs[node] = ctx.output
                if self._track_wakes:
                    self._timed_wake.pop(node, None)
                    self._next_wake.discard(node)
                    self._always_awake.discard(node)
                if self._sinks:
                    self._emit(round_index, "output", node, {"value": ctx.output})
                    self._emit(round_index, "terminate", node)
        if rejoined:
            self._active_order = sorted(self._active)

    def _build_stuck_report(self, round_index: int) -> StuckReport:
        live = sorted(self._active)
        processed = self._processed_last_round
        snapshots: Dict[int, NodeSnapshot] = {}
        for node in live:
            ctx = self.contexts[node]
            # A node the quiescent schedule skipped keeps a stale inbox;
            # the eager path would have cleared it, so report it empty.
            if processed is not None and node not in processed:
                last_inbox: Dict[int, Any] = {}
            else:
                last_inbox = dict(self._inboxes.get(node, {}))
            snapshots[node] = NodeSnapshot(
                node_id=node,
                round=ctx.round,
                last_inbox=last_inbox,
                state={
                    key: repr(value)
                    for key, value in sorted(vars(self.programs[node]).items())
                },
                has_output=ctx.has_output,
            )
        return StuckReport(
            round=round_index,
            live_nodes=live,
            total_nodes=self.graph.n,
            snapshots=snapshots,
        )

    # ------------------------------------------------------------------
    def _account_message(self, payload: Any) -> None:
        bits = estimate_bits(payload)
        self._result.message_count += 1
        self._result.total_bits += bits
        self._result.max_message_bits = max(self._result.max_message_bits, bits)
        if not self.model.allows(bits, self.graph.n):
            self._result.bandwidth_violations += 1
            if self.model.strict:
                raise BandwidthExceeded(
                    f"{bits}-bit message exceeds "
                    f"{self.model.bandwidth_bits(self.graph.n)}-bit budget"
                )

    def _finalize_round(
        self, round_index: int, participants: Optional[List[int]] = None
    ) -> None:
        """Apply terminations/crashes and publish neighbor updates.

        ``participants`` (sorted) restricts the termination scan to the
        nodes the quiescent schedule actually ran this round — a node that
        was not run cannot have requested termination, so the restriction
        finds exactly the set the full scan would, in the same order,
        without the Θ(active) sweep.  Crashes are adversarial, not program
        actions, so they are drawn from the fault schedule regardless.
        """
        if participants is None:
            candidates = self._active_order
        else:
            candidates = participants
        terminated = [
            node for node in candidates if self.contexts[node].terminate_requested
        ]
        if self._faults is not None:
            crash_now = self._faults.crashes_at(round_index)
            if participants is None:
                crash_set = set(crash_now)
                crashed = [
                    node
                    for node in self._active_order
                    if node in crash_set and node not in terminated
                ]
            else:
                terminated_set = set(terminated)
                # crashes_at is sorted, so this matches the eager order.
                crashed = [
                    node
                    for node in crash_now
                    if node in self._active and node not in terminated_set
                ]
        else:
            crashed = []

        for node in terminated:
            ctx = self.contexts[node]
            ctx.terminated = True
            ctx.termination_round = round_index
            record = self._result.records[node]
            record.output = ctx.output
            record.termination_round = round_index
            self._result.outputs[node] = ctx.output
            self._active.discard(node)
            if self._sinks:
                self._emit(round_index, "output", node, {"value": ctx.output})
                self._emit(round_index, "terminate", node)

        for node in crashed:
            self._result.records[node].crashed = True
            self._active.discard(node)
            if self._sinks:
                self._emit(round_index, "crash", node)

        if terminated or crashed:
            self._active_order = sorted(self._active)

        # Neighbors observe terminations/crashes from the next round on —
        # the same timing as the paper's explicit final-round notification.
        # Under quiescent scheduling that observation is a wake condition.
        track = self._track_wakes
        for node in terminated:
            output = self.contexts[node].output
            neighbors = self.contexts[node].neighbors
            for neighbor in neighbors:
                neighbor_ctx = self.contexts[neighbor]
                neighbor_ctx.active_neighbors.discard(node)
                neighbor_ctx.neighbor_outputs[node] = output
            if track:
                self._next_wake.update(neighbors)
        for node in crashed:
            neighbors = self.contexts[node].neighbors
            for neighbor in neighbors:
                neighbor_ctx = self.contexts[neighbor]
                neighbor_ctx.active_neighbors.discard(node)
                neighbor_ctx.crashed_neighbors.add(node)
            if track:
                self._next_wake.update(neighbors)


#: Sentinel for a message removed by the adversary.
_DROPPED = object()
