"""Tests for the composition machinery (SubContext, SlicedProgram)."""

import pytest

from repro.core.composition import Slice, SlicedProgram, SubContext
from repro.graphs import line, ring
from repro.simulator import NodeProgram, SyncEngine
from repro.simulator.context import NodeContext


def make_context(**overrides):
    defaults = dict(
        node_id=1, neighbors=frozenset({2, 3}), n=3, d=3, delta=2
    )
    defaults.update(overrides)
    return NodeContext(**defaults)


class TestSubContext:
    def test_delegates_knowledge(self):
        base = make_context(prediction=1)
        sub = SubContext(base)
        assert sub.node_id == 1
        assert sub.neighbors == frozenset({2, 3})
        assert sub.prediction == 1
        assert sub.n == 3 and sub.d == 3 and sub.delta == 2
        assert sub.degree == 2

    def test_private_round_counter(self):
        base = make_context()
        base.round = 10
        sub = SubContext(base)
        sub.round = 2
        assert base.round == 10 and sub.round == 2

    def test_passthrough_outputs_reach_base(self):
        base = make_context()
        sub = SubContext(base)
        sub.set_output(5)
        sub.terminate()
        assert base.output == 5
        assert base.terminate_requested
        assert sub.finished

    def test_intercepted_outputs_stay_local(self):
        base = make_context()
        sub = SubContext(base, intercept_outputs=True)
        sub.set_output(7)
        sub.terminate()
        assert base.output is None
        assert not base.terminate_requested
        assert sub.finished
        assert sub.stored_result == 7

    def test_intercepted_parts(self):
        base = make_context()
        sub = SubContext(base, intercept_outputs=True)
        sub.set_output_part("a", 1)
        sub.set_output_part("b", 2)
        assert sub.stored_result == {"a": 1, "b": 2}
        assert sub.output_part("a") == 1
        assert not base.has_output

    def test_local_maximum_follows_active_set(self):
        base = make_context(node_id=5, neighbors=frozenset({2, 9}))
        sub = SubContext(base)
        assert not sub.is_local_maximum()
        base.active_neighbors.discard(9)
        assert sub.is_local_maximum()


class _Counter(NodeProgram):
    """Records the virtual rounds it was driven at."""

    def __init__(self, log, tag):
        self._log = log
        self._tag = tag

    def process(self, ctx, inbox):
        self._log.append((self._tag, ctx.round))


class _FinishAt(NodeProgram):
    def __init__(self, at_round, output):
        self._at = at_round
        self._output = output

    def process(self, ctx, inbox):
        if ctx.round >= self._at:
            ctx.set_output(self._output)
            ctx.terminate()


class TestSlicedProgram:
    def test_sequential_slices_get_fresh_rounds(self):
        log = []

        def schedule(ctx):
            yield Slice("a", 2, lambda host: _Counter(log, "a"))
            yield Slice("b", None, lambda host: _FinishAt(2, "done"))

        graph = line(1)
        result = SyncEngine(graph, lambda v: SlicedProgram(schedule)).run()
        assert log == [("a", 1), ("a", 2)]
        assert result.outputs[1] == "done"
        assert result.rounds == 4  # 2 for slice a + 2 for slice b

    def test_resume_keeps_round_counter(self):
        log = []

        def schedule(ctx):
            yield Slice("u", 2, lambda host: _Counter(log, "u"), resume="u")
            yield Slice("x", 1, lambda host: _Counter(log, "x"))
            yield Slice("u", 2, lambda host: _Counter(log, "u"), resume="u")
            yield Slice("end", None, lambda host: _FinishAt(1, 0))

        SyncEngine(line(1), lambda v: SlicedProgram(schedule)).run()
        assert [entry for entry in log if entry[0] == "u"] == [
            ("u", 1),
            ("u", 2),
            ("u", 3),
            ("u", 4),
        ]
        assert ("x", 1) in log

    def test_parallel_slice_tags_and_intercepts(self):
        class Talker(NodeProgram):
            def compose(self, ctx):
                return {other: f"hi-{ctx.node_id}" for other in ctx.active_neighbors}

            def process(self, ctx, inbox):
                pass

        class Secret(NodeProgram):
            def compose(self, ctx):
                return {other: "psst" for other in ctx.active_neighbors}

            def process(self, ctx, inbox):
                if ctx.round == 2:
                    ctx.set_output("secret-result")
                    ctx.terminate()

        emitted = {}

        class Emit(NodeProgram):
            def process(self, ctx, inbox):
                emitted[ctx.node_id] = ctx  # inspect below

        def schedule(ctx):
            yield Slice(
                "par",
                3,
                lambda host: Talker(),
                parallel_builder=lambda host: Secret(),
            )
            yield Slice(
                "emit",
                None,
                lambda host: _FinishAt(1, host.last_parallel_result),
            )

        result = SyncEngine(line(2), lambda v: SlicedProgram(schedule)).run()
        assert result.outputs == {1: "secret-result", 2: "secret-result"}

    def test_exhausted_schedule_raises(self):
        def schedule(ctx):
            yield Slice("only", 1, lambda host: _Counter([], "o"))

        with pytest.raises(RuntimeError, match="exhausted"):
            SyncEngine(line(1), lambda v: SlicedProgram(schedule)).run()

    def test_early_termination_skips_rest(self):
        log = []

        def schedule(ctx):
            yield Slice("a", 5, lambda host: _FinishAt(1, "early"))
            yield Slice("b", None, lambda host: _Counter(log, "b"))

        result = SyncEngine(line(1), lambda v: SlicedProgram(schedule)).run()
        assert result.outputs[1] == "early"
        assert result.rounds == 1
        assert log == []


class TestRoundupHelper:
    def test_roundup(self):
        from repro.core.templates import _roundup

        assert _roundup(5, 2) == 6
        assert _roundup(4, 2) == 4
        assert _roundup(0, 2) == 2
        assert _roundup(7, 1) == 7
        assert _roundup(7, 3) == 9
