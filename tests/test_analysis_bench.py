"""Tests for the analysis helpers and the bench harness."""

from repro.algorithms.mis import GreedyMISAlgorithm, MISInitializationAlgorithm
from repro.bench import Table, mis_instance_suite, noise_sweep_instances, standard_graph_suite
from repro.core import SimpleTemplate, run
from repro.core.analysis import (
    SweepPoint,
    check_consistency,
    check_robustness,
    degradation_slope,
    sweep,
)
from repro.errors import eta1
from repro.graphs import erdos_renyi, line
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import MIS


ALGORITHM = SimpleTemplate(MISInitializationAlgorithm(), GreedyMISAlgorithm())


class TestSweep:
    def _instances(self):
        graph = erdos_renyi(20, 0.2, seed=1)
        for rate in (0.0, 0.3, 0.8):
            yield f"p={rate}", graph, noisy_predictions(MIS, graph, rate, seed=2)

    def test_sweep_runs_and_validates(self):
        result = sweep(ALGORITHM, MIS, self._instances(), eta1)
        assert len(result.points) == 3
        assert result.all_valid

    def test_rounds_by_error_sorted(self):
        result = sweep(ALGORITHM, MIS, self._instances(), eta1)
        series = result.rounds_by_error()
        assert series == sorted(series)

    def test_violations_against_bound(self):
        result = sweep(ALGORITHM, MIS, self._instances(), eta1)
        assert result.violations(lambda p: p.error + 3) == []
        assert result.violations(lambda p: -1)  # impossible bound flags all

    def test_max_rounds(self):
        result = sweep(ALGORITHM, MIS, self._instances(), eta1)
        assert result.max_rounds() >= 3


class TestChecks:
    def test_check_consistency(self):
        graph = erdos_renyi(20, 0.2, seed=4)
        perfect = perfect_predictions(MIS, graph)
        ok, rounds = check_consistency(ALGORITHM, MIS, graph, perfect, 3)
        assert ok and rounds <= 3

    def test_check_robustness_flags_slow_points(self):
        from repro.core.analysis import SweepResult

        result = SweepResult(
            points=[SweepPoint("a", 0, 100, True, 10)]
        )
        assert check_robustness(result, lambda n: n)
        assert not check_robustness(result, lambda n: n, factor=20)

    def test_degradation_slope_linear_data(self):
        from repro.core.analysis import SweepResult

        points = [SweepPoint(str(e), e, 2 * e + 3, True, 50) for e in range(1, 10)]
        slope = degradation_slope(SweepResult(points=points))
        assert abs(slope - 2.0) < 1e-9

    def test_degradation_slope_empty(self):
        from repro.core.analysis import SweepResult

        assert degradation_slope(SweepResult()) == 0.0


class TestBenchHarness:
    def test_table_rendering(self):
        table = Table("demo", ["a", "bb"])
        table.add_row(1, "xy")
        text = table.render()
        assert "demo" in text and "bb" in text and "xy" in text

    def test_table_row_arity_checked(self):
        import pytest

        table = Table("demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_standard_graph_suite_shapes(self):
        suite = standard_graph_suite()
        assert len(suite) == 10
        assert all(g.n > 0 for g in suite)

    def test_noise_sweep_instances(self):
        graph = line(10)
        instances = list(
            noise_sweep_instances(MIS, graph, rates=(0.0, 1.0), seeds=(0,))
        )
        assert len(instances) == 2
        label, g, predictions = instances[0]
        assert g is graph and len(predictions) == 10

    def test_mis_instance_suite_runs(self):
        instances = list(mis_instance_suite(MIS, seeds=(0,)))
        assert len(instances) == 10 * (1 + 3)
