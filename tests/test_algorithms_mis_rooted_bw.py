"""Tests for the rooted-tree MIS algorithms and the black/white
alternating algorithm (Sections 9.1 and 9.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import (
    BlackWhiteGreedyMIS,
    RootedTreeColoringMISReference,
    RootedTreeMISInitialization,
    RootsAndLeavesMISAlgorithm,
)
from repro.algorithms.mis.rooted_tree import (
    MISFrom3ColoringProgram,
    TreeColoring3Program,
    cole_vishkin_steps,
    tree_coloring_round_bound,
)
from repro.core import run, SimpleTemplate
from repro.errors import eta_t, mis_base_partial
from repro.faults import FaultPlan
from repro.graphs import (
    directed_line,
    grid2d,
    random_rooted_tree,
    strict_binary_tree,
)
from repro.predictions import (
    directed_line_pattern,
    grid_blackwhite_predictions,
    noisy_predictions,
    perfect_predictions,
)
from repro.problems import MIS
from repro.simulator import SyncEngine

from tests.conftest import random_predictions_bits


def partial_run(algorithm, graph, predictions, rounds, seed=0):
    engine = SyncEngine(
        graph,
        lambda v: algorithm.build_program(),
        predictions=predictions,
        seed=seed,
    )
    return engine.run(stop_after=rounds).outputs


class TestRootedTreeInitialization:
    def test_correct_predictions_finish_by_round_three(self):
        graph = random_rooted_tree(60, seed=1)
        predictions = perfect_predictions(MIS, graph)
        engine = SyncEngine(
            graph,
            lambda v: RootedTreeMISInitialization().build_program(),
            predictions=predictions,
        )
        result = engine.run(stop_after=4)
        assert result.outputs == predictions
        assert result.rounds <= 3

    def test_partial_always_extendable(self):
        for seed in range(10):
            graph = random_rooted_tree(25, seed=seed)
            predictions = random_predictions_bits(graph, seed)
            outputs = partial_run(
                RootedTreeMISInitialization(), graph, predictions, 4
            )
            assert MIS.is_extendable(graph, outputs), (seed, outputs)

    def test_remaining_components_monochromatic(self):
        """The defining property of the rooted-tree initialization."""
        for seed in range(10):
            graph = random_rooted_tree(30, seed=seed)
            predictions = random_predictions_bits(graph, seed + 4)
            outputs = partial_run(
                RootedTreeMISInitialization(), graph, predictions, 4
            )
            active = [v for v in graph.nodes if v not in outputs]
            remainder = graph.subgraph(active)
            for component in remainder.components():
                colors = {predictions[v] for v in component}
                assert len(colors) == 1, (seed, component, colors)

    def test_contains_base_partial(self):
        for seed in range(8):
            graph = random_rooted_tree(25, seed=seed)
            predictions = random_predictions_bits(graph, seed + 7)
            base = mis_base_partial(graph, predictions)
            init = partial_run(
                RootedTreeMISInitialization(), graph, predictions, 4
            )
            assert set(base).issubset(set(init))

    def test_directed_line_example_terminates_by_round_two(self):
        """Section 9.2: the 0-0-1 pattern is fully resolved in 2 rounds."""
        graph = directed_line(30)
        predictions = directed_line_pattern(graph)
        engine = SyncEngine(
            graph,
            lambda v: RootedTreeMISInitialization().build_program(),
            predictions=predictions,
        )
        result = engine.run(stop_after=4)
        assert len(result.outputs) == graph.n
        assert result.rounds <= 3
        assert MIS.is_solution(graph, result.outputs)


class TestRootsAndLeaves:
    def test_valid_on_rooted_trees(self):
        for seed in range(8):
            graph = random_rooted_tree(40, seed=seed)
            result = run(RootsAndLeavesMISAlgorithm(), graph)
            assert MIS.is_solution(graph, result.outputs)

    def test_directed_line_halving_speed(self):
        """A path of h nodes finishes in about h/2 rounds."""
        graph = directed_line(40)
        result = run(RootsAndLeavesMISAlgorithm(), graph)
        assert result.rounds <= 40 // 2 + 2

    def test_star_tree_is_constant(self):
        graph = random_rooted_tree(30, seed=1, max_children=29)
        result = run(RootsAndLeavesMISAlgorithm(), graph)
        assert result.rounds <= 4

    def test_binary_tree_height_bound(self):
        graph = strict_binary_tree(5)  # height 5, 63 nodes
        result = run(RootsAndLeavesMISAlgorithm(), graph)
        assert result.rounds <= 5 + 2


class TestSimpleTemplateOnRootedTrees:
    def test_eta_t_degradation_bound(self):
        """Section 9.2: Simple(rooted-init, Algorithm 6) finishes within
        ceil(η_t / 2) + 5 rounds."""
        algorithm = SimpleTemplate(
            RootedTreeMISInitialization(), RootsAndLeavesMISAlgorithm()
        )
        for seed in range(10):
            graph = random_rooted_tree(50, seed=seed)
            for rate in (0.1, 0.4, 0.9):
                predictions = noisy_predictions(MIS, graph, rate, seed=seed)
                result = run(algorithm, graph, predictions)
                assert MIS.is_solution(graph, result.outputs)
                bound = (eta_t(graph, predictions) + 1) // 2 + 5
                assert result.rounds <= bound, (seed, rate, result.rounds, bound)


class TestTreeColoring:
    def test_cole_vishkin_steps_log_star_growth(self):
        assert cole_vishkin_steps(10**9) <= cole_vishkin_steps(10**3) + 3

    def test_three_coloring_proper(self):
        for seed in range(6):
            graph = random_rooted_tree(40, seed=seed)
            engine = SyncEngine(
                graph, lambda v: TreeColoring3Program()
            )
            result = engine.run()
            colors = result.outputs
            assert set(colors.values()) <= {1, 2, 3}
            for u, v in graph.edges():
                assert colors[u] != colors[v]

    def test_round_bound_respected(self):
        graph = random_rooted_tree(60, seed=2)
        engine = SyncEngine(graph, lambda v: TreeColoring3Program())
        result = engine.run()
        assert result.rounds <= tree_coloring_round_bound(graph.d)

    def test_fault_tolerance(self):
        graph = random_rooted_tree(40, seed=4)
        engine = SyncEngine(
            graph,
            lambda v: TreeColoring3Program(),
            faults=FaultPlan.crash_stop({5: 2, 11: 3, 17: 5}),
        )
        result = engine.run()
        survivors = result.outputs
        for u, v in graph.edges():
            if u in survivors and v in survivors:
                assert survivors[u] != survivors[v]

    def test_congest_width(self):
        graph = random_rooted_tree(30, seed=5)
        engine = SyncEngine(graph, lambda v: TreeColoring3Program())
        result = engine.run()
        assert result.congest_compatible(graph.n)

    def test_mis_from_3_coloring(self):
        for seed in range(6):
            graph = random_rooted_tree(35, seed=seed)
            coloring = SyncEngine(
                graph, lambda v: TreeColoring3Program()
            ).run().outputs
            programs = {
                v: MISFrom3ColoringProgram(coloring[v]) for v in graph.nodes
            }
            result = SyncEngine(graph, programs).run()
            assert result.rounds <= 2
            assert MIS.is_solution(graph, result.outputs)


class TestCorollary15:
    def test_round_complexity_bound(self):
        """min{ceil(η_t/2) + 5, O(log* d)} with validity throughout."""
        from repro.core import ParallelTemplate

        algorithm = ParallelTemplate(
            RootedTreeMISInitialization(),
            RootsAndLeavesMISAlgorithm(),
            RootedTreeColoringMISReference(),
        )
        reference_cap = tree_coloring_round_bound(10**4) + 12
        for seed in range(6):
            graph = random_rooted_tree(60, seed=seed)
            for rate in (0.0, 0.3, 1.0):
                predictions = noisy_predictions(MIS, graph, rate, seed=seed)
                result = run(algorithm, graph, predictions)
                assert MIS.is_solution(graph, result.outputs)
                eta = eta_t(graph, predictions)
                assert result.rounds <= min((eta + 1) // 2 + 7, reference_cap)


class TestBlackWhiteGreedy:
    def test_valid_mis(self):
        for seed in range(6):
            from repro.graphs import erdos_renyi

            graph = erdos_renyi(25, 0.2, seed=seed)
            predictions = random_predictions_bits(graph, seed)
            result = run(BlackWhiteGreedyMIS(), graph, predictions)
            assert MIS.is_solution(graph, result.outputs)

    def test_figure2_grid_runs_in_constant_rounds(self):
        """Section 9.1 + Figure 2: U_bw finishes in O(η_bw) = O(1) rounds
        on the grid pattern, independent of n."""
        rounds = []
        for size in (8, 12, 16):
            graph = grid2d(size, size)
            predictions = grid_blackwhite_predictions(graph)
            result = run(BlackWhiteGreedyMIS(), graph, predictions)
            assert MIS.is_solution(graph, result.outputs)
            rounds.append(result.rounds)
        assert max(rounds) == min(rounds)  # constant across sizes
        assert max(rounds) <= 16
