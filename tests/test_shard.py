"""Tests for the shared-memory CSR store and component-sharded sweeps."""

from __future__ import annotations

import os
import pickle
import warnings

import pytest

from repro.core import RunConfig
from repro.core.runner import ExecutionPolicy
from repro.exec import ArtifactCache, FaultSpec, GraphSpec, Sweep
from repro.graphs import DistGraph, path_forest, ring
from repro.graphs.csr import plain_reduce
from repro.shard import (
    SharedCSRStore,
    SharedCSRStoreError,
    attach_csr,
    shard_mode,
    shard_node_ids,
    shard_view,
)


@pytest.fixture
def forest():
    return path_forest(6, 5)


# ----------------------------------------------------------------------
# SharedCSRStore lifecycle
# ----------------------------------------------------------------------
class TestSharedCSRStore:
    def test_pickle_under_store_ships_a_handle(self, forest):
        flat = pickle.dumps(forest)
        with SharedCSRStore() as store:
            blob = pickle.dumps(forest)
            assert len(blob) < 300  # a handle, not the buffers
            assert len(blob) < len(flat)
            clone = pickle.loads(blob)
        assert clone.nodes == forest.nodes
        assert clone.edges() == forest.edges()
        assert clone.delta == forest.delta

    def test_publish_is_idempotent_and_refcounted(self, forest):
        with SharedCSRStore() as store:
            first = store.publish(forest.csr)
            second = store.publish(forest.csr)
            assert first == second
            assert len(store) == 1
            store.release(forest.csr)  # drops one pin, segment stays
            assert store.handle_for(forest.csr) == first
            store.release(forest.csr)  # last pin: unlinked early
            assert store.handle_for(forest.csr) is None
            assert len(store) == 0

    def test_total_bytes_matches_handle_formula(self, forest):
        with SharedCSRStore() as store:
            handle = store.publish(forest.csr)
            n, nnz = forest.csr.n, len(forest.csr.indices)
            assert handle.nbytes == 8 * (2 * n + 1 + nnz)
            assert store.total_bytes == handle.nbytes

    def test_attach_after_close_raises_clear_error(self, forest):
        store = SharedCSRStore()
        store.activate()
        handle = store.publish(forest.csr)
        store.close()
        with pytest.raises(SharedCSRStoreError, match="is gone"):
            attach_csr(handle)

    def test_closed_store_rejects_use(self, forest):
        store = SharedCSRStore()
        store.close()
        with pytest.raises(SharedCSRStoreError):
            store.publish(forest.csr)
        with pytest.raises(SharedCSRStoreError):
            store.activate()
        store.close()  # idempotent

    def test_deactivate_restores_flat_pickling(self, forest):
        flat = pickle.dumps(forest)
        store = SharedCSRStore()
        try:
            store.activate()
            assert len(pickle.dumps(forest)) < len(flat)
            store.deactivate()
            assert pickle.dumps(forest) == flat
        finally:
            store.close()

    def test_attached_topology_flat_pickles_without_store(self, forest):
        """A worker re-pickling an attached graph with no store active
        must fall back to flat buffers, not a dead handle."""
        with SharedCSRStore() as store:
            clone = pickle.loads(pickle.dumps(forest))
            store.deactivate()
            blob = pickle.dumps(clone)
        reclone = pickle.loads(blob)  # store closed: only flat data works
        assert reclone.edges() == forest.edges()

    def test_file_backend_roundtrip_and_cleanup(self, forest, tmp_path):
        directory = str(tmp_path / "segments")
        with SharedCSRStore(backend="file", directory=directory) as store:
            blob = pickle.dumps(forest)
            handle = store.handle_for(forest.csr)
            assert handle.kind == "file"
            assert os.path.exists(handle.name)
            clone = pickle.loads(blob)
            assert clone.edges() == forest.edges()
        assert not os.path.exists(handle.name)

    def test_file_backend_attach_after_close_raises(self, forest, tmp_path):
        store = SharedCSRStore(backend="file", directory=str(tmp_path))
        store.activate()
        handle = store.publish(forest.csr)
        store.close()
        with pytest.raises(SharedCSRStoreError, match="is gone"):
            attach_csr(handle)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SharedCSRStore(backend="carrier-pigeon")

    def test_auto_backend_falls_back_to_files_on_eacces(
        self, forest, tmp_path, monkeypatch
    ):
        """A sandbox denying POSIX shared memory (EACCES on segment
        creation) must silently degrade ``"auto"`` to the mmap'd-file
        backend — and the refcounted release path must leave no stray
        segment files under the cache directory."""
        import errno
        from multiprocessing import shared_memory

        def denied(*args, **kwargs):
            raise PermissionError(errno.EACCES, "shm denied by sandbox")

        monkeypatch.setattr(shared_memory, "SharedMemory", denied)
        directory = str(tmp_path / "cache")
        with SharedCSRStore(directory=directory) as store:
            blob = pickle.dumps(forest)
            handle = store.handle_for(forest.csr)
            assert handle is not None and handle.kind == "file"
            assert os.path.dirname(handle.name) == directory
            clone = pickle.loads(blob)  # attach path never touches shm
            assert clone.edges() == forest.edges()
            store.publish(forest.csr)  # second pin
            store.release(forest.csr)  # drops to one: file stays
            assert os.path.exists(handle.name)
            store.release(forest.csr)  # last pin: unlinked early
            assert not os.path.exists(handle.name)
            assert os.listdir(directory) == []
        assert os.listdir(directory) == []

    def test_shm_backend_surfaces_eacces_instead_of_falling_back(
        self, forest, monkeypatch
    ):
        """An explicit ``backend="shm"`` request must fail loudly when
        shared memory is denied, not quietly switch to files."""
        import errno
        from multiprocessing import shared_memory

        def denied(*args, **kwargs):
            raise PermissionError(errno.EACCES, "shm denied by sandbox")

        monkeypatch.setattr(shared_memory, "SharedMemory", denied)
        store = SharedCSRStore(backend="shm")
        try:
            with pytest.raises(PermissionError):
                store.publish(forest.csr)
        finally:
            store.close()


# ----------------------------------------------------------------------
# Content-key and pickle-protocol invariants
# ----------------------------------------------------------------------
class TestContentKeyStability:
    def test_literal_key_ignores_active_store(self, forest):
        """Content identity must not encode ephemeral segment names."""
        key_before = GraphSpec.literal(forest).key
        with SharedCSRStore():
            key_during = GraphSpec.literal(forest).key
        key_after = GraphSpec.literal(forest).key
        assert key_before == key_during == key_after

    def test_plain_reduce_suspends_and_restores_hook(self, forest):
        flat = pickle.dumps(forest.csr)
        with SharedCSRStore():
            with plain_reduce():
                assert pickle.dumps(forest.csr) == flat
            assert len(pickle.dumps(forest.csr)) < len(flat)

    def test_disk_cache_entries_outlive_the_store(self, forest, tmp_path):
        """_store_to_disk pins flat buffers even while a store is active:
        the cache entry must be loadable after the store is gone."""
        disk = str(tmp_path / "cache")
        with SharedCSRStore():
            cache = ArtifactCache(maxsize=0, disk_dir=disk)
            cache.get_or_build("graph-key", lambda: forest)
        fresh = ArtifactCache(maxsize=0, disk_dir=disk)
        loaded = fresh.get_or_build(
            "graph-key", lambda: pytest.fail("should load from disk")
        )
        assert loaded.edges() == forest.edges()

    def test_key_is_protocol_stable_for_csr_payloads(self, forest):
        """The literal key pins protocol=4; HIGHEST_PROTOCOL storage
        variation must not leak into identity."""
        key = GraphSpec.literal(forest).key
        highest = pickle.dumps(forest, protocol=pickle.HIGHEST_PROTOCOL)
        clone = pickle.loads(highest)
        assert GraphSpec.literal(clone).key == key


# ----------------------------------------------------------------------
# Subgraph freshness on attached topologies
# ----------------------------------------------------------------------
class TestAttachedSubgraphs:
    def test_subgraph_of_attached_subgraph_is_fresh(self, forest):
        with SharedCSRStore():
            attached = pickle.loads(pickle.dumps(forest))
        one_path = sorted(forest.components()[0])
        sub = attached.subgraph(one_path)
        assert sub.n == len(one_path)
        inner = sub.subgraph(one_path[:3])
        assert inner.n == 3
        assert inner.num_edges == 2
        assert inner.delta == 2

    def test_attached_components_match_plain(self, forest):
        with SharedCSRStore():
            attached = pickle.loads(pickle.dumps(forest))
        assert attached.components() == forest.components()
        assert attached.csr.components() == forest.csr.components()


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_shard_node_ids_partition_the_graph(self, forest):
        shard_count = 4
        seen = []
        for shard in range(shard_count):
            seen.extend(shard_node_ids(forest, shard, shard_count))
        assert sorted(seen) == sorted(forest.nodes)
        assert len(seen) == len(set(seen))

    def test_shards_never_split_a_component(self, forest):
        shard_count = 4
        for shard in range(shard_count):
            members = set(shard_node_ids(forest, shard, shard_count))
            for component in forest.components():
                overlap = members & component
                assert overlap in (set(), component)

    def test_shard_view_pins_parent_ambient_quantities(self, forest):
        one_path = sorted(forest.components()[0])
        view = shard_view(forest, one_path)
        assert view.n == forest.n
        assert view.delta == forest.delta
        assert len(view.nodes) == len(one_path)
        # ...but the view survives pickling with the pins intact.
        clone = pickle.loads(pickle.dumps(view))
        assert clone.n == forest.n
        assert clone.delta == forest.delta

    def test_shard_mode_gates_whole_graph_features(self, forest):
        def cell_for(**kwargs):
            sweep = Sweep()
            sweep.add(
                "c",
                GraphSpec.literal(forest),
                "greedy_mis_reference",
                policy=ExecutionPolicy(shard="components"),
                **kwargs,
            )
            return sweep.cells[0]

        plain = cell_for()
        assert shard_mode(plain) == "components"
        assert shard_mode(plain, profile=True) is None
        assert shard_mode(plain, events=True) is None
        faulted = cell_for(faults=FaultSpec.of("random_crash_plan", 0.2, seed=1))
        assert shard_mode(faulted) is None
        metered = cell_for(metrics=lambda **kw: {})
        assert shard_mode(metered) is None

    def test_async_schedule_rejects_sharding(self):
        with pytest.raises(ValueError, match="async"):
            ExecutionPolicy(schedule="async", shard="components")

    def test_unknown_shard_mode_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            ExecutionPolicy(shard="edges")


# ----------------------------------------------------------------------
# Differential: sharded runs are bit-identical to unsharded runs
# ----------------------------------------------------------------------
def _sweep(graph, *, shard=None, share=False, schedule="eager", faults=None):
    sweep = Sweep(name="differential", base_seed=11)
    policy = ExecutionPolicy(schedule=schedule, shard=shard, share_graph=share)
    for template in ("greedy_mis_reference", "mis_simple"):
        sweep.add(
            template,
            GraphSpec.literal(graph),
            template,
            predictions="all_zeros_mis",
            problem="mis",
            faults=faults,
            policy=policy,
        )
    return sweep


class TestShardedExecution:
    @pytest.mark.parametrize("schedule", ["eager", "quiescent"])
    def test_serial_sharded_matches_unsharded(self, forest, schedule):
        base = _sweep(forest, schedule=schedule).run("serial")
        sharded = _sweep(forest, shard="components", schedule=schedule).run(
            "serial", jobs=3
        )
        assert sharded.equivalent_to(base)
        assert all(row.shards == 3 for row in sharded.rows)
        assert all(row.shards is None for row in base.rows)

    def test_vectorized_sharded_matches_unsharded(self, forest):
        # Only the greedy template has a compiled whole-frontier kernel.
        def sweep(shard):
            grid = Sweep(name="vectorized", base_seed=11)
            grid.add(
                "greedy",
                GraphSpec.literal(forest),
                "greedy_mis_reference",
                predictions="all_zeros_mis",
                problem="mis",
                policy=ExecutionPolicy(schedule="vectorized", shard=shard),
            )
            return grid

        base = sweep(None).run("serial")
        sharded = sweep("components").run("serial", jobs=3)
        assert sharded.equivalent_to(base)
        assert sharded.rows[0].kernel == base.rows[0].kernel

    def test_process_sharded_with_store_matches_unsharded(self, forest):
        base = _sweep(forest).run("serial")
        sharded = _sweep(forest, shard="components", share=True).run(
            "process", jobs=2
        )
        assert sharded.equivalent_to(base)
        assert sharded.shared_bytes > 0
        for row in sharded.rows:
            assert row.shards == 2
            assert row.ship_bytes is not None
            assert row.shared_bytes == 8 * (
                2 * forest.csr.n + 1 + len(forest.csr.indices)
            )
        telemetry = sharded.telemetry()
        assert telemetry["sharded_cells"] == len(sharded.rows)
        assert telemetry["shards_total"] == 2 * len(sharded.rows)
        assert telemetry["ship_bytes_total"] > 0
        assert telemetry["shared_bytes"] == sharded.shared_bytes

    def test_connected_graph_tolerates_empty_shards(self):
        graph = ring(9)
        base = _sweep(graph).run("serial")
        sharded = _sweep(graph, shard="components").run("serial", jobs=4)
        assert sharded.equivalent_to(base)

    def test_shard_count_does_not_change_results(self, forest):
        runs = [
            _sweep(forest, shard="components").run("serial", jobs=jobs)
            for jobs in (1, 2, 5)
        ]
        assert runs[0].equivalent_to(runs[1])
        assert runs[1].equivalent_to(runs[2])

    def test_faulted_cells_run_unsharded_with_warning(self, forest):
        faults = FaultSpec.of("random_crash_plan", 0.2, seed=5)
        with pytest.warns(RuntimeWarning, match="running unsharded"):
            result = _sweep(forest, shard="components", faults=faults).run(
                "serial", jobs=3
            )
        assert all(row.shards is None for row in result.rows)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            base = _sweep(forest, faults=faults).run("serial")
        assert result.equivalent_to(base)

    def test_ship_bytes_are_constant_in_graph_size(self):
        """The whole point: per-cell pool traffic is a handle plus spec
        overhead, independent of n — a 10× larger graph ships the same."""
        small, large = path_forest(6, 5), path_forest(6, 50)
        results = [
            _sweep(graph, shard="components", share=True).run("process", jobs=2)
            for graph in (small, large)
        ]
        ship_small = sum(row.ship_bytes for row in results[0].rows)
        ship_large = sum(row.ship_bytes for row in results[1].rows)
        flat_growth = len(pickle.dumps(large)) - len(pickle.dumps(small))
        assert flat_growth > 2000  # flat buffers grow linearly...
        assert abs(ship_large - ship_small) < 500  # ...handles do not

    def test_share_graph_without_shard_still_ships_handles(self, forest):
        base = _sweep(forest).run("serial")
        shared = _sweep(forest, share=True).run("process", jobs=2)
        assert shared.equivalent_to(base)
        assert shared.shared_bytes > 0
        assert all(row.shards is None for row in shared.rows)
        assert all(row.ship_bytes is not None for row in shared.rows)

    def test_sharded_csv_row_includes_shard_columns(self, forest, tmp_path):
        result = _sweep(forest, shard="components").run("serial", jobs=2)
        path = tmp_path / "rows.csv"
        result.to_csv(str(path))
        header = path.read_text().splitlines()[0].split(",")
        assert "shards" in header
        assert "shared_bytes" in header
        assert "ship_bytes" in header
