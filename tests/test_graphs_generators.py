"""Tests for graph generators (including the paper's Figure 1 family)."""

import pytest

from repro.graphs import (
    barabasi_albert,
    caterpillar,
    clique,
    complete_bipartite,
    connected_erdos_renyi,
    directed_line,
    empty_graph,
    erdos_renyi,
    from_parents,
    grid2d,
    line,
    path_forest,
    random_regular,
    random_rooted_tree,
    random_tree,
    ring,
    star,
    strict_binary_tree,
    validate_instance,
    wheel_fk,
)
from repro.graphs.rooted_trees import tree_children, tree_height, tree_parent


class TestDeterministicFamilies:
    def test_line_structure(self):
        graph = line(5)
        assert graph.n == 5
        assert graph.degree(1) == 1
        assert graph.degree(3) == 2
        assert graph.has_edge(2, 3)

    def test_single_node_line(self):
        assert line(1).num_edges == 0

    def test_ring_structure(self):
        graph = ring(5)
        assert all(graph.degree(v) == 2 for v in graph.nodes)
        assert graph.has_edge(5, 1)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_star_structure(self):
        graph = star(6)
        assert graph.degree(1) == 5
        assert all(graph.degree(v) == 1 for v in range(2, 7))

    def test_clique_structure(self):
        graph = clique(5)
        assert graph.num_edges == 10
        assert all(graph.degree(v) == 4 for v in graph.nodes)

    def test_complete_bipartite(self):
        graph = complete_bipartite(2, 3)
        assert graph.num_edges == 6
        assert not graph.has_edge(1, 2)

    def test_empty_graph(self):
        graph = empty_graph(4)
        assert graph.num_edges == 0
        assert graph.n == 4

    def test_grid_structure(self):
        graph = grid2d(3, 4)
        assert graph.n == 12
        assert graph.node_attrs(1)["pos"] == (0, 0)
        assert graph.node_attrs(12)["pos"] == (2, 3)
        corner_degrees = [graph.degree(1), graph.degree(4)]
        assert corner_degrees == [2, 2]
        assert graph.delta <= 4

    def test_caterpillar(self):
        graph = caterpillar(4, 2)
        assert graph.n == 4 + 8
        assert graph.degree(1) == 3  # one spine neighbor + two legs

    def test_path_forest(self):
        graph = path_forest(5, 4)
        assert graph.n == 20
        assert len(graph.components()) == 5
        assert all(len(c) == 4 for c in graph.components())


class TestWheelFigure1:
    """The F_k construction of Figure 1."""

    def test_node_count(self):
        assert wheel_fk(8).n == 17

    def test_roles(self):
        graph = wheel_fk(5)
        roles = [graph.node_attrs(v)["role"] for v in graph.nodes]
        assert roles.count("rim") == 5
        assert roles.count("spoke") == 5
        assert roles.count("center") == 1

    def test_diameter_is_four(self):
        # For k >= 8 the diameter is exactly 4 (below that, rim shortcuts
        # make the graph even smaller in diameter).
        for k in (8, 12, 16):
            assert wheel_fk(k).diameter() == 4
        assert wheel_fk(5).diameter() <= 4

    def test_rim_subgraph_diameter_is_k_over_two(self):
        for k in (8, 12, 16):
            rim = wheel_fk(k).subgraph(range(1, k + 1))
            assert rim.diameter() == k // 2

    def test_rim_is_cycle(self):
        graph = wheel_fk(6)
        rim = graph.subgraph(range(1, 7))
        assert all(rim.degree(v) == 2 for v in rim.nodes)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            wheel_fk(2)


class TestRandomFamilies:
    def test_erdos_renyi_seeded(self):
        assert erdos_renyi(20, 0.3, seed=1).edges() == erdos_renyi(
            20, 0.3, seed=1
        ).edges()
        assert erdos_renyi(20, 0.3, seed=1).edges() != erdos_renyi(
            20, 0.3, seed=2
        ).edges()

    def test_connected_erdos_renyi_is_connected(self):
        for seed in range(5):
            assert connected_erdos_renyi(30, 0.05, seed=seed).is_connected()

    def test_random_regular_degrees(self):
        graph = random_regular(16, 3, seed=2)
        assert all(graph.degree(v) == 3 for v in graph.nodes)

    def test_barabasi_albert_connected(self):
        assert barabasi_albert(30, 2, seed=3).is_connected()

    def test_random_tree_is_tree(self):
        for n in (1, 2, 10, 40):
            graph = random_tree(n, seed=5)
            assert graph.n == n
            assert graph.num_edges == n - 1 if n > 1 else graph.num_edges == 0
            assert graph.is_connected()

    def test_random_tree_seeded(self):
        assert random_tree(20, seed=1).edges() == random_tree(20, seed=1).edges()


class TestRootedTrees:
    def test_from_parents(self):
        graph = from_parents({1: None, 2: 1, 3: 1, 4: 2})
        assert graph.node_attrs(1)["is_root"]
        assert tree_parent(graph, 4) == 2
        assert tree_children(graph, 1) == [2, 3]

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            from_parents({1: 2, 2: 1})

    def test_directed_line(self):
        graph = directed_line(6)
        assert tree_parent(graph, 6) == 5
        assert tree_height(graph) == 5
        assert validate_instance(graph, rooted=True) == []

    def test_random_rooted_tree_valid(self):
        for seed in range(4):
            graph = random_rooted_tree(25, seed=seed)
            assert validate_instance(graph, rooted=True) == []
            assert graph.is_connected()

    def test_max_children_respected(self):
        graph = random_rooted_tree(40, seed=1, max_children=2)
        assert all(len(tree_children(graph, v)) <= 2 for v in graph.nodes)

    def test_strict_binary_tree(self):
        graph = strict_binary_tree(3)
        assert graph.n == 15
        internal = [v for v in graph.nodes if tree_children(graph, v)]
        assert all(len(tree_children(graph, v)) == 2 for v in internal)
        assert tree_height(graph) == 3
