"""Tests for the dynamic epoch-stream pipeline (repro.dynamic)."""

import subprocess
import sys
import warnings

import pytest

from repro.bench.algorithms import matching_simple, mis_simple
from repro.dynamic import (
    DATASET_SHA256,
    DATASET_URLS,
    DatasetFetchError,
    DynamicRunner,
    EpochBatch,
    SyntheticChurnStream,
    TEMPORAL_DATASETS,
    TemporalStream,
    apply_batch,
    fetch_dataset,
    parse_temporal_events,
    recourse_between,
    synthetic_temporal_events,
    temporal_stream,
)
from repro.graphs import DistGraph, erdos_renyi, line
from repro.problems import MATCHING, MIS


def _fallback_stream(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return temporal_stream("collegemsg", **kwargs)


class TestApplyBatch:
    def test_insert_and_delete(self):
        graph = line(5)
        batch = EpochBatch(insert_edges=((1, 5),), delete_edges=((2, 3),))
        updated = apply_batch(graph, batch)
        assert updated.has_edge(1, 5)
        assert not updated.has_edge(2, 3)
        assert updated.nodes == graph.nodes

    def test_node_arrival_with_attachments(self):
        graph = line(4)
        batch = EpochBatch(insert_edges=((1, 5), (4, 5)), add_nodes=(5,))
        updated = apply_batch(graph, batch)
        assert 5 in updated
        assert updated.neighbors(5) == frozenset({1, 4})
        assert updated.d >= 5

    def test_node_departure_drops_incident_edges(self):
        graph = line(5)
        updated = apply_batch(graph, EpochBatch(remove_nodes=(3,)))
        assert 3 not in updated
        assert not updated.has_edge(2, 3)
        assert updated.num_edges == graph.num_edges - 2

    def test_sloppy_events_ignored(self):
        graph = line(4)
        batch = EpochBatch(
            insert_edges=((1, 99), (2, 2)),  # unknown endpoint, self-loop
            delete_edges=((1, 4),),          # not an edge
        )
        updated = apply_batch(graph, batch)
        assert updated.edges() == graph.edges()

    def test_d_never_shrinks(self):
        graph = line(6)
        updated = apply_batch(graph, EpochBatch(remove_nodes=(6,)))
        assert updated.d == graph.d


class TestSyntheticChurnStream:
    def test_replayable(self):
        graph = erdos_renyi(30, 0.15, seed=1)
        stream = SyntheticChurnStream(
            graph, 4, add=3, remove=3, add_nodes=1, remove_nodes=1, seed=5
        )
        assert list(stream.batches()) == list(stream.batches())

    def test_batch_sizes_match_request(self):
        graph = erdos_renyi(40, 0.1, seed=2)
        stream = SyntheticChurnStream(graph, 5, add=4, remove=4, seed=3)
        for batch in stream.batches():
            assert len(batch.insert_edges) == 4
            assert len(batch.delete_edges) == 4
            assert not batch.add_nodes and not batch.remove_nodes

    def test_batches_apply_cleanly_in_sequence(self):
        graph = erdos_renyi(25, 0.15, seed=4)
        stream = SyntheticChurnStream(
            graph, 6, add=3, remove=3, add_nodes=2, remove_nodes=2, seed=7
        )
        current = graph
        for t, batch in enumerate(stream.batches(), start=1):
            before = current
            current = apply_batch(current, batch, name=f"t{t}")
            # Inserted edges really appear, deleted ones really vanish.
            for u, v in batch.insert_edges:
                assert current.has_edge(u, v)
            for u, v in batch.delete_edges:
                assert not current.has_edge(u, v)
            for node in batch.remove_nodes:
                assert node in before and node not in current
            for node in batch.add_nodes:
                assert node not in before and node in current

    def test_deleted_edges_not_reinserted_same_epoch(self):
        graph = erdos_renyi(20, 0.3, seed=5)
        stream = SyntheticChurnStream(graph, 8, add=5, remove=5, seed=11)
        for batch in stream.batches():
            assert not (set(batch.insert_edges) & set(batch.delete_edges))

    def test_different_seeds_differ(self):
        graph = erdos_renyi(30, 0.15, seed=1)
        a = list(SyntheticChurnStream(graph, 3, add=3, remove=3, seed=1).batches())
        b = list(SyntheticChurnStream(graph, 3, add=3, remove=3, seed=2).batches())
        assert a != b


class TestTemporalStream:
    def test_parse_events(self, tmp_path):
        path = tmp_path / "events.txt"
        path.write_text(
            "# comment\n"
            "0 1 30\n"
            "1 2 10\n"
            "2 2 5\n"     # self-loop: skipped
            "3 4 20\n"
        )
        events = parse_temporal_events(str(path))
        # Sorted by timestamp, ids shifted to 1-based.
        assert events == [(2, 3, 10), (4, 5, 20), (1, 2, 30)]

    def test_real_file_builds_stream(self, tmp_path):
        data_dir = tmp_path / "data"
        data_dir.mkdir()
        lines = []
        ts = 0
        for u in range(12):
            for v in range(u + 1, 12):
                ts += 1
                lines.append(f"{u} {v} {ts}")
        (data_dir / "CollegeMsg.txt").write_text("\n".join(lines))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warning expected
            stream = temporal_stream(
                "collegemsg", epochs=3, data_dir=str(data_dir)
            )
        assert stream.initial_graph.n == 12
        assert len(list(stream.batches())) == 3

    def test_fallback_warns_and_is_deterministic(self):
        with pytest.warns(UserWarning, match="synthetic fallback"):
            a = temporal_stream("collegemsg", epochs=4, seed=9)
        b = _fallback_stream(epochs=4, seed=9)
        assert list(a.batches()) == list(b.batches())
        assert a.initial_graph.edges() == b.initial_graph.edges()

    def test_synthetic_events_seeded(self):
        assert synthetic_temporal_events("x", seed=1) == synthetic_temporal_events(
            "x", seed=1
        )
        assert synthetic_temporal_events("x", seed=1) != synthetic_temporal_events(
            "x", seed=2
        )

    def test_window_produces_deletions(self):
        stream = _fallback_stream(epochs=5, window=2, seed=3)
        batches = list(stream.batches())
        assert any(batch.delete_edges for batch in batches)
        # Replaying the stream, every deletion was live when it fired.
        current = stream.initial_graph
        for batch in batches:
            for u, v in batch.delete_edges:
                assert current.has_edge(u, v)
            current = apply_batch(current, batch)

    def test_no_duplicate_inserts(self):
        stream = _fallback_stream(epochs=5, seed=3)
        current = stream.initial_graph
        for batch in stream.batches():
            for u, v in batch.insert_edges:
                assert not current.has_edge(u, v)
            current = apply_batch(current, batch)

    def test_unknown_dataset_name_is_a_file_name(self, tmp_path):
        with pytest.warns(UserWarning):
            stream = temporal_stream(
                "my-custom.txt", epochs=2, data_dir=str(tmp_path), seed=1
            )
        assert stream.epochs == 2


class TestDatasetFetch:
    """The ``repro datasets fetch`` machinery — checksum-verified
    downloads that can never poison the loader's offline fallback."""

    PAYLOAD = b"0 1 100\n1 2 200\n2 3 300\n"

    @staticmethod
    def _digest(payload):
        import hashlib

        return hashlib.sha256(payload).hexdigest()

    def _opener(self, calls=None):
        import gzip

        payload = gzip.compress(self.PAYLOAD)

        def opener(url):
            if calls is not None:
                calls.append(url)
            return payload

        return opener

    def test_registry_covers_every_dataset(self):
        assert set(DATASET_URLS) == set(TEMPORAL_DATASETS)
        assert set(DATASET_SHA256) == set(TEMPORAL_DATASETS)
        for url in DATASET_URLS.values():
            assert url.startswith("https://snap.stanford.edu/data/")

    def test_fetch_decompresses_verifies_and_writes(self, tmp_path):
        calls = []
        outcome = fetch_dataset(
            "collegemsg",
            data_dir=str(tmp_path),
            sha256=self._digest(self.PAYLOAD),
            opener=self._opener(calls),
        )
        assert outcome.downloaded
        assert calls == [DATASET_URLS["collegemsg"]]
        assert outcome.path == str(tmp_path / "CollegeMsg.txt")
        assert open(outcome.path, "rb").read() == self.PAYLOAD
        # The fetched file feeds straight into the loader, no fallback.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stream = temporal_stream(
                "collegemsg", epochs=2, data_dir=str(tmp_path)
            )
        assert stream.name == "CollegeMsg"

    def test_bad_checksum_rejected_and_nothing_written(self, tmp_path):
        with pytest.raises(DatasetFetchError, match="sha256"):
            fetch_dataset(
                "collegemsg",
                data_dir=str(tmp_path),
                sha256="0" * 64,
                opener=self._opener(),
            )
        assert list(tmp_path.iterdir()) == []  # no file, no .part debris

    def test_existing_verified_copy_skips_the_network(self, tmp_path):
        digest = self._digest(self.PAYLOAD)
        (tmp_path / "CollegeMsg.txt").write_bytes(self.PAYLOAD)

        def no_network(url):
            raise AssertionError("fetch must not touch the network")

        outcome = fetch_dataset(
            "collegemsg",
            data_dir=str(tmp_path),
            sha256=digest,
            opener=no_network,
        )
        assert not outcome.downloaded
        assert outcome.sha256 == digest

    def test_corrupt_existing_copy_reported_without_overwrite(self, tmp_path):
        (tmp_path / "CollegeMsg.txt").write_bytes(b"tampered\n")
        with pytest.raises(DatasetFetchError, match="force"):
            fetch_dataset(
                "collegemsg",
                data_dir=str(tmp_path),
                sha256=self._digest(self.PAYLOAD),
                opener=self._opener(),
            )
        # force=True re-downloads and repairs it.
        outcome = fetch_dataset(
            "collegemsg",
            data_dir=str(tmp_path),
            sha256=self._digest(self.PAYLOAD),
            force=True,
            opener=self._opener(),
        )
        assert outcome.downloaded
        assert open(outcome.path, "rb").read() == self.PAYLOAD

    def test_unpinned_digest_warns_and_records(self, tmp_path):
        with pytest.warns(UserWarning, match="pin"):
            outcome = fetch_dataset(
                "mathoverflow",
                data_dir=str(tmp_path),
                opener=self._opener(),
            )
        assert outcome.sha256 == self._digest(self.PAYLOAD)

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(DatasetFetchError, match="unknown dataset"):
            fetch_dataset("not-a-dataset", data_dir=str(tmp_path))

    def test_download_failure_wrapped(self, tmp_path):
        def broken(url):
            raise OSError("connection refused")

        with pytest.raises(DatasetFetchError, match="download"):
            fetch_dataset(
                "collegemsg", data_dir=str(tmp_path), opener=broken
            )
        assert list(tmp_path.iterdir()) == []

    def test_loading_never_touches_the_network(self, tmp_path, monkeypatch):
        """The offline-fallback contract: ``temporal_stream`` on a missing
        file synthesizes — it must never import-and-call urllib."""
        import urllib.request

        def poisoned(*args, **kwargs):
            raise AssertionError("temporal_stream opened a socket")

        monkeypatch.setattr(urllib.request, "urlopen", poisoned)
        with pytest.warns(UserWarning, match="fallback"):
            stream = temporal_stream(
                "collegemsg", epochs=2, data_dir=str(tmp_path), seed=3
            )
        assert stream.name == "collegemsg-synthetic"

    def test_cli_fetch_and_list(self, tmp_path, capsys, monkeypatch):
        import gzip

        from repro.cli import main
        from repro.dynamic import datasets as datasets_module

        payload = gzip.compress(self.PAYLOAD)

        class _Response:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                return payload

        monkeypatch.setattr(
            "urllib.request.urlopen", lambda url: _Response()
        )
        monkeypatch.setitem(
            datasets_module.DATASET_SHA256,
            "collegemsg",
            self._digest(self.PAYLOAD),
        )
        code = main(
            ["datasets", "fetch", "collegemsg", "--data-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "downloaded" in out
        assert (tmp_path / "CollegeMsg.txt").read_bytes() == self.PAYLOAD

        code = main(["datasets", "list", "--data-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "present" in out and "missing" in out

        # A digest mismatch surfaces as a nonzero exit.
        code = main(
            [
                "datasets", "fetch", "email-eu-core",
                "--data-dir", str(tmp_path),
                "--sha256", "0" * 64,
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out


class TestRecourse:
    def test_counts_only_standing_nodes(self):
        old = line(4)
        new = apply_batch(old, EpochBatch(remove_nodes=(4,), add_nodes=(9,)))
        old_outputs = {1: 1, 2: 0, 3: 1, 4: 0}
        new_outputs = {1: 1, 2: 1, 3: 1, 9: 1}
        # Node 2 flipped; 4 departed and 9 arrived (neither counts).
        assert recourse_between(old, old_outputs, new, new_outputs) == 1

    def test_zero_when_solution_stands(self):
        graph = line(5)
        outputs = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        assert recourse_between(graph, outputs, graph, outputs) == 0


class TestDynamicRunner:
    def test_epoch_rows_and_columns(self):
        graph = erdos_renyi(30, 0.12, seed=2)
        stream = SyntheticChurnStream(graph, 3, add=3, remove=3, seed=4)
        result = DynamicRunner(mis_simple, MIS, stream, seed=6).run()
        assert len(result.rows) == 4
        assert [row.epoch for row in result.rows] == [0, 1, 2, 3]
        assert result.rows[0].recourse is None
        assert all(row.recourse is not None for row in result.rows[1:])
        assert all(row.scratch_rounds is not None for row in result.rows)
        assert result.all_valid

    def test_zero_churn_stream_has_zero_recourse(self):
        graph = erdos_renyi(30, 0.12, seed=2)
        stream = SyntheticChurnStream(graph, 3, seed=4)
        result = DynamicRunner(mis_simple, MIS, stream, seed=6).run()
        assert all(row.recourse == 0 for row in result.rows[1:])
        assert all(row.error == 0 for row in result.rows[1:])

    def test_replay_is_deterministic(self):
        graph = erdos_renyi(30, 0.12, seed=2)

        def execute():
            stream = SyntheticChurnStream(
                graph, 3, add=4, remove=4, add_nodes=1, remove_nodes=1, seed=4
            )
            return DynamicRunner(mis_simple, MIS, stream, seed=6).run()

        assert execute().equivalent_to(execute())

    def test_scratch_disabled(self):
        graph = erdos_renyi(20, 0.15, seed=3)
        stream = SyntheticChurnStream(graph, 2, add=2, remove=2, seed=1)
        result = DynamicRunner(
            mis_simple, MIS, stream, scratch=False, seed=1
        ).run()
        assert result.rows[0].scratch_rounds is None
        assert all(row.scratch_rounds is None for row in result.rows)

    def test_matching_family_under_node_churn(self):
        graph = erdos_renyi(24, 0.15, seed=5)
        stream = SyntheticChurnStream(
            graph, 3, add=3, remove=3, add_nodes=2, remove_nodes=2, seed=8
        )
        result = DynamicRunner(matching_simple, MATCHING, stream, seed=2).run()
        assert result.all_valid

    def test_csv_and_telemetry_carry_dynamic_columns(self, tmp_path):
        graph = erdos_renyi(20, 0.15, seed=3)
        stream = SyntheticChurnStream(graph, 2, add=2, remove=2, seed=1)
        result = DynamicRunner(mis_simple, MIS, stream, seed=1).run()
        path = tmp_path / "dyn.csv"
        result.to_csv(str(path))
        header = path.read_text().splitlines()[0].split(",")
        assert header[12] == "kernel"
        assert header[13:16] == ["epoch", "recourse", "scratch_rounds"]
        telemetry = result.telemetry()
        assert telemetry["epochs"] == 3
        assert telemetry["recourse_total"] == sum(
            row.recourse or 0 for row in result.rows
        )
        assert telemetry["scratch_rounds_total"] > 0

    def test_bench_baseline_roundtrip(self, tmp_path):
        from repro.obs.bench import record_run

        graph = erdos_renyi(20, 0.15, seed=3)

        def execute():
            stream = SyntheticChurnStream(graph, 2, add=2, remove=2, seed=1)
            return DynamicRunner(mis_simple, MIS, stream, seed=1).run()

        path = str(tmp_path / "BENCH_dyn.json")
        payload, diff = record_run(path, execute(), gate=2.0)
        assert diff is None
        assert all("epoch" in cell for cell in payload["cells"][0:1])
        payload, diff = record_run(path, execute(), gate=2.0)
        assert diff is not None
        assert not diff.determinism_breaks

    def test_temporal_stream_end_to_end(self):
        stream = _fallback_stream(epochs=3, window=2, seed=4)
        result = DynamicRunner(mis_simple, MIS, stream, seed=9).run()
        assert len(result.rows) == 4
        assert result.all_valid
        assert result.recourse_curve() and result.repair_curve()


class TestCrossProcessDeterminism:
    """ISSUE 8 satellite: churn/stale seeding must reproduce seed-for-
    seed on the process-pool backend and across interpreter processes
    (string-keyed ``random.Random`` seeds are sha512-based, so
    ``PYTHONHASHSEED`` must not matter)."""

    @staticmethod
    def _dynamic_sweep():
        from repro.exec import GraphSpec, PredictionSpec, Sweep

        sweep = Sweep(name="dynamic-determinism", base_seed=3)
        for churn in (2, 5):
            for seed in (0, 1):
                sweep.add(
                    f"c={churn}/s={seed}",
                    GraphSpec.of(
                        "repro.bench.workloads:churned_gnp",
                        36, 0.12,
                        seed=seed, add=churn, remove=churn, churn_seed=churn,
                    ),
                    "mis_simple",
                    predictions=PredictionSpec.of(
                        "repro.bench.workloads:stale_for",
                        "mis", 36, 0.12, seed=seed,
                    ),
                    problem="mis",
                )
        return sweep

    def test_serial_and_process_backends_agree(self):
        sweep = self._dynamic_sweep()
        serial = sweep.run("serial")
        process = sweep.run("process", jobs=2, chunk_size=1)
        assert serial.equivalent_to(process)
        assert serial.all_valid
        assert any(row.error for row in serial.rows), (
            "stale predictions should produce nonzero eta1 somewhere"
        )

    def test_seeding_survives_hash_randomization(self):
        """Churn, stale predictions, and stream batches are identical in
        a fresh interpreter with a different PYTHONHASHSEED."""
        script = (
            "from repro.bench.workloads import churned_gnp, stale_for\n"
            "from repro.dynamic import SyntheticChurnStream\n"
            "g = churned_gnp(30, 0.15, seed=1, add=4, remove=4, churn_seed=9)\n"
            "p = stale_for(g, 'mis', 30, 0.15, seed=1)\n"
            "s = SyntheticChurnStream(g, 3, add=3, remove=3, seed=5)\n"
            "print(repr((g.edges(), sorted(p.items()),"
            " list(s.batches()))))\n"
        )

        def digest(hash_seed):
            import os

            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            return out.stdout

        assert digest("0") == digest("12345")
