"""Tests for the matching and edge-coloring algorithms (Sections 8.1, 8.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.edge_coloring import (
    EdgeColoringBaseAlgorithm,
    EdgeColoringCleanupAlgorithm,
    GreedyEdgeColoringAlgorithm,
)
from repro.algorithms.matching import (
    GreedyMatchingAlgorithm,
    MatchingBaseAlgorithm,
    MatchingCleanupAlgorithm,
    MatchingInitializationAlgorithm,
)
from repro.core import run
from repro.errors import edge_coloring_base_partial, matching_base_partial
from repro.graphs import clique, empty_graph, grid2d, line, ring, star
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import EDGE_COLORING, MATCHING, UNMATCHED
from repro.simulator import SyncEngine

from tests.conftest import random_graph


def partial_run(algorithm, graph, predictions, rounds):
    engine = SyncEngine(
        graph, lambda v: algorithm.build_program(), predictions=predictions
    )
    return engine.run(stop_after=rounds).outputs


class TestMatchingBase:
    def test_consistency_two_rounds(self, path5):
        predictions = MATCHING.solve_sequential(path5)
        outputs = partial_run(MatchingBaseAlgorithm(), path5, predictions, 2)
        assert outputs == predictions

    def test_matches_pure_function(self):
        for seed in range(10):
            graph = random_graph(14, 0.3, seed)
            predictions = noisy_predictions(MATCHING, graph, 0.4, seed=seed)
            outputs = partial_run(MatchingBaseAlgorithm(), graph, predictions, 2)
            assert outputs == matching_base_partial(graph, predictions)

    def test_initialization_contains_base(self):
        for seed in range(8):
            graph = random_graph(14, 0.3, seed)
            predictions = noisy_predictions(MATCHING, graph, 0.5, seed=seed)
            base = partial_run(MatchingBaseAlgorithm(), graph, predictions, 2)
            init = partial_run(
                MatchingInitializationAlgorithm(), graph, predictions, 2
            )
            assert set(base).issubset(set(init))
            assert all(init[v] == base[v] for v in base if base[v] != UNMATCHED)

    def test_partials_extendable(self):
        graph = random_graph(15, 0.3, 3)
        predictions = noisy_predictions(MATCHING, graph, 0.6, seed=2)
        outputs = partial_run(
            MatchingInitializationAlgorithm(), graph, predictions, 2
        )
        assert MATCHING.is_extendable(graph, outputs)


class TestGreedyMatching:
    def test_valid_everywhere(self, small_zoo):
        for graph in small_zoo:
            result = run(GreedyMatchingAlgorithm(), graph)
            assert MATCHING.is_solution(graph, result.outputs), graph.name

    def test_round_bound_three_halves(self):
        """Section 8.1: at most 3·⌊s/2⌋ rounds per component (+O(1))."""
        for seed in range(10):
            graph = random_graph(16, 0.25, seed)
            result = run(GreedyMatchingAlgorithm(), graph)
            biggest = max((len(c) for c in graph.components()), default=1)
            assert result.rounds <= 3 * (biggest // 2) + 3

    def test_isolated_nodes_terminate_immediately(self):
        result = run(GreedyMatchingAlgorithm(), empty_graph(5))
        assert result.rounds == 0
        assert all(v == UNMATCHED for v in result.outputs.values())

    def test_star_matches_one_pair(self):
        result = run(GreedyMatchingAlgorithm(), star(6))
        assert len(MATCHING.matched_edges(result.outputs)) == 1

    def test_group_boundaries_extendable(self):
        graph = random_graph(14, 0.3, 7)
        for stop in (3, 6, 9):
            engine = SyncEngine(
                graph, lambda v: GreedyMatchingAlgorithm().build_program()
            )
            outputs = engine.run(stop_after=stop).outputs
            assert MATCHING.is_extendable(graph, outputs)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(13, 0.3, seed)
        result = run(GreedyMatchingAlgorithm(), graph)
        assert MATCHING.is_solution(graph, result.outputs)


class TestMatchingCleanup:
    def test_honors_partner_claims(self, path5):
        from repro.simulator.program import NodeProgram

        class ClaimPartner(NodeProgram):
            def setup(self, ctx):
                ctx.set_output(2)
                ctx.terminate()

        cleanup = MatchingCleanupAlgorithm()
        programs = {
            v: (ClaimPartner() if v == 1 else cleanup.build_program())
            for v in path5.nodes
        }
        outputs = SyncEngine(path5, programs).run(stop_after=2).outputs
        assert outputs[2] == 1


class TestEdgeColoringBase:
    def test_correct_predictions_one_round(self, path5):
        predictions = EDGE_COLORING.solve_sequential(path5)
        engine = SyncEngine(
            path5,
            lambda v: EdgeColoringBaseAlgorithm().build_program(),
            predictions=predictions,
        )
        result = engine.run(stop_after=2)
        assert result.rounds <= 1
        assert EDGE_COLORING.is_solution(path5, result.outputs)

    def test_matches_pure_function_on_colored_edges(self):
        for seed in range(8):
            graph = random_graph(12, 0.3, seed)
            predictions = noisy_predictions(EDGE_COLORING, graph, 0.4, seed=seed)
            pure = edge_coloring_base_partial(graph, predictions)
            engine = SyncEngine(
                graph,
                lambda v: EdgeColoringBaseAlgorithm().build_program(),
                predictions=predictions,
            )
            engine.run(stop_after=2)
            # Gather partial per-edge outputs from every node's context
            # (non-terminated nodes hold colored edges too).
            partial = {
                v: ctx.output for v, ctx in engine.contexts.items() if ctx.output
            }
            assert EDGE_COLORING.colored_edges(partial) == (
                EDGE_COLORING.colored_edges(pure)
            )

    def test_isolated_node_terminates_in_setup(self):
        result = run(
            EdgeColoringBaseAlgorithm(), empty_graph(3), predictions={}
        )
        assert result.rounds == 0


class TestGreedyEdgeColoring:
    def test_valid_everywhere(self, small_zoo):
        for graph in small_zoo:
            result = run(GreedyEdgeColoringAlgorithm(), graph)
            assert EDGE_COLORING.is_solution(graph, result.outputs), graph.name

    def test_dense_graphs(self):
        for graph in (clique(6), grid2d(4, 4), star(7), ring(9)):
            result = run(GreedyEdgeColoringAlgorithm(), graph)
            assert EDGE_COLORING.is_solution(graph, result.outputs)

    def test_round_bound_linear(self):
        """Section 8.3: at most 2s + O(1) rounds per component."""
        for seed in range(8):
            graph = random_graph(14, 0.25, seed)
            result = run(GreedyEdgeColoringAlgorithm(), graph)
            biggest = max((len(c) for c in graph.components()), default=1)
            assert result.rounds <= 2 * biggest + 3

    def test_two_hop_dominance_prevents_conflicts_on_star(self):
        # All edges share the center: only one node may act per act round.
        result = run(GreedyEdgeColoringAlgorithm(), star(8))
        assert EDGE_COLORING.is_solution(star(8), result.outputs)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(12, 0.3, seed)
        result = run(GreedyEdgeColoringAlgorithm(), graph)
        assert EDGE_COLORING.is_solution(graph, result.outputs)


class TestEdgeColoringCleanup:
    def test_completes_nodes_whose_edges_are_colored(self, path5):
        from repro.simulator.program import NodeProgram

        class PreColored(NodeProgram):
            def setup(self, ctx):
                for other in ctx.neighbors:
                    ctx.set_output_part(other, other)

            def process(self, ctx, inbox):
                pass

        # Node 1's edge is pre-colored from 2's side; cleanup should let a
        # fully-colored node terminate.
        cleanup = EdgeColoringCleanupAlgorithm()

        class OneEdge(NodeProgram):
            def setup(self, ctx):
                ctx.set_output_part(2, 2)

            def process(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.terminate()

        programs = {
            v: (OneEdge() if v == 1 else cleanup.build_program())
            for v in line(2).nodes
        }
        graph = line(2)
        outputs = SyncEngine(graph, programs).run(stop_after=2).outputs
        assert 1 in outputs
