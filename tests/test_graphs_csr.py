"""The CSR topology core: dict-adjacency agreement, caching, pickling.

Property tests assert that the :class:`~repro.graphs.csr.CSRTopology`
behind every :class:`~repro.graphs.graph.DistGraph` agrees with a plain
dict-of-sets adjacency on ``neighbors``/``degree``/``has_edge``/``edges``
for every generator family (churn-perturbed graphs included), that derived
graphs never see stale caches (the subgraph-of-a-subgraph regression), and
that CSR-backed graphs survive pickling — the process-pool sweep backend
ships them between interpreters.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CSRTopology,
    DistGraph,
    caterpillar,
    clique,
    complete_bipartite,
    complete_kary_tree,
    empty_graph,
    ensure_topology,
    erdos_renyi,
    grid2d,
    hypercube,
    line,
    path_forest,
    perturb_edges,
    perturb_nodes,
    ring,
    star,
    torus,
    wheel_fk,
)

#: One representative instantiation per generator in
#: ``repro.graphs.generators`` (the satellite demands full coverage).
GENERATOR_CASES = [
    ("empty", lambda: empty_graph(7)),
    ("line", lambda: line(9)),
    ("ring", lambda: ring(8)),
    ("star", lambda: star(6)),
    ("clique", lambda: clique(6)),
    ("complete_bipartite", lambda: complete_bipartite(3, 4)),
    ("grid2d", lambda: grid2d(3, 4)),
    ("wheel_fk", lambda: wheel_fk(4)),
    ("path_forest", lambda: path_forest(3, 4)),
    ("hypercube", lambda: hypercube(3)),
    ("torus", lambda: torus(3, 4)),
    ("complete_kary_tree", lambda: complete_kary_tree(2, 3)),
    ("caterpillar", lambda: caterpillar(4, 2)),
]


def dict_adjacency(graph):
    """An independent dict-of-sets adjacency built from the edge list."""
    adjacency = {node: set() for node in graph.nodes}
    for u, v in graph.edges():
        adjacency[u].add(v)
        adjacency[v].add(u)
    return adjacency


def assert_csr_matches_dict(graph):
    """The full agreement web between the CSR view, the dict adjacency and
    the DistGraph accessors.

    ``edges()``, ``neighbor_ids()`` and ``has_edge()`` read the same CSR
    arrays through three different access paths (above-diagonal streaming,
    row slicing, bisection), so mutual agreement plus the dict round-trip
    pins all of them.
    """
    csr = graph.csr
    adjacency = dict_adjacency(graph)

    assert csr.n == graph.n == len(adjacency)
    assert csr.ids == tuple(sorted(adjacency))

    total_degree = 0
    for node, expected in adjacency.items():
        row = csr.neighbor_ids(node)
        assert list(row) == sorted(expected), node
        assert set(row) == graph.neighbors(node) == expected
        assert csr.degree(node) == graph.degree(node) == len(expected)
        total_degree += len(expected)
    assert csr.m == graph.num_edges == total_degree // 2

    edges = csr.edges()
    assert list(edges) == sorted(edges)
    assert len(set(edges)) == len(edges)
    assert all(u < v for u, v in edges)
    assert graph.edges() == list(edges)

    nodes = list(graph.nodes)
    for u in nodes:
        assert not csr.has_edge(u, u)
        for v in nodes:
            expected = v in adjacency[u]
            assert csr.has_edge(u, v) == expected, (u, v)
            assert graph.has_edge(u, v) == expected, (u, v)

    degrees = [len(neighbors) for neighbors in adjacency.values()]
    assert csr.max_degree == graph.delta == (max(degrees) if degrees else 0)
    assert list(csr.degrees()) == [
        len(adjacency[node]) for node in sorted(adjacency)
    ]

    # Rebuilding the topology from the dict adjacency is array-identical.
    rebuilt = CSRTopology.from_adjacency(adjacency)
    assert rebuilt.ids == csr.ids
    assert rebuilt.indptr == csr.indptr
    assert rebuilt.indices == csr.indices


class TestCSRAgainstDictAdjacency:
    @pytest.mark.parametrize(
        "name,build", GENERATOR_CASES, ids=[name for name, _ in GENERATOR_CASES]
    )
    def test_every_generator_family(self, name, build):
        assert_csr_matches_dict(build())

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_and_churned_graphs(self, seed):
        """Random graphs and their churn-perturbed derivatives stay
        CSR/dict-consistent — churn rebuilds topology from scratch."""
        rng = random.Random(f"{seed}:csr-property")
        base = erdos_renyi(rng.randint(2, 16), rng.choice([0.1, 0.3, 0.7]), seed=seed)
        assert_csr_matches_dict(base)
        churned_edges = perturb_edges(
            base, add=rng.randint(0, 4), remove=rng.randint(0, 4), seed=seed
        )
        assert_csr_matches_dict(churned_edges)
        churned_nodes = perturb_nodes(
            base,
            remove=rng.randint(0, min(3, base.n - 1)) if base.n > 1 else 0,
            add=rng.randint(0, 3),
            seed=seed,
        )
        assert_csr_matches_dict(churned_nodes)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_generator_grid_under_fuzzed_churn(self, seed):
        rng = random.Random(f"{seed}:grid-churn")
        grid = grid2d(rng.randint(2, 5), rng.randint(2, 5))
        churned = perturb_edges(grid, add=rng.randint(0, 5), seed=seed)
        assert_csr_matches_dict(churned)


class TestDerivedGraphCaches:
    def test_subgraph_of_subgraph_reports_consistent_counts(self):
        """Regression: each derived level owns fresh topology/caches, so a
        subgraph of a subgraph reports n/m/max_degree recomputed from its
        own twice-filtered adjacency — never the parent's cached values."""
        base = grid2d(4, 4)
        # Warm every cache on the base before deriving.
        base_edges = base.edges()
        assert base.delta == 4

        level1 = base.subgraph([n for n in base.nodes if n != base.nodes[0]])
        level2 = level1.subgraph(
            [n for n in level1.nodes if n not in set(level1.nodes[:3])]
        )

        for graph in (level1, level2):
            adjacency = dict_adjacency(graph)
            degrees = [len(v) for v in adjacency.values()]
            assert graph.n == len(adjacency)
            assert graph.num_edges == sum(degrees) // 2
            assert graph.delta == (max(degrees) if degrees else 0)
            assert_csr_matches_dict(graph)

        # The parent's cached views are untouched by derivation.
        assert base.edges() == base_edges
        assert base.n == 16 and base.delta == 4
        assert level1.n == 15
        assert level2.n == 12
        assert level2.num_edges < level1.num_edges < base.num_edges

    def test_with_attrs_shares_topology(self):
        base = ring(6)
        derived = base.with_attrs({1: {"mark": True}})
        assert derived.csr is base.csr
        assert derived.node_attrs(1) == {"mark": True}
        assert derived.edges() == base.edges()

    def test_subgraph_unknown_node_raises(self):
        with pytest.raises(ValueError, match="unknown nodes"):
            line(4).subgraph([1, 99])


class TestCSRPickling:
    def test_topology_roundtrip(self):
        graph = torus(3, 3)
        csr = graph.csr
        _ = csr.index_of  # warm the lazy index before shipping
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.ids == csr.ids
        assert clone.indptr == csr.indptr
        assert clone.indices == csr.indices
        assert clone.edges() == csr.edges()
        assert clone.index_of == csr.index_of  # lazily rebuilt
        assert clone.max_degree == csr.max_degree

    def test_distgraph_roundtrip(self):
        graph = grid2d(3, 3).with_attrs({1: {"pinned": True}})
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.nodes == graph.nodes
        assert clone.edges() == graph.edges()
        assert clone.delta == graph.delta
        assert clone.node_attrs(1) == graph.node_attrs(1)
        assert clone.node_attrs(1)["pinned"] is True
        assert_csr_matches_dict(clone)

    def test_ensure_topology_on_foreign_graph(self):
        """Non-DistGraph graph objects get an equivalent CSR built on
        demand (the engine's escape hatch for duck-typed graphs)."""

        class Plain:
            nodes = (1, 2, 3)

            def neighbors(self, node):
                return {1: {2}, 2: {1, 3}, 3: {2}}[node]

        topo = ensure_topology(Plain())
        assert topo.ids == (1, 2, 3)
        assert topo.edges() == ((1, 2), (2, 3))
        # DistGraph inputs reuse the existing topology, no rebuild.
        graph = line(3)
        assert ensure_topology(graph) is graph.csr
