"""The hedged (trade-off) template works for every problem's components.

The HedgedConsecutiveTemplate is problem-agnostic: B/U/C/R for matching,
vertex coloring and edge coloring slot in exactly like MIS.  This matrix
pins that generality.
"""

import pytest

from repro import HedgedConsecutiveTemplate, run
from repro.algorithms.coloring import (
    LinialColoringAlgorithm,
    PaletteGreedyColoringAlgorithm,
    VertexColoringInitializationAlgorithm,
)
from repro.algorithms.edge_coloring import (
    EdgeColoringBaseAlgorithm,
    EdgeColoringCleanupAlgorithm,
    GreedyEdgeColoringAlgorithm,
    LineGraphEdgeColoringAlgorithm,
)
from repro.algorithms.matching import (
    ColoredMatchingAlgorithm,
    GreedyMatchingAlgorithm,
    MatchingCleanupAlgorithm,
    MatchingInitializationAlgorithm,
)
from repro.core import FunctionalAlgorithm
from repro.graphs import erdos_renyi, line, sorted_path_ids
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import EDGE_COLORING, MATCHING, VERTEX_COLORING
from repro.simulator.program import NodeProgram


def _noop_cleanup():
    return FunctionalAlgorithm(
        "noop-cleanup", NodeProgram, round_bound=lambda n, delta, d: 1
    )


def matching_hedged(trust):
    return HedgedConsecutiveTemplate(
        MatchingInitializationAlgorithm(),
        GreedyMatchingAlgorithm(),
        MatchingCleanupAlgorithm(),
        ColoredMatchingAlgorithm(),
        trust=trust,
    )


def coloring_hedged(trust):
    return HedgedConsecutiveTemplate(
        VertexColoringInitializationAlgorithm(),
        PaletteGreedyColoringAlgorithm(),
        _noop_cleanup(),
        LinialColoringAlgorithm(),
        trust=trust,
    )


def edge_hedged(trust):
    return HedgedConsecutiveTemplate(
        EdgeColoringBaseAlgorithm(),
        GreedyEdgeColoringAlgorithm(),
        EdgeColoringCleanupAlgorithm(),
        LineGraphEdgeColoringAlgorithm(),
        trust=trust,
    )


CASES = [
    ("matching", MATCHING, matching_hedged, 2),
    ("vertex-coloring", VERTEX_COLORING, coloring_hedged, 2),
    ("edge-coloring", EDGE_COLORING, edge_hedged, 1),
]


@pytest.mark.parametrize(
    "name,problem,factory,consistency",
    CASES,
    ids=[case[0] for case in CASES],
)
class TestHedgedMatrix:
    def test_consistency_across_trust_levels(
        self, name, problem, factory, consistency
    ):
        graph = erdos_renyi(20, 0.2, seed=13)
        predictions = perfect_predictions(problem, graph, seed=1)
        for trust in (0.0, 1.0):
            result = run(factory(trust), graph, predictions, max_rounds=50000)
            assert problem.is_solution(graph, result.outputs)
            assert result.rounds <= consistency, (name, trust)

    def test_valid_under_noise(self, name, problem, factory, consistency):
        graph = erdos_renyi(20, 0.2, seed=13)
        for trust in (0.0, 0.5):
            for rate in (0.4, 1.0):
                predictions = noisy_predictions(problem, graph, rate, seed=2)
                result = run(
                    factory(trust), graph, predictions, max_rounds=50000
                )
                assert problem.is_solution(graph, result.outputs), (
                    name,
                    trust,
                    rate,
                )

    def test_valid_on_sorted_lines(self, name, problem, factory, consistency):
        graph = sorted_path_ids(line(24))
        predictions = noisy_predictions(problem, graph, 0.7, seed=3)
        result = run(factory(0.25), graph, predictions, max_rounds=50000)
        assert problem.is_solution(graph, result.outputs), name
