"""Tests for the core MIS algorithms: base, initialization, greedy,
clean-up, Luby (Sections 4, 6, 10)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import (
    GreedyMISAlgorithm,
    LubyMISAlgorithm,
    MISBaseAlgorithm,
    MISCleanupAlgorithm,
    MISInitializationAlgorithm,
)
from repro.core import run
from repro.errors import mis_base_partial, mu1, mu2
from repro.graphs import clique, erdos_renyi, line, ring, sorted_path_ids, star
from repro.predictions import perfect_predictions
from repro.problems import MIS
from repro.simulator import SyncEngine, TraceRecorder

from tests.conftest import random_graph, random_predictions_bits


def partial_run(algorithm, graph, predictions, rounds):
    """Run a bounded component standalone and return the partial outputs."""
    engine = SyncEngine(
        graph, lambda v: algorithm.build_program(), predictions=predictions
    )
    return engine.run(stop_after=rounds).outputs


class TestMISBaseAlgorithm:
    def test_consistency_three_rounds_exact(self, path5):
        """With correct predictions the base algorithm is the whole run:
        the set terminates in round 2, its neighbors in round 3."""
        predictions = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        trace = TraceRecorder()
        engine = SyncEngine(
            line(5),
            lambda v: MISBaseAlgorithm().build_program(),
            predictions=predictions,
            trace=trace,
        )
        result = engine.run()
        assert result.rounds == 3
        rounds = trace.termination_rounds()
        assert rounds[1] == rounds[3] == rounds[5] == 2
        assert rounds[2] == rounds[4] == 3

    def test_matches_pure_base_partial(self):
        for seed in range(10):
            graph = random_graph(14, 0.3, seed)
            predictions = random_predictions_bits(graph, seed)
            outputs = partial_run(MISBaseAlgorithm(), graph, predictions, 3)
            assert outputs == mis_base_partial(graph, predictions)

    def test_is_pruning_algorithm(self):
        graph = random_graph(16, 0.25, 4)
        predictions = random_predictions_bits(graph, 11)
        outputs = partial_run(MISBaseAlgorithm(), graph, predictions, 3)
        assert all(outputs[v] == predictions[v] for v in outputs)


class TestMISInitializationAlgorithm:
    def test_consistency_three_rounds(self, path5):
        predictions = {1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        outputs = partial_run(MISInitializationAlgorithm(), path5, predictions, 3)
        assert outputs == predictions

    def test_contains_base_partial(self):
        """A reasonable initialization algorithm's partial solution must
        contain the base algorithm's (Section 4)."""
        for seed in range(12):
            graph = random_graph(14, 0.3, seed)
            predictions = random_predictions_bits(graph, seed + 3)
            base = mis_base_partial(graph, predictions)
            init = partial_run(
                MISInitializationAlgorithm(), graph, predictions, 3
            )
            assert set(base).issubset(set(init))
            assert all(init[v] == base[v] for v in base)

    def test_breaks_ties_by_identifier(self):
        """All-ones predictions: the initialization algorithm still
        extracts an independent set by id tie-breaking, the base does not."""
        graph = line(5)
        predictions = {v: 1 for v in graph.nodes}
        base = partial_run(MISBaseAlgorithm(), graph, predictions, 3)
        init = partial_run(MISInitializationAlgorithm(), graph, predictions, 3)
        assert base == {}
        assert init  # at least the local maxima output
        assert init[5] == 1

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_always_extendable(self, seed):
        graph = random_graph(13, 0.3, seed)
        predictions = random_predictions_bits(graph, seed + 1)
        outputs = partial_run(MISInitializationAlgorithm(), graph, predictions, 3)
        assert MIS.is_extendable(graph, outputs)


class TestGreedyMIS:
    def test_produces_valid_mis(self, small_zoo):
        for graph in small_zoo:
            result = run(GreedyMISAlgorithm(), graph)
            assert MIS.is_solution(graph, result.outputs), graph.name

    def test_lemma1_round_bound(self):
        """Lemma 1: rounds ≤ max component size (μ₁)."""
        for seed in range(15):
            graph = random_graph(18, 0.2, seed)
            result = run(GreedyMISAlgorithm(), graph)
            bound = max(mu1(graph, c) for c in graph.components())
            assert result.rounds <= bound

    def test_lemma2_round_bound(self):
        """Lemma 2: rounds ≤ max μ₂ + 1."""
        for seed in range(15):
            graph = random_graph(16, 0.3, seed)
            result = run(GreedyMISAlgorithm(), graph)
            bound = max(mu2(graph, c) for c in graph.components()) + 1
            assert result.rounds <= bound

    def test_clique_finishes_fast(self):
        # μ₂(clique) = 2, so at most 3 rounds regardless of size.
        for n in (5, 10, 20):
            result = run(GreedyMISAlgorithm(), clique(n))
            assert result.rounds <= 3

    def test_star_finishes_fast(self):
        result = run(GreedyMISAlgorithm(), star(20))
        assert result.rounds <= 3

    def test_sorted_line_is_worst_case(self):
        """Ids increasing along a path: one node joins every other round,
        realizing the Ω(n) lower bound of Lemma 5."""
        graph = sorted_path_ids(line(20))
        result = run(GreedyMISAlgorithm(), graph)
        assert result.rounds >= graph.n - 2

    def test_measure_uniformity(self):
        """Running on a subgraph costs what the subgraph costs, not the
        host graph (the defining property of Section 6)."""
        graph = sorted_path_ids(line(30))
        small = graph.subgraph(range(1, 7))
        assert run(GreedyMISAlgorithm(), small).rounds <= 6

    def test_partial_solutions_extendable_every_even_round(self):
        graph = erdos_renyi(14, 0.3, seed=6)
        for stop in (2, 4, 6):
            engine = SyncEngine(
                graph, lambda v: GreedyMISAlgorithm().build_program()
            )
            outputs = engine.run(stop_after=stop).outputs
            assert MIS.is_extendable(graph, outputs)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        graph = random_graph(15, 0.3, seed)
        result = run(GreedyMISAlgorithm(), graph)
        assert MIS.is_solution(graph, result.outputs)


class TestCleanup:
    def test_retires_dominated_nodes(self, path5):
        """A node with a 1-neighbor already on record outputs 0."""
        from repro.simulator.program import NodeProgram

        class SeedOne(NodeProgram):
            def setup(self, ctx):
                ctx.set_output(1)
                ctx.terminate()

        cleanup = MISCleanupAlgorithm()
        programs = {
            v: (SeedOne() if v == 3 else cleanup.build_program())
            for v in path5.nodes
        }
        engine = SyncEngine(path5, programs)
        outputs = engine.run(stop_after=2).outputs
        assert outputs[3] == 1
        assert outputs[2] == 0 and outputs[4] == 0
        assert 1 not in outputs and 5 not in outputs

    def test_noop_without_ones(self, path5):
        engine = SyncEngine(
            path5, lambda v: MISCleanupAlgorithm().build_program()
        )
        assert engine.run(stop_after=2).outputs == {}


class TestLuby:
    def test_produces_valid_mis(self):
        for seed in range(6):
            graph = erdos_renyi(25, 0.2, seed=seed)
            result = run(LubyMISAlgorithm(), graph, seed=seed)
            assert MIS.is_solution(graph, result.outputs)

    def test_logarithmic_scaling(self):
        """Expected O(log n) phases: rounds grow far slower than n."""
        small = run(LubyMISAlgorithm(), erdos_renyi(30, 0.2, seed=1), seed=1)
        large = run(LubyMISAlgorithm(), erdos_renyi(300, 0.02, seed=1), seed=1)
        assert large.rounds <= 4 * max(small.rounds, 8)

    def test_ring_fast(self):
        result = run(LubyMISAlgorithm(), ring(60), seed=2)
        assert result.rounds <= 30  # far below the 60-round greedy worst case
