"""Tests for the synchronous engine (round semantics, announcements, faults)."""

import pytest

from repro.faults import FaultPlan
from repro.graphs import line, ring, star
from repro.simulator import (
    NodeProgram,
    RoundLimitExceeded,
    SyncEngine,
    TraceRecorder,
)
from repro.simulator.context import OutputAlreadySet
from repro.simulator.engine import BandwidthExceeded
from repro.simulator.models import strict_congest
from repro.simulator.program import IdleProgram


class _Echo(NodeProgram):
    """Sends its id every round; terminates upon first inbox."""

    def compose(self, ctx):
        return {other: ctx.node_id for other in ctx.active_neighbors}

    def process(self, ctx, inbox):
        if inbox:
            ctx.set_output(sorted(inbox.values()))
            ctx.terminate()


class _TerminateAtSetup(NodeProgram):
    def setup(self, ctx):
        ctx.set_output("early")
        ctx.terminate()


class _Stubborn(NodeProgram):
    """Never terminates."""


class TestBasicExecution:
    def test_idle_program_terminates_in_round_zero(self):
        result = SyncEngine(line(3), lambda v: IdleProgram("x")).run()
        assert result.rounds == 0
        assert all(
            record.termination_round == 0 for record in result.records.values()
        )
        assert result.outputs == {1: "x", 2: "x", 3: "x"}

    def test_setup_termination_counts_as_round_zero(self):
        result = SyncEngine(line(2), lambda v: _TerminateAtSetup()).run()
        assert result.rounds == 0

    def test_echo_terminates_after_one_round(self):
        result = SyncEngine(line(3), lambda v: _Echo()).run()
        assert result.rounds == 1
        assert result.outputs[2] == [1, 3]

    def test_round_limit_raises(self):
        with pytest.raises(RoundLimitExceeded):
            SyncEngine(line(3), lambda v: _Stubborn(), max_rounds=5).run()

    def test_send_to_non_neighbor_raises(self):
        class Bad(NodeProgram):
            def compose(self, ctx):
                return {999: "oops"}

        with pytest.raises(ValueError, match="non-neighbor"):
            SyncEngine(line(3), lambda v: Bad()).run()

    def test_all_terminated_flag(self):
        result = SyncEngine(line(4), lambda v: _Echo()).run()
        assert result.all_terminated


class TestMessageTiming:
    def test_message_composed_same_round_is_received(self):
        """A node's final-round message is delivered (notify-then-terminate)."""
        received = {}

        class OneShot(NodeProgram):
            def compose(self, ctx):
                if ctx.round == 1 and ctx.node_id == 1:
                    return {2: "bye"}
                return {}

            def process(self, ctx, inbox):
                if ctx.node_id == 1:
                    ctx.set_output(None)
                    ctx.terminate()
                elif inbox:
                    received.update(inbox)
                    ctx.set_output(None)
                    ctx.terminate()

        SyncEngine(line(2), lambda v: OneShot()).run()
        assert received == {1: "bye"}

    def test_message_to_terminated_node_is_dropped(self):
        class Probe(NodeProgram):
            def compose(self, ctx):
                if ctx.node_id == 2:
                    return {1: "late"}
                return {}

            def process(self, ctx, inbox):
                if ctx.node_id == 1:
                    ctx.set_output("gone")
                    ctx.terminate()
                elif ctx.round == 3:
                    ctx.set_output("done")
                    ctx.terminate()

        result = SyncEngine(line(2), lambda v: Probe()).run()
        assert result.outputs[1] == "gone"

    def test_neighbor_output_visible_next_round(self):
        seen_at = {}

        class Watcher(NodeProgram):
            def process(self, ctx, inbox):
                if ctx.node_id == 1 and ctx.round == 1:
                    ctx.set_output(42)
                    ctx.terminate()
                elif ctx.node_id == 2:
                    if 1 in ctx.neighbor_outputs and 2 not in seen_at:
                        seen_at[2] = ctx.round
                        ctx.set_output(ctx.neighbor_outputs[1])
                        ctx.terminate()

        result = SyncEngine(line(2), lambda v: Watcher()).run()
        assert seen_at[2] == 2
        assert result.outputs[2] == 42

    def test_active_neighbors_shrink_after_termination(self):
        sizes = {}

        class Shrink(NodeProgram):
            def process(self, ctx, inbox):
                if ctx.node_id == 1 and ctx.round == 1:
                    ctx.set_output(0)
                    ctx.terminate()
                if ctx.node_id == 2:
                    sizes[ctx.round] = len(ctx.active_neighbors)
                    if ctx.round == 2:
                        ctx.set_output(0)
                        ctx.terminate()
                if ctx.node_id == 3 and ctx.round == 3:
                    ctx.set_output(0)
                    ctx.terminate()

        SyncEngine(line(3), lambda v: Shrink()).run()
        assert sizes[1] == 2
        assert sizes[2] == 1


class TestOutputs:
    def test_double_output_raises(self):
        class Doubler(NodeProgram):
            def process(self, ctx, inbox):
                ctx.set_output(1)
                ctx.set_output(2)

        with pytest.raises(OutputAlreadySet):
            SyncEngine(line(2), lambda v: Doubler()).run()

    def test_output_parts_collected_as_dict(self):
        class Parts(NodeProgram):
            def process(self, ctx, inbox):
                for other in ctx.neighbors:
                    ctx.set_output_part(other, other * 10)
                ctx.terminate()

        result = SyncEngine(line(3), lambda v: Parts()).run()
        assert result.outputs[2] == {1: 10, 3: 30}

    def test_mixing_scalar_and_parts_raises(self):
        class Mixed(NodeProgram):
            def process(self, ctx, inbox):
                ctx.set_output_part("a", 1)
                ctx.set_output(2)

        with pytest.raises(OutputAlreadySet):
            SyncEngine(line(2), lambda v: Mixed()).run()


class TestMetricsAndModels:
    def test_message_counting(self):
        result = SyncEngine(line(3), lambda v: _Echo()).run()
        # Round 1: node1->2, node2->1, node2->3, node3->2.
        assert result.message_count == 4
        assert result.total_bits >= 4

    def test_strict_congest_raises_on_wide_message(self):
        class Wide(NodeProgram):
            def compose(self, ctx):
                return {other: "x" * 5000 for other in ctx.active_neighbors}

            def process(self, ctx, inbox):
                ctx.set_output(0)
                ctx.terminate()

        with pytest.raises(BandwidthExceeded):
            SyncEngine(
                line(3), lambda v: Wide(), model=strict_congest(2)
            ).run()

    def test_non_strict_model_records_violations(self):
        class Wide(NodeProgram):
            def compose(self, ctx):
                return {other: "x" * 5000 for other in ctx.active_neighbors}

            def process(self, ctx, inbox):
                ctx.set_output(0)
                ctx.terminate()

        from repro.simulator.models import CONGEST

        result = SyncEngine(line(3), lambda v: Wide(), model=CONGEST).run()
        assert result.bandwidth_violations > 0

    def test_congest_compatibility_check(self):
        result = SyncEngine(line(3), lambda v: _Echo()).run()
        assert result.congest_compatible(3)


class TestFaultInjection:
    def test_crashed_node_produces_no_output(self):
        class StopOnCrash(NodeProgram):
            def process(self, ctx, inbox):
                if ctx.crashed_neighbors:
                    ctx.set_output("survivor")
                    ctx.terminate()

        result = SyncEngine(
            star(4),
            lambda v: _Stubborn() if v == 1 else StopOnCrash(),
            faults=FaultPlan.crash_stop({1: 1}),
            max_rounds=10,
        ).run()
        assert result.records[1].crashed
        assert 1 not in result.outputs
        assert result.outputs[2] == "survivor"

    def test_neighbors_observe_crash(self):
        crash_views = {}

        class Observer(NodeProgram):
            def process(self, ctx, inbox):
                if ctx.round == 3:
                    crash_views[ctx.node_id] = set(ctx.crashed_neighbors)
                    ctx.set_output(0)
                    ctx.terminate()

        SyncEngine(
            line(3),
            lambda v: Observer(),
            faults=FaultPlan.crash_stop({2: 1}),
        ).run()
        assert crash_views[1] == {2}
        assert crash_views[3] == {2}


class TestTrace:
    def test_trace_records_terminations(self):
        trace = TraceRecorder()
        SyncEngine(line(3), lambda v: _Echo(), trace=trace).run()
        assert trace.termination_rounds() == {1: 1, 2: 1, 3: 1}

    def test_trace_records_sends(self):
        trace = TraceRecorder()
        SyncEngine(line(2), lambda v: _Echo(), trace=trace).run()
        assert len(trace.sends_in_round(1)) == 2
        assert trace.messages_between(1, 2)[0].data["payload"] == 1

    def test_first_round_of(self):
        trace = TraceRecorder()
        SyncEngine(ring(4), lambda v: _Echo(), trace=trace).run()
        assert trace.first_round_of("terminate") == 1


class TestDeterminism:
    def test_runs_are_reproducible(self):
        def run_once():
            from repro.algorithms.mis import LubyMISAlgorithm
            from repro.core import run
            from repro.graphs import erdos_renyi

            graph = erdos_renyi(30, 0.2, seed=5)
            return run(LubyMISAlgorithm(), graph, seed=11).outputs

        assert run_once() == run_once()

    def test_different_seeds_change_randomized_runs(self):
        from repro.algorithms.mis import LubyMISAlgorithm
        from repro.core import run
        from repro.graphs import erdos_renyi

        graph = erdos_renyi(40, 0.3, seed=5)
        outputs = {
            seed: run(LubyMISAlgorithm(), graph, seed=seed).outputs
            for seed in range(4)
        }
        assert len({tuple(sorted(o.items())) for o in outputs.values()}) > 1
