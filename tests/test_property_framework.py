"""Hypothesis property tests on the framework's core invariants.

These are the paper's structural invariants, checked on randomly drawn
instances and predictions:

* every template produces a verified solution for every input;
* consistency: η = 0 implies termination within the initialization bound;
* the Simple Template's Observation 7 bounds hold pointwise;
* error measures respect their orderings;
* extendability is preserved at every safe pause point of the
  measure-uniform algorithms.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import (
    ColoringMISReference,
    GreedyMISAlgorithm,
    MISInitializationAlgorithm,
)
from repro.core import ParallelTemplate, SimpleTemplate, run
from repro.errors import eta1, eta2, eta_bw
from repro.graphs import DistGraph, erdos_renyi
from repro.predictions import perfect_predictions
from repro.problems import MIS
from repro.simulator import SyncEngine


graph_params = st.tuples(
    st.integers(min_value=1, max_value=18),
    st.sampled_from([0.0, 0.1, 0.25, 0.5]),
    st.integers(min_value=0, max_value=10**6),
)

prediction_seed = st.integers(min_value=0, max_value=10**6)


def draw_instance(params, pred_seed):
    n, p, seed = params
    graph = erdos_renyi(n, p, seed=seed)
    rng = random.Random(f"{pred_seed}:bits")
    predictions = {v: rng.randint(0, 1) for v in graph.nodes}
    return graph, predictions


SIMPLE = SimpleTemplate(MISInitializationAlgorithm(), GreedyMISAlgorithm())
PARALLEL = ParallelTemplate(
    MISInitializationAlgorithm(), GreedyMISAlgorithm(), ColoringMISReference()
)


class TestSimpleTemplateProperties:
    @given(graph_params, prediction_seed)
    @settings(max_examples=60, deadline=None)
    def test_always_valid_and_eta1_bounded(self, params, pred_seed):
        graph, predictions = draw_instance(params, pred_seed)
        result = run(SIMPLE, graph, predictions)
        assert MIS.is_solution(graph, result.outputs)
        assert result.rounds <= eta1(graph, predictions) + 3

    @given(graph_params, prediction_seed)
    @settings(max_examples=40, deadline=None)
    def test_eta2_bound(self, params, pred_seed):
        graph, predictions = draw_instance(params, pred_seed)
        result = run(SIMPLE, graph, predictions)
        assert result.rounds <= eta2(graph, predictions) + 4

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_consistency(self, params):
        n, p, seed = params
        graph = erdos_renyi(n, p, seed=seed)
        predictions = perfect_predictions(MIS, graph, seed=seed)
        result = run(SIMPLE, graph, predictions)
        assert result.rounds <= 3


class TestParallelTemplateProperties:
    @given(graph_params, prediction_seed)
    @settings(max_examples=40, deadline=None)
    def test_always_valid_and_degrading(self, params, pred_seed):
        graph, predictions = draw_instance(params, pred_seed)
        result = run(PARALLEL, graph, predictions)
        assert MIS.is_solution(graph, result.outputs)
        assert result.rounds <= eta2(graph, predictions) + 5


class TestMeasureOrderings:
    @given(graph_params, prediction_seed)
    @settings(max_examples=60, deadline=None)
    def test_eta_orderings(self, params, pred_seed):
        graph, predictions = draw_instance(params, pred_seed)
        one = eta1(graph, predictions)
        assert eta2(graph, predictions) <= one
        assert eta_bw(graph, predictions) <= one

    @given(graph_params, prediction_seed)
    @settings(max_examples=40, deadline=None)
    def test_error_component_subsets_have_smaller_mu2(self, params, pred_seed):
        """μ₂ monotonicity on the instance's own error components."""
        from repro.errors import error_components, mu2

        graph, predictions = draw_instance(params, pred_seed)
        for component in error_components("mis", graph, predictions):
            sub = sorted(component)[: max(1, len(component) // 2)]
            induced = graph.subgraph(sub)
            for piece in induced.components():
                assert mu2(graph, piece) <= mu2(graph, component)


class TestExtendabilityUnderPausing:
    @given(graph_params, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_greedy_extendable_at_even_rounds(self, params, half_rounds):
        n, p, seed = params
        graph = erdos_renyi(n, p, seed=seed)
        engine = SyncEngine(
            graph, lambda v: GreedyMISAlgorithm().build_program()
        )
        outputs = engine.run(stop_after=2 * half_rounds).outputs
        assert MIS.is_extendable(graph, outputs)
