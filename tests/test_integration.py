"""Cross-cutting integration tests: every problem × template × noise level.

These are the "does the whole pipeline hold together" tests: templates
composed from each problem's components must produce verified solutions at
every prediction quality, and be consistent at η = 0.
"""

import pytest

from repro.algorithms.coloring import (
    LinialColoringAlgorithm,
    LinialColoringReference,
    PaletteGreedyColoringAlgorithm,
    VertexColoringInitializationAlgorithm,
)
from repro.algorithms.edge_coloring import (
    EdgeColoringBaseAlgorithm,
    EdgeColoringCleanupAlgorithm,
    GreedyEdgeColoringAlgorithm,
)
from repro.algorithms.matching import (
    GreedyMatchingAlgorithm,
    MatchingCleanupAlgorithm,
    MatchingInitializationAlgorithm,
)
from repro.algorithms.matching.greedy import GreedyMatchingProgram
from repro.algorithms.mis import (
    ClusteringMISReference,
    ColoringMISReference,
    GreedyMISAlgorithm,
    MISCleanupAlgorithm,
    MISInitializationAlgorithm,
)
from repro.algorithms.mis.greedy import GreedyMISProgram
from repro.core import (
    ConsecutiveTemplate,
    FunctionalAlgorithm,
    InterleavedTemplate,
    ParallelTemplate,
    SimpleTemplate,
    run,
)
from repro.graphs import connected_erdos_renyi, erdos_renyi, grid2d, line
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING

RATES = (0.0, 0.25, 0.75, 1.0)

GRAPHS = [
    line(16),
    grid2d(4, 5),
    erdos_renyi(24, 0.15, seed=11),
    connected_erdos_renyi(20, 0.1, seed=12),
]


def mis_algorithms():
    init = MISInitializationAlgorithm()
    greedy = GreedyMISAlgorithm()
    cleanup = MISCleanupAlgorithm()
    reference = FunctionalAlgorithm(
        "greedy-ref",
        GreedyMISProgram,
        round_bound=lambda n, delta, d: n + 1,
        safe_pause_interval=2,
    )
    return [
        SimpleTemplate(init, greedy),
        ConsecutiveTemplate(init, greedy, cleanup, reference),
        InterleavedTemplate(init, greedy, ClusteringMISReference()),
        ParallelTemplate(init, greedy, ColoringMISReference()),
    ]


def matching_algorithms():
    init = MatchingInitializationAlgorithm()
    greedy = GreedyMatchingAlgorithm()
    cleanup = MatchingCleanupAlgorithm()
    reference = FunctionalAlgorithm(
        "matching-ref",
        GreedyMatchingProgram,
        round_bound=lambda n, delta, d: 3 * (max(n, 2) // 2) + 3,
        safe_pause_interval=3,
    )
    return [
        SimpleTemplate(init, greedy),
        ConsecutiveTemplate(init, greedy, cleanup, reference),
    ]


def coloring_algorithms():
    init = VertexColoringInitializationAlgorithm()
    greedy = PaletteGreedyColoringAlgorithm()
    noop_cleanup = FunctionalAlgorithm(
        "noop",
        lambda: __import__(
            "repro.simulator.program", fromlist=["NodeProgram"]
        ).NodeProgram(),
        round_bound=lambda n, delta, d: 1,
    )
    return [
        SimpleTemplate(init, greedy),
        ConsecutiveTemplate(init, greedy, noop_cleanup, LinialColoringAlgorithm()),
        ParallelTemplate(init, greedy, LinialColoringReference()),
    ]


def edge_coloring_algorithms():
    init = EdgeColoringBaseAlgorithm()
    greedy = GreedyEdgeColoringAlgorithm()
    cleanup = EdgeColoringCleanupAlgorithm()
    from repro.algorithms.edge_coloring.greedy import GreedyEdgeColoringProgram

    reference = FunctionalAlgorithm(
        "edge-ref",
        GreedyEdgeColoringProgram,
        round_bound=lambda n, delta, d: 2 * n + 3,
        safe_pause_interval=2,
    )
    return [
        SimpleTemplate(init, greedy),
        ConsecutiveTemplate(init, greedy, cleanup, reference),
    ]


CASES = (
    [(MIS, alg) for alg in mis_algorithms()]
    + [(MATCHING, alg) for alg in matching_algorithms()]
    + [(VERTEX_COLORING, alg) for alg in coloring_algorithms()]
    + [(EDGE_COLORING, alg) for alg in edge_coloring_algorithms()]
)


@pytest.mark.parametrize(
    "problem,algorithm", CASES, ids=[f"{p.name}/{a.name}" for p, a in CASES]
)
class TestEveryTemplateEveryProblem:
    def test_valid_at_all_noise_levels(self, problem, algorithm):
        for graph in GRAPHS:
            for rate in RATES:
                predictions = noisy_predictions(problem, graph, rate, seed=7)
                result = run(
                    algorithm, graph, predictions, max_rounds=20000
                )
                violations = problem.verify_solution(graph, result.outputs)
                assert not violations, (
                    graph.name,
                    rate,
                    violations[:3],
                )

    def test_consistent_on_perfect_predictions(self, problem, algorithm):
        consistency = algorithm.initialization.round_bound(0, 0, 0)
        for graph in GRAPHS:
            predictions = perfect_predictions(problem, graph, seed=3)
            result = run(algorithm, graph, predictions, max_rounds=20000)
            assert problem.is_solution(graph, result.outputs)
            assert result.rounds <= consistency, (graph.name, result.rounds)
