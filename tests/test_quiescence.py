"""Quiescence-aware scheduling: the wake-set engine paths.

``run(..., schedule="quiescent")`` skips nodes that declare
``quiescent_when_idle`` in rounds where they cannot observably act; the
tests here pin the two contracts that make the optimisation safe:

* observational identity — outputs, round counts, message counts, bit
  accounting and the full structured event stream match the eager
  schedule exactly, across algorithms, templates, graphs and fault
  plans (see also the three-way differential in ``test_engine_fuzz``);
* loud failure — a program that claims quiescence but acts from an idle
  state raises :class:`QuiescenceViolation` under
  ``schedule="quiescent-debug"``.

The satellite fixes of the same change ride along: the lazy per-node
``rng``, the fast-mode replay accounting fix, wake-API validation, the
``estimate_bits`` memoization and the profile's scheduled-vs-active
columns.
"""

import random

import pytest

from repro.algorithms.coloring import PaletteGreedyColoringAlgorithm
from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import (
    GreedyMISAlgorithm,
    MISInitializationAlgorithm,
)
from repro.core import ExecutionPolicy, RunConfig, SimpleTemplate, run
from repro.faults.plan import CrashFault, FaultPlan, MessageAdversary
from repro.graphs import erdos_renyi, grid2d, line, star
from repro.graphs.identifiers import sorted_path_ids
from repro.obs import MemoryEventSink
from repro.predictions import perfect_predictions
from repro.problems import MIS
from repro.simulator import (
    NodeContext,
    NodeProgram,
    QuiescenceViolation,
    SyncEngine,
    estimate_bits,
)

MIS_ALG = GreedyMISAlgorithm()
MATCHING_ALG = GreedyMatchingAlgorithm()
COLORING_ALG = PaletteGreedyColoringAlgorithm()


def _run_with_events(algorithm, graph, schedule, predictions=None, **kwargs):
    sink = MemoryEventSink()
    result = run(
        algorithm,
        graph,
        predictions,
        policy=ExecutionPolicy(schedule=schedule),
        sinks=[sink],
        on_round_limit="partial",
        **kwargs,
    )
    return result, sink.events


def assert_observationally_identical(algorithm, graph, predictions=None, **kwargs):
    """Eager, quiescent and quiescent-debug agree on every observable."""
    eager, eager_events = _run_with_events(
        algorithm, graph, "eager", predictions, **kwargs
    )
    for schedule in ("quiescent", "quiescent-debug"):
        other, other_events = _run_with_events(
            algorithm, graph, schedule, predictions, **kwargs
        )
        label = f"{algorithm.name}/{graph.name}/{schedule}"
        assert other.outputs == eager.outputs, label
        assert other.rounds == eager.rounds, label
        assert other.rounds_executed == eager.rounds_executed, label
        assert other.message_count == eager.message_count, label
        assert other.total_bits == eager.total_bits, label
        assert other.max_message_bits == eager.max_message_bits, label
        assert other_events == eager_events, label


class TestObservationalIdentity:
    @pytest.mark.parametrize(
        "algorithm", [MIS_ALG, MATCHING_ALG, COLORING_ALG], ids=lambda a: a.name
    )
    def test_structured_graphs(self, algorithm):
        for graph in (
            sorted_path_ids(line(17)),
            grid2d(4, 5),
            star(9),
            erdos_renyi(20, 0.2, seed=3),
        ):
            assert_observationally_identical(algorithm, graph)

    @pytest.mark.parametrize(
        "algorithm", [MIS_ALG, MATCHING_ALG, COLORING_ALG], ids=lambda a: a.name
    )
    def test_under_faults(self, algorithm):
        graph = erdos_renyi(16, 0.3, seed=7)
        plan = FaultPlan(
            crashes=(CrashFault(3, 2), CrashFault(9, 3, recover_after=2)),
            messages=MessageAdversary(
                drop_rate=0.2, corrupt_rate=0.1, duplicate_rate=0.2
            ),
            seed=11,
        )
        assert_observationally_identical(
            algorithm, graph, faults=plan, seed=5, max_rounds=80
        )

    def test_template_with_predictions(self):
        graph = erdos_renyi(15, 0.25, seed=2)
        algorithm = SimpleTemplate(MISInitializationAlgorithm(), MIS_ALG)
        predictions = perfect_predictions(MIS, graph)
        assert_observationally_identical(algorithm, graph, predictions)

    def test_template_with_crash_recovery(self):
        # Regression: a crash-recovered node restarts with a fresh
        # SlicedProgram mid-run; its slice clock must start at the
        # recovery round, not owe a catch-up gap back to round 1.
        graph = erdos_renyi(14, 0.3, seed=6)
        algorithm = SimpleTemplate(MISInitializationAlgorithm(), MIS_ALG)
        predictions = perfect_predictions(MIS, graph)
        plan = FaultPlan(
            crashes=(
                CrashFault(2, 1, recover_after=3),
                CrashFault(8, 2, recover_after=1),
            ),
            seed=4,
        )
        assert_observationally_identical(
            algorithm, graph, predictions, faults=plan, max_rounds=60
        )

    def test_profiled_quiescent_matches(self):
        graph = sorted_path_ids(line(40))
        eager = run(MIS_ALG, graph)
        profiled = run(MIS_ALG, graph, profile=True,
                       policy=ExecutionPolicy(schedule="quiescent"))
        assert profiled.outputs == eager.outputs
        assert profiled.rounds == eager.rounds
        assert profiled.message_count == eager.message_count
        summary = profiled.profile.summary()
        # The frontier workload is the point: far fewer node-rounds run.
        assert summary["scheduled_rounds"] < summary["node_rounds"] / 3
        assert "sched" in profiled.profile.table().splitlines()[0]

    def test_eager_profile_scheduled_defaults_to_active(self):
        graph = line(8)
        result = run(MIS_ALG, graph, profile=True)
        for sample in result.profile.samples:
            assert sample.scheduled == sample.active
        assert result.profile.summary()["scheduled_share"] == 1.0


class _ChattyLiar(NodeProgram):
    """Claims quiescence, but node 1 sends in every round (idle or not).

    Its silent peers never write back, so from round 2 on node 1 has no
    wake reason — a send from that state breaks the idle contract.
    """

    quiescent_when_idle = True

    def __init__(self, node):
        self._chatty = node == 1

    def compose(self, ctx):
        if self._chatty:
            return {other: "spam" for other in ctx.active_neighbors}
        return {}

    def process(self, ctx, inbox):
        if ctx.round >= 6:
            ctx.set_output(0)
            ctx.terminate()


class _SilentLiar(NodeProgram):
    """Claims quiescence but terminates out of thin air at round 3."""

    quiescent_when_idle = True

    def compose(self, ctx):
        return {}

    def process(self, ctx, inbox):
        if ctx.round >= 3:
            ctx.set_output(0)
            ctx.terminate()


class TestQuiescenceViolation:
    def test_idle_send_is_rejected(self):
        engine = SyncEngine(
            line(6), lambda node: _ChattyLiar(node), schedule="quiescent-debug"
        )
        with pytest.raises(QuiescenceViolation, match="non-empty outbox"):
            engine.run()

    def test_idle_termination_is_rejected(self):
        engine = SyncEngine(
            line(6), lambda node: _SilentLiar(), schedule="quiescent-debug"
        )
        with pytest.raises(QuiescenceViolation):
            engine.run()

    def test_honest_programs_pass_debug(self):
        graph = sorted_path_ids(line(12))
        result = run(MIS_ALG, graph,
                     policy=ExecutionPolicy(schedule="quiescent-debug"))
        assert result.all_terminated


class TestScheduleConfig:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            ExecutionPolicy(schedule="lazy")
        with pytest.raises(ValueError, match="schedule"):
            SyncEngine(line(3), lambda node: _SilentLiar(), schedule="lazy")

    def test_debug_excludes_profiling(self):
        with pytest.raises(ValueError, match="profil"):
            run(MIS_ALG, line(4), profile=True,
                policy=ExecutionPolicy(schedule="quiescent-debug"))

    def test_round_limit_partial_still_works(self):
        for schedule in ("eager", "quiescent"):
            result = run(
                _SleeperAlgorithm(),
                line(5),
                policy=ExecutionPolicy(schedule=schedule),
                max_rounds=7,
                on_round_limit="partial",
            )
            assert result.rounds_executed == 7
            assert result.stuck is not None
            assert result.stuck.live_nodes == [1, 2, 3, 4, 5]
            for snapshot in result.stuck.snapshots.values():
                assert snapshot.last_inbox == {}


class _SleeperProgram(NodeProgram):
    quiescent_when_idle = True

    def compose(self, ctx):
        return {}

    def process(self, ctx, inbox):
        pass


class _SleeperAlgorithm:
    name = "sleeper"
    uses_predictions = False
    model = None

    def build_program(self):
        return _SleeperProgram()


class TestWakeAPI:
    def _context(self, seed=0):
        return NodeContext(1, frozenset({2}), n=2, d=2, delta=1, seed=seed)

    def test_wake_at_must_be_future(self):
        ctx = self._context()
        ctx.round = 4
        with pytest.raises(ValueError, match="not in the future"):
            ctx.wake_at(4)
        with pytest.raises(ValueError, match="not in the future"):
            ctx.wake_at(2)

    def test_request_wakeup_validates_delay(self):
        ctx = self._context()
        with pytest.raises(ValueError, match=">= 1"):
            ctx.request_wakeup(0)

    def test_earliest_request_wins(self):
        ctx = self._context()
        ctx.round = 1
        ctx.wake_at(8)
        ctx.wake_at(3)
        ctx.wake_at(5)
        assert ctx._wake_request == 3


class TestLazyRng:
    def test_not_built_until_accessed(self):
        ctx = NodeContext(7, frozenset(), n=1, d=1, delta=0, seed=42)
        assert ctx._rng is None
        stream = ctx.rng
        assert ctx._rng is stream

    def test_seeding_identical_to_eager_construction(self):
        ctx = NodeContext(7, frozenset(), n=1, d=1, delta=0, seed=42)
        reference = random.Random("42:7")
        assert [ctx.rng.random() for _ in range(5)] == [
            reference.random() for _ in range(5)
        ]

    def test_engine_never_builds_unused_streams(self):
        engine = SyncEngine(line(6), lambda node: _SleeperProgram(), max_rounds=3,
                            on_round_limit="partial")
        engine.run()
        assert all(ctx._rng is None for ctx in engine.contexts.values())


class TestFastModeReplays:
    def _plan(self):
        return FaultPlan(
            messages=MessageAdversary(duplicate_rate=1.0), seed=3
        )

    def test_fast_mode_keeps_bits_at_zero(self):
        graph = erdos_renyi(10, 0.4, seed=1)
        slow = run(MIS_ALG, graph, faults=self._plan(), seed=2)
        fast = run(MIS_ALG, graph, faults=self._plan(), seed=2, fast=True)
        assert slow.total_bits > 0
        # Regression: replay deliveries used to account bits in fast mode.
        assert fast.total_bits == 0
        assert fast.max_message_bits == 0
        assert fast.message_count == slow.message_count
        assert fast.outputs == slow.outputs


class TestEstimateBitsMemo:
    def test_numeric_identity_not_conflated(self):
        # 1, 1.0 and True are equal as dict keys but cost different bits;
        # the memo key must keep them apart.
        assert estimate_bits((1,)) != estimate_bits((1.0,))
        assert estimate_bits((True,)) != estimate_bits((1.0,))

    def test_repeated_payloads_are_stable(self):
        payload = {"k": [1, 2, 3], "tag": ("x", 2.5)}
        first = estimate_bits(payload)
        assert all(estimate_bits(payload) == first for _ in range(3))

    def test_unmarshallable_container_falls_back(self):
        class Custom:
            pass

        payload = (1, Custom())
        assert estimate_bits(payload) == estimate_bits(payload) > 0
