"""Repository hygiene: packaging, exports, docstrings, documentation."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def all_repro_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    names = ["repro"]
    for module in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        names.append(module.name)
    return names


class TestPackaging:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.graphs",
            "repro.problems",
            "repro.errors",
            "repro.predictions",
            "repro.core",
            "repro.exec",
            "repro.faults",
            "repro.obs",
            "repro.simulator",
            "repro.algorithms.mis",
            "repro.algorithms.matching",
            "repro.algorithms.coloring",
            "repro.algorithms.edge_coloring",
            "repro.bench",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module_name, name)

    @pytest.mark.parametrize("module_name", all_repro_modules())
    def test_every_module_imports_and_is_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_classes_have_docstrings(self):
        import inspect

        undocumented = []
        for module_name in all_repro_modules():
            module = importlib.import_module(module_name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) and obj.__module__ == module_name:
                    if not obj.__doc__:
                        undocumented.append(f"{module_name}.{name}")
        assert not undocumented, undocumented


class TestDocumentation:
    def test_required_documents_exist(self):
        for filename in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / filename
            assert path.is_file(), filename
            assert len(path.read_text()) > 1000, filename

    def test_design_lists_every_experiment_bench(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_e*.py")):
            assert bench.name in design, bench.name

    def test_every_bench_has_an_experiments_entry(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_e*.py")):
            exp_id = bench.name.split("_")[1].upper().lstrip("E")
            assert f"E{int(exp_id)} " in experiments or f"E{int(exp_id)}/" in (
                experiments
            ) or f"E{int(exp_id)} —" in experiments, bench.name

    def test_examples_are_runnable_scripts(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 6
        for example in examples:
            content = example.read_text()
            assert 'if __name__ == "__main__":' in content, example.name
            assert "def main(" in content, example.name
            assert content.startswith("#!/usr/bin/env python3"), example.name
