"""Tests for the prediction generators."""

import pytest

from repro.errors import eta1
from repro.graphs import (
    directed_line,
    erdos_renyi,
    grid2d,
    line,
    perturb_edges,
)
from repro.predictions import (
    all_ones_mis,
    all_zeros_mis,
    directed_line_pattern,
    grid_blackwhite_predictions,
    noisy_predictions,
    perfect_predictions,
    stale_predictions,
)
from repro.problems import EDGE_COLORING, MATCHING, MIS, UNMATCHED, VERTEX_COLORING


class TestPerfect:
    def test_perfect_predictions_have_zero_error(self, small_zoo):
        for graph in small_zoo:
            for problem in (MIS, MATCHING, VERTEX_COLORING, EDGE_COLORING):
                predictions = perfect_predictions(problem, graph, seed=1)
                assert eta1(graph, predictions, problem.name) == 0, (
                    graph.name,
                    problem.name,
                )

    def test_seed_samples_different_solutions(self):
        graph = line(10)
        solutions = {
            tuple(sorted(perfect_predictions(MIS, graph, seed=s).items()))
            for s in range(8)
        }
        assert len(solutions) > 1

    def test_no_seed_is_deterministic(self):
        graph = erdos_renyi(15, 0.3, seed=2)
        assert perfect_predictions(MIS, graph) == perfect_predictions(MIS, graph)


class TestNoise:
    def test_rate_zero_is_identity(self):
        graph = erdos_renyi(20, 0.2, seed=1)
        base = perfect_predictions(MIS, graph)
        assert noisy_predictions(MIS, graph, 0.0, seed=1, base=base) == base

    def test_rate_one_flips_every_mis_bit(self):
        graph = line(10)
        base = perfect_predictions(MIS, graph)
        noisy = noisy_predictions(MIS, graph, 1.0, seed=1, base=base)
        assert all(noisy[v] == 1 - base[v] for v in graph.nodes)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            noisy_predictions(MIS, line(3), 1.5)

    def test_error_grows_with_rate(self):
        graph = erdos_renyi(40, 0.1, seed=3)
        errors = [
            eta1(graph, noisy_predictions(MIS, graph, rate, seed=5))
            for rate in (0.0, 0.2, 0.6)
        ]
        assert errors[0] == 0
        assert errors[0] <= errors[1] <= errors[2]

    def test_matching_noise_changes_partners(self):
        graph = line(10)
        base = MATCHING.solve_sequential(graph)
        noisy = noisy_predictions(MATCHING, graph, 1.0, seed=2, base=base)
        assert noisy != base

    def test_coloring_noise_within_palette(self):
        graph = erdos_renyi(20, 0.3, seed=4)
        noisy = noisy_predictions(VERTEX_COLORING, graph, 1.0, seed=2)
        assert all(1 <= c <= graph.delta + 1 for c in noisy.values())

    def test_edge_coloring_noise_keeps_structure(self):
        graph = line(6)
        noisy = noisy_predictions(EDGE_COLORING, graph, 0.5, seed=3)
        for node, entry in noisy.items():
            assert set(entry) <= set(graph.neighbors(node))

    def test_seeded_reproducibility(self):
        graph = erdos_renyi(20, 0.2, seed=6)
        a = noisy_predictions(MIS, graph, 0.4, seed=9)
        b = noisy_predictions(MIS, graph, 0.4, seed=9)
        assert a == b


class TestAdversarial:
    def test_all_ones_and_zeros(self, path5):
        assert set(all_ones_mis(path5).values()) == {1}
        assert set(all_zeros_mis(path5).values()) == {0}

    def test_grid_pattern_needs_grid(self, path5):
        with pytest.raises(ValueError):
            grid_blackwhite_predictions(path5)

    def test_grid_pattern_blocks(self):
        graph = grid2d(8, 8)
        predictions = grid_blackwhite_predictions(graph)
        # (0,0) block is black; (0,2) is white.
        by_pos = {
            graph.node_attrs(v)["pos"]: predictions[v] for v in graph.nodes
        }
        assert by_pos[(0, 0)] == 1 and by_pos[(1, 1)] == 1
        assert by_pos[(0, 2)] == 0 and by_pos[(2, 0)] == 0
        assert by_pos[(2, 2)] == 1

    def test_directed_line_pattern_depths(self):
        graph = directed_line(9)
        predictions = directed_line_pattern(graph)
        assert predictions[1] == 0  # depth 0
        assert predictions[2] == 1 and predictions[3] == 1
        assert predictions[4] == 0  # depth 3


class TestStale:
    def test_unchanged_graph_gives_zero_error(self):
        graph = erdos_renyi(25, 0.15, seed=1)
        predictions = stale_predictions(MIS, graph, graph, seed=2)
        assert eta1(graph, predictions) == 0

    def test_churned_graph_gives_small_error(self):
        graph = erdos_renyi(40, 0.1, seed=1)
        churned = perturb_edges(graph, add=3, remove=3, seed=2)
        predictions = stale_predictions(MIS, graph, churned, seed=2)
        error = eta1(churned, predictions)
        assert error < churned.n  # errors are localized, not global

    def test_new_nodes_get_defaults(self):
        from repro.graphs import perturb_nodes

        graph = erdos_renyi(20, 0.2, seed=3)
        churned = perturb_nodes(graph, add=3, seed=4)
        predictions = stale_predictions(MIS, graph, churned, seed=1)
        new_nodes = set(churned.nodes) - set(graph.nodes)
        assert all(predictions[v] == 0 for v in new_nodes)

    def test_matching_default_is_unmatched(self):
        from repro.graphs import perturb_nodes

        graph = line(10)
        churned = perturb_nodes(graph, add=2, seed=1)
        predictions = stale_predictions(MATCHING, graph, churned)
        new_nodes = set(churned.nodes) - set(graph.nodes)
        assert all(predictions[v] == UNMATCHED for v in new_nodes)

    def test_edge_coloring_drops_vanished_edges(self):
        graph = line(10)
        churned = perturb_edges(graph, remove=3, seed=5)
        predictions = stale_predictions(EDGE_COLORING, graph, churned)
        for node, entry in predictions.items():
            assert set(entry) <= set(churned.neighbors(node))
