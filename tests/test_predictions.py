"""Tests for the prediction generators."""

import pytest

from repro.errors import eta1
from repro.graphs import (
    DistGraph,
    directed_line,
    erdos_renyi,
    grid2d,
    line,
    perturb_edges,
    perturb_nodes,
)
from repro.predictions import (
    all_ones_mis,
    all_zeros_mis,
    carry_predictions,
    directed_line_pattern,
    grid_blackwhite_predictions,
    noisy_predictions,
    perfect_predictions,
    stale_predictions,
)
from repro.problems import EDGE_COLORING, MATCHING, MIS, UNMATCHED, VERTEX_COLORING


class TestPerfect:
    def test_perfect_predictions_have_zero_error(self, small_zoo):
        for graph in small_zoo:
            for problem in (MIS, MATCHING, VERTEX_COLORING, EDGE_COLORING):
                predictions = perfect_predictions(problem, graph, seed=1)
                assert eta1(graph, predictions, problem.name) == 0, (
                    graph.name,
                    problem.name,
                )

    def test_seed_samples_different_solutions(self):
        graph = line(10)
        solutions = {
            tuple(sorted(perfect_predictions(MIS, graph, seed=s).items()))
            for s in range(8)
        }
        assert len(solutions) > 1

    def test_no_seed_is_deterministic(self):
        graph = erdos_renyi(15, 0.3, seed=2)
        assert perfect_predictions(MIS, graph) == perfect_predictions(MIS, graph)


class TestNoise:
    def test_rate_zero_is_identity(self):
        graph = erdos_renyi(20, 0.2, seed=1)
        base = perfect_predictions(MIS, graph)
        assert noisy_predictions(MIS, graph, 0.0, seed=1, base=base) == base

    def test_rate_one_flips_every_mis_bit(self):
        graph = line(10)
        base = perfect_predictions(MIS, graph)
        noisy = noisy_predictions(MIS, graph, 1.0, seed=1, base=base)
        assert all(noisy[v] == 1 - base[v] for v in graph.nodes)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            noisy_predictions(MIS, line(3), 1.5)

    def test_error_grows_with_rate(self):
        graph = erdos_renyi(40, 0.1, seed=3)
        errors = [
            eta1(graph, noisy_predictions(MIS, graph, rate, seed=5))
            for rate in (0.0, 0.2, 0.6)
        ]
        assert errors[0] == 0
        assert errors[0] <= errors[1] <= errors[2]

    def test_matching_noise_changes_partners(self):
        graph = line(10)
        base = MATCHING.solve_sequential(graph)
        noisy = noisy_predictions(MATCHING, graph, 1.0, seed=2, base=base)
        assert noisy != base

    def test_coloring_noise_within_palette(self):
        graph = erdos_renyi(20, 0.3, seed=4)
        noisy = noisy_predictions(VERTEX_COLORING, graph, 1.0, seed=2)
        assert all(1 <= c <= graph.delta + 1 for c in noisy.values())

    def test_edge_coloring_noise_keeps_structure(self):
        graph = line(6)
        noisy = noisy_predictions(EDGE_COLORING, graph, 0.5, seed=3)
        for node, entry in noisy.items():
            assert set(entry) <= set(graph.neighbors(node))

    def test_seeded_reproducibility(self):
        graph = erdos_renyi(20, 0.2, seed=6)
        a = noisy_predictions(MIS, graph, 0.4, seed=9)
        b = noisy_predictions(MIS, graph, 0.4, seed=9)
        assert a == b


class TestAdversarial:
    def test_all_ones_and_zeros(self, path5):
        assert set(all_ones_mis(path5).values()) == {1}
        assert set(all_zeros_mis(path5).values()) == {0}

    def test_grid_pattern_needs_grid(self, path5):
        with pytest.raises(ValueError):
            grid_blackwhite_predictions(path5)

    def test_grid_pattern_blocks(self):
        graph = grid2d(8, 8)
        predictions = grid_blackwhite_predictions(graph)
        # (0,0) block is black; (0,2) is white.
        by_pos = {
            graph.node_attrs(v)["pos"]: predictions[v] for v in graph.nodes
        }
        assert by_pos[(0, 0)] == 1 and by_pos[(1, 1)] == 1
        assert by_pos[(0, 2)] == 0 and by_pos[(2, 0)] == 0
        assert by_pos[(2, 2)] == 1

    def test_directed_line_pattern_depths(self):
        graph = directed_line(9)
        predictions = directed_line_pattern(graph)
        assert predictions[1] == 0  # depth 0
        assert predictions[2] == 1 and predictions[3] == 1
        assert predictions[4] == 0  # depth 3


class TestStale:
    def test_unchanged_graph_gives_zero_error(self):
        graph = erdos_renyi(25, 0.15, seed=1)
        predictions = stale_predictions(MIS, graph, graph, seed=2)
        assert eta1(graph, predictions) == 0

    def test_churned_graph_gives_small_error(self):
        graph = erdos_renyi(40, 0.1, seed=1)
        churned = perturb_edges(graph, add=3, remove=3, seed=2)
        predictions = stale_predictions(MIS, graph, churned, seed=2)
        error = eta1(churned, predictions)
        assert error < churned.n  # errors are localized, not global

    def test_new_nodes_get_defaults(self):
        from repro.graphs import perturb_nodes

        graph = erdos_renyi(20, 0.2, seed=3)
        churned = perturb_nodes(graph, add=3, seed=4)
        predictions = stale_predictions(MIS, graph, churned, seed=1)
        new_nodes = set(churned.nodes) - set(graph.nodes)
        assert all(predictions[v] == 0 for v in new_nodes)

    def test_matching_default_is_unmatched(self):
        from repro.graphs import perturb_nodes

        graph = line(10)
        churned = perturb_nodes(graph, add=2, seed=1)
        predictions = stale_predictions(MATCHING, graph, churned)
        new_nodes = set(churned.nodes) - set(graph.nodes)
        assert all(predictions[v] == UNMATCHED for v in new_nodes)

    def test_edge_coloring_drops_vanished_edges(self):
        graph = line(10)
        churned = perturb_edges(graph, remove=3, seed=5)
        predictions = stale_predictions(EDGE_COLORING, graph, churned)
        for node, entry in predictions.items():
            assert set(entry) <= set(churned.neighbors(node))


class TestStaleUniverse:
    """Out-of-universe audit (ISSUE 8 satellite): after node churn a
    stale value may reference an id that is gone from the new graph
    entirely.  The carry rule's tolerated behavior, pinned per family."""

    PROBLEMS = (MIS, MATCHING, VERTEX_COLORING, EDGE_COLORING)

    @staticmethod
    def _combined_churn(graph, seed):
        churned = perturb_edges(graph, add=5, remove=5, seed=seed)
        return perturb_nodes(churned, remove=6, add=4, seed=seed)

    def test_no_out_of_universe_ids_after_combined_churn(self):
        graph = erdos_renyi(30, 0.15, seed=2)
        churned = self._combined_churn(graph, seed=3)
        universe = set(churned.nodes)
        for problem in self.PROBLEMS:
            predictions = stale_predictions(problem, graph, churned, seed=1)
            assert set(predictions) == universe, problem.name
            if problem.name == "matching":
                partners = {
                    value for value in predictions.values() if value != UNMATCHED
                }
                assert partners <= universe
            if problem.name == "edge-coloring":
                for node, entry in predictions.items():
                    assert set(entry) <= set(churned.neighbors(node))

    def test_matching_removed_partner_becomes_unmatched(self):
        graph = line(6)
        # Remove node 2: its partner (whoever matched with it) now holds
        # a pointer to an id outside the new universe.
        churned = graph.subgraph(set(graph.nodes) - {2}, name="line-6-minus-2")
        old_solution = perfect_predictions(MATCHING, graph)
        orphaned = [v for v, p in old_solution.items() if p == 2 and v != 2]
        assert orphaned, "node 2 should have been matched"
        predictions = carry_predictions(MATCHING, old_solution, churned)
        for node in orphaned:
            assert predictions[node] == UNMATCHED

    def test_matching_surviving_non_neighbor_kept_verbatim(self):
        # Partner survives but the edge is gone: that stale pointer is
        # the prediction error churn causes — kept, not sanitized.
        graph = line(4)
        old_solution = {1: 2, 2: 1, 3: 4, 4: 3}
        churned = DistGraph({1: [3], 2: [4], 3: [1], 4: [2]}, name="rewired")
        predictions = carry_predictions(MATCHING, old_solution, churned)
        assert predictions == old_solution

    def test_all_families_run_to_valid_solutions_under_combined_churn(self):
        from repro.bench.algorithms import (
            coloring_simple,
            edge_coloring_simple,
            matching_simple,
            mis_simple,
        )
        from repro.core import run

        graph = erdos_renyi(28, 0.15, seed=5)
        churned = self._combined_churn(graph, seed=7)
        factories = {
            "mis": mis_simple,
            "matching": matching_simple,
            "vertex-coloring": coloring_simple,
            "edge-coloring": edge_coloring_simple,
        }
        for problem in self.PROBLEMS:
            predictions = stale_predictions(problem, graph, churned, seed=2)
            assert eta1(churned, predictions, problem.name) >= 0
            result = run(factories[problem.name](), churned, predictions, seed=4)
            assert problem.verify_solution(churned, result.outputs) == [], (
                problem.name
            )

    def test_vertex_coloring_colors_kept_verbatim_beyond_palette(self):
        # A carried color may exceed the new graph's Delta+1 palette;
        # the carry rule keeps it (initializers repair it).
        old_solution = {1: 5, 2: 1, 3: 2}
        churned = DistGraph({1: [2], 2: [1, 3], 3: [2]}, name="path3")
        predictions = carry_predictions(VERTEX_COLORING, old_solution, churned)
        assert predictions[1] == 5
