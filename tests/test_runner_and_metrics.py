"""Tests for the high-level runner, run metrics and the bench factories."""

import pytest

from repro.algorithms.mis import GreedyMISAlgorithm, LinialMISAlgorithm
from repro.bench.algorithms import (
    coloring_consecutive,
    coloring_parallel,
    coloring_simple,
    edge_coloring_consecutive,
    edge_coloring_simple,
    matching_consecutive,
    matching_simple,
    mis_blackwhite_simple,
    mis_consecutive,
    mis_interleaved,
    mis_parallel,
    mis_rooted_parallel,
    mis_rooted_simple,
    mis_simple,
)
from repro.core import RunConfig, run, run_with_trace
from repro.graphs import erdos_renyi, line, random_rooted_tree
from repro.predictions import noisy_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING
from repro.simulator.models import LOCAL, strict_congest


class TestRunner:
    def test_missing_predictions_rejected(self, path5):
        with pytest.raises(ValueError, match="requires predictions"):
            run(mis_simple(), path5)

    def test_prediction_free_algorithm_accepts_none(self, path5):
        result = run(GreedyMISAlgorithm(), path5)
        assert MIS.is_solution(path5, result.outputs)

    def test_model_override(self, path5):
        result = run(GreedyMISAlgorithm(), path5, model=strict_congest(32))
        assert result.model.strict

    def test_default_model_from_algorithm(self, path5):
        result = run(GreedyMISAlgorithm(), path5)
        assert result.model is LOCAL

    def test_run_trace_flag_attaches_recorder(self, path5):
        result = run(GreedyMISAlgorithm(), path5, trace=True)
        assert result.rounds >= 1
        assert result.trace.termination_rounds()

    def test_run_without_trace_has_no_recorder(self, path5):
        assert run(GreedyMISAlgorithm(), path5).trace is None

    def test_run_with_trace_deprecated_wrapper(self, path5):
        with pytest.warns(DeprecationWarning, match="trace=True"):
            result, trace = run_with_trace(GreedyMISAlgorithm(), path5)
        assert trace is result.trace
        assert trace.termination_rounds()

    def test_run_with_trace_requires_predictions_too(self, path5):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                run_with_trace(mis_simple(), path5)

    def test_run_config_is_single_entrypoint(self, path5):
        by_config = run(
            GreedyMISAlgorithm(), path5, config=RunConfig(seed=3, fast=True)
        )
        by_kwargs = run(GreedyMISAlgorithm(), path5, seed=3, fast=True)
        assert by_config.outputs == by_kwargs.outputs
        assert by_config.rounds == by_kwargs.rounds

    def test_run_config_kwargs_override(self, path5):
        config = RunConfig(max_rounds=1)
        from repro.simulator import RoundLimitExceeded
        from repro.simulator.program import NodeProgram

        class Never(NodeProgram):
            pass

        from repro.core.algorithm import FunctionalAlgorithm

        never = FunctionalAlgorithm("never", Never)
        with pytest.raises(RoundLimitExceeded):
            run(never, path5, config=config)
        partial = run(
            never, path5, config=config, on_round_limit="partial"
        )
        assert partial.stuck is not None

    def test_max_rounds_override_propagates(self, path5):
        from repro.simulator import RoundLimitExceeded
        from repro.simulator.program import NodeProgram

        class Never(NodeProgram):
            pass

        from repro.core import FunctionalAlgorithm

        with pytest.raises(RoundLimitExceeded):
            run(FunctionalAlgorithm("never", Never), path5, max_rounds=4)


class TestRunResultDetails:
    def test_termination_round_lookup(self, path5):
        result = run(GreedyMISAlgorithm(), path5)
        assert result.termination_round(5) is not None
        assert result.termination_round(999) is None

    def test_records_carry_outputs(self, path5):
        result = run(GreedyMISAlgorithm(), path5)
        for node in path5.nodes:
            assert result.records[node].output == result.outputs[node]


MIS_FACTORIES = [
    mis_simple,
    mis_consecutive,
    mis_interleaved,
    mis_parallel,
    mis_blackwhite_simple,
]


class TestBenchFactories:
    """Every canonical construction solves a shared noisy instance."""

    @pytest.mark.parametrize("factory", MIS_FACTORIES, ids=lambda f: f.__name__)
    def test_mis_factories(self, factory):
        graph = erdos_renyi(28, 0.15, seed=14)
        predictions = noisy_predictions(MIS, graph, 0.4, seed=5)
        result = run(factory(), graph, predictions, max_rounds=20000)
        assert MIS.is_solution(graph, result.outputs)

    @pytest.mark.parametrize(
        "factory", [mis_rooted_simple, mis_rooted_parallel], ids=lambda f: f.__name__
    )
    def test_rooted_factories(self, factory):
        graph = random_rooted_tree(40, seed=6)
        predictions = noisy_predictions(MIS, graph, 0.4, seed=6)
        result = run(factory(), graph, predictions)
        assert MIS.is_solution(graph, result.outputs)

    @pytest.mark.parametrize(
        "factory", [matching_simple, matching_consecutive], ids=lambda f: f.__name__
    )
    def test_matching_factories(self, factory):
        graph = erdos_renyi(26, 0.15, seed=15)
        predictions = noisy_predictions(MATCHING, graph, 0.4, seed=7)
        result = run(factory(), graph, predictions, max_rounds=20000)
        assert MATCHING.is_solution(graph, result.outputs)

    @pytest.mark.parametrize(
        "factory",
        [coloring_simple, coloring_consecutive, coloring_parallel],
        ids=lambda f: f.__name__,
    )
    def test_coloring_factories(self, factory):
        graph = erdos_renyi(26, 0.15, seed=16)
        predictions = noisy_predictions(VERTEX_COLORING, graph, 0.4, seed=8)
        result = run(factory(), graph, predictions, max_rounds=20000)
        assert VERTEX_COLORING.is_solution(graph, result.outputs)

    @pytest.mark.parametrize(
        "factory",
        [edge_coloring_simple, edge_coloring_consecutive],
        ids=lambda f: f.__name__,
    )
    def test_edge_coloring_factories(self, factory):
        graph = erdos_renyi(22, 0.18, seed=17)
        predictions = noisy_predictions(EDGE_COLORING, graph, 0.4, seed=9)
        result = run(factory(), graph, predictions, max_rounds=20000)
        assert EDGE_COLORING.is_solution(graph, result.outputs)


class TestLinialMIS:
    def test_valid_and_bounded(self):
        algorithm = LinialMISAlgorithm()
        for seed in range(5):
            graph = erdos_renyi(30, 0.15, seed=seed)
            result = run(algorithm, graph)
            assert MIS.is_solution(graph, result.outputs)
            assert result.rounds <= algorithm.round_bound(
                graph.n, graph.delta, graph.d
            )

    def test_bound_independent_of_n(self):
        algorithm = LinialMISAlgorithm()
        assert algorithm.round_bound(10, 4, 100) == algorithm.round_bound(
            10**6, 4, 100
        )

    def test_line_beats_greedy_worst_case(self):
        from repro.graphs import sorted_path_ids

        graph = sorted_path_ids(line(80))
        linial = run(LinialMISAlgorithm(), graph).rounds
        greedy = run(GreedyMISAlgorithm(), graph).rounds
        assert linial < greedy / 2
