"""Workload builders shared by the benchmark modules.

Besides the instance iterators the older benchmarks consume, this module
hosts the top-level *spec factories* the sweep executor needs: graph and
prediction builders that are importable by name (the pickling rule for
:mod:`repro.exec` specs) and take the graph as their first argument (the
:class:`~repro.exec.plan.PredictionSpec` calling convention — the paper's
own generators take the problem first, so thin wrappers adapt them).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.graphs import (
    DistGraph,
    caterpillar,
    clique,
    connected_erdos_renyi,
    erdos_renyi,
    grid2d,
    line,
    random_regular,
    random_tree,
    ring,
    sorted_path_ids,
    star,
)
from repro.graphs.churn import perturb_edges, perturb_nodes
from repro.predictions import (
    noisy_predictions,
    perfect_predictions,
    stale_predictions,
)
from repro.problems import MIS, get_problem
from repro.problems.base import GraphProblem

Instance = Tuple[str, DistGraph, Mapping[int, Any]]


# ----------------------------------------------------------------------
# Spec factories (top-level so sweep specs can name and pickle them)
# ----------------------------------------------------------------------
def sorted_line(n: int) -> DistGraph:
    """The line with sorted identifiers — Greedy's Θ(n) worst case."""
    return sorted_path_ids(line(n))


def perfect_for(graph: DistGraph, problem: str, seed: Optional[int] = None):
    """Graph-first wrapper around :func:`perfect_predictions`."""
    return perfect_predictions(get_problem(problem), graph, seed=seed)


def noisy_for(graph: DistGraph, problem: str, rate: float, seed: int = 0):
    """Graph-first wrapper around :func:`noisy_predictions`."""
    return noisy_predictions(get_problem(problem), graph, rate, seed=seed)


def churned_gnp(
    n: int,
    p: float,
    seed: int = 0,
    add: int = 0,
    remove: int = 0,
    node_add: int = 0,
    node_remove: int = 0,
    churn_seed: int = 0,
) -> DistGraph:
    """A G(n, p) instance after one round of edge (and optional node)
    churn — the "related network" a dynamic sweep cell solves.

    All randomness is string-key seeded (graph seed, churn seed), so the
    cell builds bit-identically on every backend and process.
    """
    graph = erdos_renyi(n, p, seed=seed)
    graph = perturb_edges(graph, add=add, remove=remove, seed=churn_seed)
    if node_add or node_remove:
        graph = perturb_nodes(
            graph, remove=node_remove, add=node_add, seed=churn_seed
        )
    return graph


def stale_for(graph: DistGraph, problem: str, n: int, p: float, seed: int = 0):
    """Stale predictions for a :func:`churned_gnp` cell: solve the
    *pre-churn* G(n, p) instance (same ``n``/``p``/``seed``) and carry
    the solution onto the churned graph."""
    old = erdos_renyi(n, p, seed=seed)
    return stale_predictions(get_problem(problem), old, graph)


def perfect_mis(graph: DistGraph, seed: Optional[int] = None):
    """Perfect MIS predictions (η₁ = 0)."""
    return perfect_predictions(MIS, graph, seed=seed)


def corrupted_segment_mis(graph: DistGraph, segment: int, seed: int = 1):
    """Perfect MIS predictions with the first ``segment`` identifiers
    zeroed out — the growing corrupted prefix of E18/E20."""
    predictions = dict(perfect_predictions(MIS, graph, seed=seed))
    for node in range(1, segment + 1):
        predictions[node] = 0
    return predictions


def standard_graph_suite(scale: int = 1) -> List[DistGraph]:
    """The graph families exercised by most experiments.

    ``scale`` multiplies the base sizes (benchmarks use scale 1; stress
    tests can go larger).
    """
    base = 24 * scale
    return [
        line(base),
        ring(base),
        star(base),
        clique(12 * scale),
        grid2d(4 * scale, 6 * scale),
        caterpillar(8 * scale, 2),
        random_tree(base, seed=7),
        erdos_renyi(base, 0.15, seed=7),
        connected_erdos_renyi(base, 0.1, seed=8),
        random_regular(base, 3, seed=9),
    ]


def noise_sweep_instances(
    problem: GraphProblem,
    graph: DistGraph,
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    seeds: Sequence[int] = (0, 1, 2),
) -> Iterator[Instance]:
    """Instances with noise-corrupted predictions across a rate sweep."""
    for rate in rates:
        for seed in seeds:
            predictions = noisy_predictions(problem, graph, rate, seed=seed)
            yield f"{graph.name}/p={rate}/s={seed}", graph, predictions


def mis_instance_suite(
    problem: GraphProblem, scale: int = 1, seeds: Sequence[int] = (0, 1)
) -> Iterator[Instance]:
    """Perfect + noisy predictions over the standard graph suite."""
    for graph in standard_graph_suite(scale):
        yield f"{graph.name}/perfect", graph, perfect_predictions(
            problem, graph, seed=1
        )
        for rate in (0.2, 0.6, 1.0):
            for seed in seeds:
                yield (
                    f"{graph.name}/p={rate}/s={seed}",
                    graph,
                    noisy_predictions(problem, graph, rate, seed=seed),
                )
