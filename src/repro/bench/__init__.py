"""Benchmark harness: workloads, sweeps and table rendering.

The paper is theory-only, so its "evaluation" is the set of quantitative
claims (lemmas, corollaries, figure constructions).  Each module in
``benchmarks/`` reproduces one of them using the workload builders and
the plain-text table renderer here; EXPERIMENTS.md records the outputs.
"""

from repro.bench.tables import Table
from repro.bench.workloads import (
    mis_instance_suite,
    noise_sweep_instances,
    standard_graph_suite,
)

__all__ = [
    "Table",
    "mis_instance_suite",
    "noise_sweep_instances",
    "standard_graph_suite",
]
