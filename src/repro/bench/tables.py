"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A fixed-column table rendered in monospace.

    Benchmarks print these tables; EXPERIMENTS.md embeds them verbatim as
    the measured counterpart of each paper claim.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        """Append one row (values are str()-ed)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([str(value) for value in values])

    def render(self) -> str:
        """The table as a multi-line string."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(cells)
            ).rstrip()

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, separator, line(self.columns), separator]
        parts.extend(line(row) for row in self.rows)
        parts.append(separator)
        return "\n".join(parts)

    def print(self) -> None:
        """Render to stdout (used by the benchmark modules)."""
        print()
        print(self.render())
