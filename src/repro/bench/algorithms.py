"""Canonical algorithm constructions used by benchmarks and examples.

Each factory assembles one of the paper's example algorithms-with-
predictions from its components, exactly as the corresponding result
states (Observation 7, Lemma 8, Corollaries 10, 12, 15, Sections 8 and 9).
"""

from __future__ import annotations

from repro.algorithms.coloring import (
    LinialColoringAlgorithm,
    LinialColoringReference,
    PaletteGreedyColoringAlgorithm,
    VertexColoringInitializationAlgorithm,
)
from repro.algorithms.edge_coloring import (
    EdgeColoringBaseAlgorithm,
    EdgeColoringCleanupAlgorithm,
    GreedyEdgeColoringAlgorithm,
)
from repro.algorithms.edge_coloring.greedy import GreedyEdgeColoringProgram
from repro.algorithms.matching import (
    GreedyMatchingAlgorithm,
    MatchingCleanupAlgorithm,
    MatchingInitializationAlgorithm,
)
from repro.algorithms.matching.greedy import GreedyMatchingProgram
from repro.algorithms.mis import (
    BlackWhiteGreedyMIS,
    ClusteringMISReference,
    ColoringMISReference,
    GreedyMISAlgorithm,
    HardenedGreedyMIS,
    HardenedMISInitialization,
    LinialMISAlgorithm,
    MISCleanupAlgorithm,
    MISInitializationAlgorithm,
    RootedTreeColoringMISReference,
    RootedTreeMISInitialization,
    RootsAndLeavesMISAlgorithm,
)
from repro.algorithms.mis.greedy import GreedyMISProgram
from repro.core import (
    ConsecutiveTemplate,
    FunctionalAlgorithm,
    HedgedConsecutiveTemplate,
    InterleavedTemplate,
    ParallelTemplate,
    SimpleTemplate,
)
from repro.simulator.program import NodeProgram


def greedy_mis_reference() -> FunctionalAlgorithm:
    """Greedy MIS wrapped with its trivial worst-case bound (usable as R)."""
    return FunctionalAlgorithm(
        "greedy-mis-ref",
        GreedyMISProgram,
        round_bound=lambda n, delta, d: n + 1,
        safe_pause_interval=2,
    )


def mis_simple() -> SimpleTemplate:
    """Observation 7's example: MIS Initialization + Greedy MIS."""
    return SimpleTemplate(MISInitializationAlgorithm(), GreedyMISAlgorithm())


def mis_hardened_simple() -> SimpleTemplate:
    """The Simple Template over the fault-hardened MIS components.

    Same consistency (3 rounds) and degradation shape as
    :func:`mis_simple`, but safe under message-loss adversaries: joins
    rely only on the engine's reliable termination notifications, so
    drops delay decisions without ever producing adjacent 1s (see
    :mod:`repro.algorithms.mis.hardened`).
    """
    return SimpleTemplate(
        HardenedMISInitialization(),
        HardenedGreedyMIS(),
        name="mis-simple-hardened",
    )


def mis_consecutive() -> ConsecutiveTemplate:
    """Lemma 8's shape with Greedy MIS doubling as the bounded reference."""
    return ConsecutiveTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        MISCleanupAlgorithm(),
        greedy_mis_reference(),
    )


def mis_interleaved() -> InterleavedTemplate:
    """Corollary 10's algorithm (clustering reference per DESIGN.md)."""
    return InterleavedTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        ClusteringMISReference(),
    )


def mis_parallel() -> ParallelTemplate:
    """Corollary 12's algorithm (coloring reference)."""
    return ParallelTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        ColoringMISReference(),
    )


def mis_hedged(trust: float = 1.0) -> HedgedConsecutiveTemplate:
    """Section 10's trade-off candidate: trust λ bounds how long the
    measure-uniform algorithm runs before the Linial reference takes
    over."""
    return HedgedConsecutiveTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        MISCleanupAlgorithm(),
        LinialMISAlgorithm(),
        trust=trust,
    )


def mis_blackwhite_simple() -> SimpleTemplate:
    """Section 9.1: initialization + the black/white alternating U_bw."""
    return SimpleTemplate(MISInitializationAlgorithm(), BlackWhiteGreedyMIS())


def mis_rooted_simple() -> SimpleTemplate:
    """Section 9.2: rooted-tree initialization + Algorithm 6."""
    return SimpleTemplate(
        RootedTreeMISInitialization(), RootsAndLeavesMISAlgorithm()
    )


def mis_rooted_parallel() -> ParallelTemplate:
    """Corollary 15's algorithm for rooted trees."""
    return ParallelTemplate(
        RootedTreeMISInitialization(),
        RootsAndLeavesMISAlgorithm(),
        RootedTreeColoringMISReference(),
    )


def matching_simple() -> SimpleTemplate:
    """Section 8.1: matching initialization + the 3-round-group greedy."""
    return SimpleTemplate(
        MatchingInitializationAlgorithm(), GreedyMatchingAlgorithm()
    )


def matching_consecutive() -> ConsecutiveTemplate:
    """Section 8.1 under the Consecutive Template."""
    reference = FunctionalAlgorithm(
        "greedy-matching-ref",
        GreedyMatchingProgram,
        round_bound=lambda n, delta, d: 3 * (max(n, 2) // 2) + 3,
        safe_pause_interval=3,
    )
    return ConsecutiveTemplate(
        MatchingInitializationAlgorithm(),
        GreedyMatchingAlgorithm(),
        MatchingCleanupAlgorithm(),
        reference,
    )


def _noop_cleanup() -> FunctionalAlgorithm:
    return FunctionalAlgorithm(
        "noop-cleanup", NodeProgram, round_bound=lambda n, delta, d: 1
    )


def coloring_simple() -> SimpleTemplate:
    """Section 8.2: coloring initialization + the palette greedy."""
    return SimpleTemplate(
        VertexColoringInitializationAlgorithm(),
        PaletteGreedyColoringAlgorithm(),
    )


def coloring_consecutive() -> ConsecutiveTemplate:
    """Section 8.2 with the Linial-style coloring as the reference."""
    return ConsecutiveTemplate(
        VertexColoringInitializationAlgorithm(),
        PaletteGreedyColoringAlgorithm(),
        _noop_cleanup(),
        LinialColoringAlgorithm(),
    )


def coloring_parallel() -> ParallelTemplate:
    """Section 8.2 under the Parallel Template (coloring is fully
    fault tolerant, so part 1 is the whole reference)."""
    return ParallelTemplate(
        VertexColoringInitializationAlgorithm(),
        PaletteGreedyColoringAlgorithm(),
        LinialColoringReference(),
    )


def edge_coloring_simple() -> SimpleTemplate:
    """Section 8.3: edge-coloring base + the 2-hop-dominance greedy."""
    return SimpleTemplate(
        EdgeColoringBaseAlgorithm(), GreedyEdgeColoringAlgorithm()
    )


def edge_coloring_consecutive() -> ConsecutiveTemplate:
    """Section 8.3 under the Consecutive Template."""
    reference = FunctionalAlgorithm(
        "greedy-edge-coloring-ref",
        GreedyEdgeColoringProgram,
        round_bound=lambda n, delta, d: 2 * n + 3,
        safe_pause_interval=2,
    )
    return ConsecutiveTemplate(
        EdgeColoringBaseAlgorithm(),
        GreedyEdgeColoringAlgorithm(),
        EdgeColoringCleanupAlgorithm(),
        reference,
    )
