"""The transport stage: mailboxes, delivery and bit accounting.

:class:`Transport` owns the per-node inboxes and is the only layer that
writes to them or to the :class:`~repro.simulator.metrics.RunResult`'s
message counters.  Schedulers decide *which* messages exist and *when*
they land; the transport decides what a delivery costs — per-message bit
estimation (:func:`~repro.simulator.message.estimate_bits`) and CONGEST
budget enforcement, or a bare count in ``fast`` mode.

Inboxes are allocated once and cleared between rounds rather than
reallocated: programs consume their inbox during ``process`` and never
retain the mapping, so reuse is safe and keeps the hot loop free of dict
churn.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.simulator.message import estimate_bits
from repro.simulator.metrics import RunResult
from repro.simulator.models import ExecutionModel


class BandwidthExceeded(RuntimeError):
    """Raised in strict CONGEST mode when a message exceeds the budget."""


class Transport:
    """Owns mailbox state and message/bit accounting for one run.

    Args:
        nodes: Every node of the instance (one inbox each).
        result: The run's result record; the transport is the only
            writer of its ``message_count``/``total_bits``/
            ``max_message_bits``/``bandwidth_violations`` fields.
        model: Execution model for bandwidth accounting.
        n: Number of nodes (the CONGEST budget is a function of ``n``).
        fast: Skip per-message bit estimation; only ``message_count``
            is maintained.
    """

    __slots__ = ("inboxes", "result", "model", "n", "fast")

    def __init__(
        self,
        nodes: Iterable[int],
        result: RunResult,
        model: ExecutionModel,
        n: int,
        fast: bool,
    ) -> None:
        #: Per-node inboxes (``receiver -> {sender: payload}``), reused
        #: across rounds.
        self.inboxes: Dict[int, Dict[int, Any]] = {node: {} for node in nodes}
        self.result = result
        self.model = model
        self.n = n
        self.fast = fast

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def clear_inbox(self, node: int) -> None:
        """Empty one node's inbox (start of its scheduled round)."""
        self.inboxes[node].clear()

    def deposit(self, sender: int, receiver: int, payload: Any) -> None:
        """Account one message and land it in the receiver's inbox.

        The caller has already made every *policy* decision — the receiver
        is active, the adversary let the message through; this is purely
        cost accounting plus the mailbox write.
        """
        if self.fast:
            self.result.message_count += 1
        else:
            self.account(payload)
        self.inboxes[receiver][sender] = payload

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def account(self, payload: Any) -> None:
        """Charge one message's bits against the run and the model."""
        bits = estimate_bits(payload)
        result = self.result
        result.message_count += 1
        result.total_bits += bits
        if bits > result.max_message_bits:
            result.max_message_bits = bits
        if not self.model.allows(bits, self.n):
            result.bandwidth_violations += 1
            if self.model.strict:
                raise BandwidthExceeded(
                    f"{bits}-bit message exceeds "
                    f"{self.model.bandwidth_bits(self.n)}-bit budget"
                )
