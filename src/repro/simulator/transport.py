"""The transport stage: mailboxes, delivery, bit accounting, boundaries.

:class:`Transport` owns the per-node inboxes and is the only layer that
writes to them or to the :class:`~repro.simulator.metrics.RunResult`'s
message counters.  Schedulers decide *which* messages exist and *when*
they land; the transport decides what a delivery costs — per-message bit
estimation (:func:`~repro.simulator.message.estimate_bits`) and CONGEST
budget enforcement, or a bare count in ``fast`` mode.

The transport is also the seam along which a run shards: the engine no
longer assumes every mailbox lives in one process.  :class:`LocalTransport`
(the default) keeps the classic single-process behavior, with no-op
boundary hooks that cost one attribute store and one method call per
round.  :class:`BoundaryTransport` owns the mailboxes of one *edge-cut
shard* — a contiguous block of the identifier space — and exchanges the
messages that cross the cut through a per-round coordinator barrier (see
:mod:`repro.shard.edgecut`), reproducing the unsharded run bit for bit:
same ascending-sender inbox order, same CONGEST accounting at the
receiving shard, same drop-unaccounted rule for terminated receivers.

Inboxes are allocated once and cleared between rounds rather than
reallocated: programs consume their inbox during ``process`` and never
retain the mapping, so reuse is safe and keeps the hot loop free of dict
churn.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.simulator.message import estimate_bits
from repro.simulator.metrics import RunResult
from repro.simulator.models import ExecutionModel


class BandwidthExceeded(RuntimeError):
    """Raised in strict CONGEST mode when a message exceeds the budget."""


def bandwidth_error(
    bits: int, budget: int, sender: int, receiver: int, round_index: int
) -> BandwidthExceeded:
    """The canonical strict-CONGEST violation, naming the round and edge.

    Built here so the unsharded transport and the edge-cut driver (which
    defers violations to the round barrier) raise byte-identical text for
    the same offending message.
    """
    return BandwidthExceeded(
        f"{bits}-bit message from {sender} to {receiver} in round "
        f"{round_index} exceeds {budget}-bit budget"
    )


class Transport:
    """Owns mailbox state and message/bit accounting for one run.

    This base class *is* the protocol: the engine and schedulers program
    against its surface (``inboxes``/``deposit``/``clear_inbox`` plus the
    boundary hooks ``remote``/``export``/``export_event``/``sync``) and the
    engine injects a concrete transport at construction.  The base
    behavior is fully local; :class:`LocalTransport` is its alias-like
    subclass, and :class:`BoundaryTransport` overrides the hooks to speak
    to a shard coordinator.

    Args:
        nodes: Every node owned by this transport (one inbox each).
        result: The run's result record; the transport is the only
            writer of its ``message_count``/``total_bits``/
            ``max_message_bits``/``bandwidth_violations`` fields.
        model: Execution model for bandwidth accounting.
        n: Number of nodes (the CONGEST budget is a function of ``n``).
        fast: Skip per-message bit estimation; only ``message_count``
            is maintained.
    """

    __slots__ = ("inboxes", "result", "model", "n", "fast", "round")

    #: Nodes whose mailboxes live on another shard.  Empty (falsy) for the
    #: local transport, so the schedulers' boundary branches cost a single
    #: containment test against an empty frozenset.
    remote: Any = frozenset()

    def __init__(
        self,
        nodes: Iterable[int],
        result: RunResult,
        model: ExecutionModel,
        n: int,
        fast: bool,
    ) -> None:
        #: Per-node inboxes (``receiver -> {sender: payload}``), reused
        #: across rounds.
        self.inboxes: Dict[int, Dict[int, Any]] = {node: {} for node in nodes}
        self.result = result
        self.model = model
        self.n = n
        self.fast = fast
        #: Current round, stored by the scheduler at the top of each round
        #: so violations can name the round they happened in.
        self.round = 0

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def clear_inbox(self, node: int) -> None:
        """Empty one node's inbox (start of its scheduled round)."""
        self.inboxes[node].clear()

    def deposit(self, sender: int, receiver: int, payload: Any) -> None:
        """Account one message and land it in the receiver's inbox.

        The caller has already made every *policy* decision — the receiver
        is active, the adversary let the message through; this is purely
        cost accounting plus the mailbox write.
        """
        if self.fast:
            self.result.message_count += 1
        else:
            self.account(payload, sender, receiver)
        self.inboxes[receiver][sender] = payload

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def account(
        self, payload: Any, sender: int = -1, receiver: int = -1
    ) -> None:
        """Charge one message's bits against the run and the model."""
        bits = estimate_bits(payload)
        result = self.result
        result.message_count += 1
        result.total_bits += bits
        if bits > result.max_message_bits:
            result.max_message_bits = bits
        if not self.model.allows(bits, self.n):
            result.bandwidth_violations += 1
            if self.model.strict:
                raise bandwidth_error(
                    bits,
                    self.model.bandwidth_bits(self.n),
                    sender,
                    receiver,
                    self.round,
                )

    # ------------------------------------------------------------------
    # Boundary hooks (no-ops for a fully local run)
    # ------------------------------------------------------------------
    def export(self, sender: int, receiver: int, payload: Any) -> None:
        """Hand a message addressed to a remote node to the boundary.

        Never reached locally: ``remote`` is empty, so the schedulers'
        export branch is dead code under this transport.
        """
        raise RuntimeError(
            f"local transport cannot export {sender}->{receiver}: "
            "no remote nodes"
        )

    def export_event(self, kind: str, node: int, output: Any) -> None:
        """Announce a local termination/crash to remote neighbors."""
        raise RuntimeError(
            f"local transport cannot export {kind} event for node {node}"
        )

    def sync(
        self,
        round_index: int,
        active: Set[int],
        process_set: Optional[Set[int]] = None,
        wake: Optional[Set[int]] = None,
    ) -> None:
        """Per-round boundary barrier, between compose and process.

        A local run has no boundary; the hook exists so schedulers can
        call it unconditionally.
        """


class LocalTransport(Transport):
    """The default transport: every mailbox lives in this process."""

    __slots__ = ()


class _RemoteSet:
    """Complement-of-owned membership: ``node in remote`` ⇔ not owned.

    An edge-cut shard at n = 10⁷ would otherwise materialize a frozenset
    of every *other* shard's nodes; the owned set already exists, so
    remoteness is just its complement (every identifier is one or the
    other — the schedulers only probe identifiers from real edges).
    """

    __slots__ = ("owned",)

    def __init__(self, owned: Any) -> None:
        self.owned = owned

    def __contains__(self, node: int) -> bool:
        return node not in self.owned

    def __bool__(self) -> bool:
        return True

    def isdisjoint(self, nodes: Iterable[int]) -> bool:
        owned = self.owned
        return all(node in owned for node in nodes)


class BoundaryTransport(Transport):
    """Transport of one edge-cut shard, exchanging cut messages at a barrier.

    The scheduler runs unmodified against this transport: it composes the
    owned nodes in ascending order, exports any send whose receiver is
    remote, then calls :meth:`sync`, which blocks on the shard
    coordinator until every shard has composed the round, and merges the
    inbound cut messages into the local inboxes.  Two invariants keep the
    merged run bit-identical to the unsharded one:

    * **Inbox order** — unsharded inboxes are filled in ascending-sender
      order (compose iterates sorted identifiers), so after merging
      remote senders each touched inbox is re-sorted by sender id.
    * **Violation order** — strict CONGEST must abort on the *globally
      first* over-budget message (compose order: ascending sender, then
      outbox position).  A shard cannot know whether another shard holds
      an earlier violation, so every violation — local or inbound — is
      deferred and keyed by ``(sender, seq)``, where ``seq`` is the
      sender shard's compose-order counter; the driver raises the
      minimum-keyed one at the round barrier
      (:func:`bandwidth_error` text, identical to the unsharded raise).
    """

    __slots__ = (
        "remote",
        "shard",
        "coordinator",
        "outbound",
        "events",
        "violations",
        "_seq",
    )

    def __init__(
        self,
        nodes: Iterable[int],
        result: RunResult,
        model: ExecutionModel,
        n: int,
        fast: bool,
        *,
        owned: Any,
        shard: int,
        coordinator: Any,
    ) -> None:
        super().__init__(nodes, result, model, n, fast)
        self.remote = _RemoteSet(owned)
        self.shard = shard
        self.coordinator = coordinator
        #: Cut messages composed this round: ``(sender, seq, receiver,
        #: payload)`` in compose order.
        self.outbound: List[Tuple[int, int, int, Any]] = []
        #: Termination/crash announcements owed to remote neighbors.
        self.events: List[Tuple[str, int, Any]] = []
        #: Deferred strict-CONGEST violations: ``(sender, seq, receiver,
        #: bits)``; adjudicated globally by the driver.
        self.violations: List[Tuple[int, int, int, int]] = []
        self._seq = 0

    # -- sends ----------------------------------------------------------
    def deposit(self, sender: int, receiver: int, payload: Any) -> None:
        self._seq += 1
        if self.fast:
            self.result.message_count += 1
        else:
            self._account_deferred(payload, sender, receiver, self._seq)
        self.inboxes[receiver][sender] = payload

    def export(self, sender: int, receiver: int, payload: Any) -> None:
        self._seq += 1
        self.outbound.append((sender, self._seq, receiver, payload))

    def export_event(self, kind: str, node: int, output: Any) -> None:
        self.events.append((kind, node, output))

    def take_events(self) -> List[Tuple[str, int, Any]]:
        """Drain the pending boundary events (driver, at the barrier)."""
        events, self.events = self.events, []
        return events

    def take_violations(self) -> List[Tuple[int, int, int, int]]:
        """Drain the deferred violations (driver, at the barrier)."""
        violations, self.violations = self.violations, []
        return violations

    # -- accounting -----------------------------------------------------
    def _account_deferred(
        self, payload: Any, sender: int, receiver: int, seq: int
    ) -> None:
        """:meth:`Transport.account`, but strict raises are deferred.

        The counters update exactly as locally; only the abort moves to
        the round barrier where the globally-first violation is known.
        """
        bits = estimate_bits(payload)
        result = self.result
        result.message_count += 1
        result.total_bits += bits
        if bits > result.max_message_bits:
            result.max_message_bits = bits
        if not self.model.allows(bits, self.n):
            result.bandwidth_violations += 1
            if self.model.strict:
                self.violations.append((sender, seq, receiver, bits))

    # -- the barrier ----------------------------------------------------
    def sync(
        self,
        round_index: int,
        active: Set[int],
        process_set: Optional[Set[int]] = None,
        wake: Optional[Set[int]] = None,
    ) -> None:
        """Exchange this round's cut messages and merge the inbound ones.

        Blocks until every shard has submitted its outbound batch.  Each
        inbound message lands exactly as a local send would have: dropped
        unaccounted if the receiver already terminated, lazily clearing a
        sleeping receiver's inbox and waking it under the quiescent
        schedule, and charged to this (receiving) shard's counters.
        """
        outbound, self.outbound = self.outbound, []
        inbound = self.coordinator.exchange_messages(
            self.shard, round_index, outbound
        )
        if not inbound:
            return
        inboxes = self.inboxes
        touched = set()
        for sender, seq, receiver, payload in inbound:
            if receiver not in active:
                continue
            inbox = inboxes[receiver]
            if process_set is not None and receiver not in process_set:
                inbox.clear()
                process_set.add(receiver)
            if wake is not None:
                wake.add(receiver)
            if self.fast:
                self.result.message_count += 1
            else:
                self._account_deferred(payload, sender, receiver, seq)
            inbox[sender] = payload
            touched.add(receiver)
        for receiver in touched:
            inbox = inboxes[receiver]
            if len(inbox) > 1:
                entries = sorted(inbox.items())
                inbox.clear()
                inbox.update(entries)
