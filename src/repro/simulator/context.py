"""Per-node execution context.

A :class:`NodeContext` is the only window a :class:`~repro.simulator.program.
NodeProgram` has onto the world.  It carries exactly the knowledge the
paper's model grants a node (Section 2): its own identifier, the identifiers
of its neighbors, the values ``n``, ``d`` and (when the instance provides
it) ``Delta``, plus the node's prediction.  It also tracks which neighbors
are still active and what terminated neighbors output, mirroring the
paper's convention that nodes announce their outputs before terminating.
"""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, Mapping, Optional

_UNSET = object()


class OutputAlreadySet(RuntimeError):
    """Raised when a program assigns a node's output twice.

    The paper's model gives each node write-once output variables;
    reassignment is always an algorithm bug, so the simulator fails loudly.
    """


class NodeContext:
    """Local state and knowledge of one node during a simulation.

    Programs read the public attributes and call :meth:`set_output`,
    :meth:`set_output_part` and :meth:`terminate`.  The engine owns the
    bookkeeping attributes (``round``, ``active_neighbors``,
    ``neighbor_outputs``, ``crashed_neighbors``).

    Attributes:
        node_id: This node's identifier (unique, from ``{1, ..., d}``).
        neighbors: Identifiers of all neighbors, as a frozenset.
        n: Number of nodes in the graph.
        d: Upper bound on the largest identifier.
        delta: Maximum degree of the graph, when known to nodes.
        prediction: This node's prediction of its output (may be ``None``).
        attrs: Extra per-node instance knowledge (e.g. ``parent`` and
            ``is_root`` for rooted trees).
        round: Current round number; 0 during ``setup``.
        active_neighbors: Neighbors that have neither terminated nor
            crashed, updated by the engine between rounds.
        neighbor_outputs: Outputs of terminated neighbors, visible from the
            round after their termination.
        crashed_neighbors: Neighbors removed by fault injection.
        rng: Per-node deterministic random stream (for the paper's
            randomized algorithms; deterministic algorithms never use it).
        phi: The delay bound of the run's asynchronous adversary (0 under
            every synchronous schedule).  Part of a node's shared
            knowledge, like ``n`` and ``delta``: delay-aware programs
            (e.g. the sliced templates) stretch their round bounds by
            ``1 + phi`` so that slice boundaries outlast the slowest
            message.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: FrozenSet[int],
        n: int,
        d: int,
        delta: Optional[int],
        prediction: Any = None,
        attrs: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        phi: int = 0,
    ) -> None:
        self.node_id = node_id
        self.neighbors = frozenset(neighbors)
        self.n = n
        self.d = d
        self.delta = delta
        self.prediction = prediction
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.round = 0
        self.active_neighbors = set(self.neighbors)
        self.neighbor_outputs: Dict[int, Any] = {}
        self.crashed_neighbors: set = set()
        self.phi = phi
        self._seed = seed
        self._rng: Optional[random.Random] = None
        #: Per-node send-timeout override for the async schedule
        #: (``None`` = use the engine-wide default); see
        #: :meth:`set_send_timeout`.
        self._send_timeout: Optional[int] = None

        self._output: Any = _UNSET
        self._output_parts: Dict[Any, Any] = {}
        self._terminate_requested = False
        self.terminated = False
        self.termination_round: Optional[int] = None
        #: Earliest round this node asked to be woken in (engine-owned;
        #: ``None`` when no timed wakeup is pending).  See :meth:`wake_at`.
        self._wake_request: Optional[int] = None
        #: Neighbors sorted descending, built lazily on the first
        #: :meth:`is_local_maximum` call (non-dominance algorithms never
        #: pay for the sort).
        self._neighbors_desc: Optional[list] = None

    @property
    def rng(self) -> random.Random:
        """Per-node deterministic random stream, built on first use.

        The stream is seeded from ``(seed, node_id)`` exactly as before it
        became lazy, so randomized algorithms draw identical values; the
        paper's deterministic algorithms never touch it and no longer pay
        for its construction at setup.
        """
        if self._rng is None:
            self._rng = random.Random(f"{self._seed}:{self.node_id}")
        return self._rng

    # ------------------------------------------------------------------
    # Knowledge helpers
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Number of neighbors in the original graph."""
        return len(self.neighbors)

    def is_local_maximum(self) -> bool:
        """Whether this node's id exceeds every *active* neighbor's id.

        This is the symmetry-breaking test used throughout the paper's
        measure-uniform algorithms (Algorithm 1 and its relatives).
        Scanning neighbors in descending id order stops at the first id
        below our own — only the (typically few) higher-id neighbors need
        an activity check, instead of sweeping the whole active set.
        """
        desc = self._neighbors_desc
        if desc is None:
            desc = self._neighbors_desc = sorted(self.neighbors, reverse=True)
        node_id = self.node_id
        active = self.active_neighbors
        for other in desc:
            if other < node_id:
                return True
            if other in active:
                return False
        return True

    # ------------------------------------------------------------------
    # Output management
    # ------------------------------------------------------------------
    @property
    def output(self) -> Any:
        """The node's output: the scalar output, or the dict of parts."""
        if self._output is not _UNSET:
            return self._output
        if self._output_parts:
            return dict(self._output_parts)
        return None

    @property
    def has_output(self) -> bool:
        """Whether any output (scalar or part) has been assigned."""
        return self._output is not _UNSET or bool(self._output_parts)

    def set_output(self, value: Any) -> None:
        """Assign the node's (write-once) output value."""
        if self._output is not _UNSET:
            raise OutputAlreadySet(
                f"node {self.node_id} output already set to {self._output!r}"
            )
        if self._output_parts:
            raise OutputAlreadySet(
                f"node {self.node_id} already has per-part outputs"
            )
        self._output = value

    def set_output_part(self, key: Any, value: Any) -> None:
        """Assign one component of a multi-part output.

        Used by problems whose nodes output several values — e.g. in
        (2Δ−1)-Edge Coloring a node outputs one color per incident edge,
        possibly in different rounds (Section 8.3).
        """
        if self._output is not _UNSET:
            raise OutputAlreadySet(
                f"node {self.node_id} already has a scalar output"
            )
        if key in self._output_parts:
            raise OutputAlreadySet(
                f"node {self.node_id} output part {key!r} already set"
            )
        self._output_parts[key] = value

    def output_part(self, key: Any, default: Any = None) -> Any:
        """Read back a previously assigned output part."""
        return self._output_parts.get(key, default)

    def terminate(self) -> None:
        """Request termination at the end of the current round.

        Per the model, a node terminates immediately after assigning its
        last output; the engine records the round and deactivates the node
        once the round's processing completes.
        """
        self._terminate_requested = True

    @property
    def terminate_requested(self) -> bool:
        """Whether :meth:`terminate` was called this round (engine use)."""
        return self._terminate_requested

    # ------------------------------------------------------------------
    # Quiescence scheduling
    # ------------------------------------------------------------------
    def wake_at(self, round_index: int) -> None:
        """Ask the quiescence scheduler to run this node in ``round_index``.

        Programs that declare ``quiescent_when_idle = True`` are skipped in
        rounds where nothing observable can reach them; a timed wakeup is
        how such a program arranges to act at a known future round (the
        time-sliced templates use this for their switching rounds).
        Requests are merged by minimum, so the earliest requested round
        wins.  Calling this under the default eager schedule is a cheap
        no-op.  Waking *earlier* than needed is always safe — an idle
        program's round is a no-op by contract — but waking later than the
        program needed breaks the schedule, so when in doubt wake early.
        """
        if round_index <= self.round:
            raise ValueError(
                f"node {self.node_id}: wake_at({round_index}) is not in the "
                f"future (current round {self.round})"
            )
        if self._wake_request is None or round_index < self._wake_request:
            self._wake_request = round_index

    def request_wakeup(self, delay: int = 1) -> None:
        """Ask to be scheduled ``delay`` rounds from now (see :meth:`wake_at`)."""
        if delay < 1:
            raise ValueError(
                f"node {self.node_id}: request_wakeup delay must be >= 1, "
                f"got {delay}"
            )
        self.wake_at(self.round + delay)

    # ------------------------------------------------------------------
    # Asynchronous model (schedule="async")
    # ------------------------------------------------------------------
    def set_send_timeout(self, ticks: Optional[int]) -> None:
        """Arm (or disarm) this node's send timeout under ``schedule="async"``.

        When one of this node's sends is lost and a timeout is armed,
        the scheduler retransmits after ``ticks`` ticks with exponential
        backoff, up to the engine's ``max_retries``.  ``None`` restores
        the engine-wide default (``send_timeout=``, itself ``None`` —
        no retries — unless configured).  A no-op under every
        synchronous schedule, like :meth:`wake_at` under eager.
        """
        if ticks is not None and ticks < 1:
            raise ValueError(
                f"node {self.node_id}: send timeout must be >= 1 tick, "
                f"got {ticks}"
            )
        self._send_timeout = ticks
