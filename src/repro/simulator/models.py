"""Execution models: LOCAL and CONGEST.

The paper works primarily in the LOCAL model (unbounded messages) and notes
that some of its algorithms also fit CONGEST (messages of ``O(log n)``
bits).  An :class:`ExecutionModel` tells the engine what bandwidth budget a
message has; the engine records the widest message of each run so tests can
assert that an algorithm declared CONGEST-compatible stays within budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ExecutionModel:
    """A synchronous message-passing model.

    Attributes:
        name: Human-readable model name.
        bandwidth_factor: Messages may be at most
            ``bandwidth_factor * ceil(log2(n + 1))`` bits, or unbounded when
            ``None`` (the LOCAL model).
        strict: When true the engine raises on a bandwidth violation;
            otherwise violations are only recorded in the run metrics.
    """

    name: str
    bandwidth_factor: Optional[int] = None
    strict: bool = False

    def bandwidth_bits(self, n: int) -> Optional[int]:
        """Maximum message width in bits for an ``n``-node graph.

        Returns ``None`` when the model places no bound (LOCAL).
        """
        if self.bandwidth_factor is None:
            return None
        return self.bandwidth_factor * max(1, math.ceil(math.log2(n + 1)))

    def allows(self, message_bits: int, n: int) -> bool:
        """Whether a message of ``message_bits`` bits fits this model."""
        budget = self.bandwidth_bits(n)
        return budget is None or message_bits <= budget


#: The LOCAL model: unbounded bandwidth (Linial).
LOCAL = ExecutionModel(name="LOCAL", bandwidth_factor=None)

#: The CONGEST model: O(log n)-bit messages (Peleg).  The factor of 32
#: absorbs the constant hidden in O(log n); strictness is opt-in per run.
CONGEST = ExecutionModel(name="CONGEST", bandwidth_factor=32)


def strict_congest(factor: int = 32) -> ExecutionModel:
    """A CONGEST model that raises on bandwidth violations."""
    return ExecutionModel(name="CONGEST", bandwidth_factor=factor, strict=True)
