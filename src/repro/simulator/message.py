"""Message payloads and CONGEST bit accounting.

Messages exchanged by node programs are plain Python values (ints, strings,
tuples, dicts, ...).  For CONGEST-model accounting we need an estimate of
how many bits a payload would occupy on the wire; :func:`estimate_bits`
provides a conservative, deterministic estimate that matches the usual
conventions of the CONGEST literature (an identifier or a color costs
``O(log n)`` bits, a constant tag costs ``O(1)`` bits).
"""

from __future__ import annotations

import marshal
from typing import Any, Dict, Iterable

#: Bits charged for a structural separator (tuple slot, dict entry, ...).
_STRUCTURE_OVERHEAD_BITS = 2

#: Memo of container payload sizes, keyed by ``marshal`` serialization.
#: Algorithms send the same few tag tuples over and over (every JOIN, every
#: slice-tagged template message); caching by serialized bytes makes the
#: default (non-``fast``) accounting pay the structural walk once per
#: distinct payload.  ``marshal`` keys distinguish ``1``/``1.0``/``True``
#: (whose bit costs differ), unlike the values themselves under ``==``.
_BITS_CACHE: Dict[bytes, int] = {}

#: Cache entries are bounded so adversarial or high-entropy payload streams
#: cannot grow the memo without limit; on overflow the memo resets.
_BITS_CACHE_MAX = 65536

#: Bits charged per character of a string tag.  Tags in this repository are
#: short constant strings drawn from a per-algorithm alphabet, so charging a
#: byte per character keeps them O(1)-bit in spirit while staying honest
#: about longer payloads.
_BITS_PER_CHAR = 8


def _int_bits(value: int) -> int:
    """Bits to encode an integer (sign + magnitude, at least one bit)."""
    magnitude = abs(value)
    return max(1, magnitude.bit_length()) + (1 if value < 0 else 0)


def _iterable_bits(items: Iterable[Any]) -> int:
    total = 0
    for item in items:
        total += _STRUCTURE_OVERHEAD_BITS + estimate_bits(item)
    return total


def estimate_bits(payload: Any) -> int:
    """Estimate the wire size of ``payload`` in bits.

    The estimate is deterministic and compositional:

    * ``None`` and booleans cost 1 bit;
    * integers cost their binary length (plus a sign bit);
    * floats cost 64 bits;
    * strings cost 8 bits per character;
    * tuples, lists, sets, frozensets and dicts cost the sum of their
      elements plus a small per-element overhead.

    Unknown objects fall back to the size of their ``repr``; algorithms in
    this repository only ever send the types above.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return _int_bits(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, _BITS_PER_CHAR * len(payload))
    if isinstance(payload, (tuple, list, set, frozenset, dict)):
        # Containers are where the walk cost lives; scalars above are
        # cheaper to size than to hash.  Unmarshallable contents (custom
        # objects inside a tuple, say) skip the memo and walk every time.
        try:
            key = marshal.dumps(payload, 2)
        except (ValueError, TypeError):
            return _container_bits(payload)
        cached = _BITS_CACHE.get(key)
        if cached is None:
            if len(_BITS_CACHE) >= _BITS_CACHE_MAX:
                _BITS_CACHE.clear()
            cached = _BITS_CACHE[key] = _container_bits(payload)
        return cached
    return max(1, _BITS_PER_CHAR * len(repr(payload)))


def _container_bits(payload: Any) -> int:
    """Structural walk of a container payload (the uncached path)."""
    if isinstance(payload, (tuple, list)):
        return _iterable_bits(payload)
    if isinstance(payload, (set, frozenset)):
        return _iterable_bits(sorted(payload, key=repr))
    total = 0
    for key, value in payload.items():
        total += (
            _STRUCTURE_OVERHEAD_BITS + estimate_bits(key) + estimate_bits(value)
        )
    return total
