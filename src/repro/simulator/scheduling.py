"""The round-scheduling stage.

A :class:`Scheduler` decides *which* nodes run in a round and drives the
compose → deliver → process phases for them, delegating message policy to
the :class:`~repro.simulator.interpose.FaultInterposer`, message cost and
mailboxes to the :class:`~repro.simulator.transport.Transport`, and event
fan-out to the :class:`~repro.simulator.obs_dispatch.ObsDispatch`.  The
engine orchestrates rounds; it never special-cases a scheduling policy —
the three policies that used to be branches inside one monolithic round
loop are now three implementations of one protocol:

* :class:`EagerScheduler` — every active node, every round (the default).
* :class:`QuiescentScheduler` — runs only the wake-set of nodes whose
  programs can observably act, per the idle contract of
  :class:`~repro.simulator.program.NodeProgram` (``quiescent_when_idle``).
* :class:`QuiescentDebugScheduler` — executes eagerly while tracking the
  hypothetical wake-set and raises :class:`QuiescenceViolation` the
  moment a supposedly idle node acts.
* :class:`AsyncScheduler` — the asynchronous execution model: a seeded
  :class:`~repro.simulator.adversary.DelayAdversary` assigns each message
  a delivery delay of up to ``phi`` ticks, nodes fire on receipt rather
  than in lockstep, lost sends can be retransmitted with bounded backoff,
  and a stabilization detector quiesces the run when nothing can ever
  happen again.  At ``phi = 0`` with no send timeout it is bit-identical
  to the quiescent (and hence the eager) schedule.

Each scheduler provides a fused ``run_round`` and (where supported) a
split ``run_round_profiled`` that times compose/deliver/process/finalize
separately while staying observationally identical — same outputs, same
message counts, same event order.

Writing a new scheduler means subclassing :class:`Scheduler`, implementing
``run_round``, and wiring the wake hooks (``note_setup``, ``on_delivery``
bookkeeping, ``on_terminated``/``on_crashed``/``on_recovered``) if the
policy needs per-round wake state; see docs/ARCHITECTURE.md.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.simulator.adversary import DelayAdversary, RetryPolicy
from repro.simulator.context import NodeContext
from repro.simulator.interpose import DROPPED


class QuiescenceViolation(RuntimeError):
    """Raised under ``schedule="quiescent-debug"`` on an idle-contract break.

    A program that declares ``quiescent_when_idle = True`` promises that in
    rounds where nothing woke it (no message received last round, no
    neighbor event, no timed wakeup due) it neither sends, outputs, nor
    terminates.  The debug schedule executes every node eagerly while
    tracking the wake-set the quiescent schedule would have used, and
    raises this error the moment a supposedly idle node acts — the same
    divergence ``schedule="quiescent"`` would have silently introduced.
    """


class Scheduler:
    """Protocol for round-scheduling policies.

    A scheduler is bound to one engine run via :meth:`bind` and then
    drives every round through :meth:`run_round` (or
    :meth:`run_round_profiled` when the run profiles).  The remaining
    hooks let wake-tracking policies observe the lifecycle events that
    constitute wake conditions; the eager policy leaves them as no-ops so
    the default hot path carries no wake bookkeeping at all.

    Attributes:
        tracks_wakes: Whether the policy maintains wake-set state.
        supports_profile: Whether :meth:`run_round_profiled` exists.
        processed_last_round: Nodes the last executed round actually
            processed (``None`` means every active node) — keeps
            stuck-report inbox snapshots identical across schedules.
        quiesced: Whether the policy's stabilization detector concluded
            that nothing observable can ever happen again (only the
            async policy ever sets it); the engine turns it into a
            partial result instead of spinning to the round budget.
        is_async: Whether the policy implements the asynchronous model
            (and therefore honors ``phi``/``send_timeout``).
        handles_setup: Whether the policy runs round 0 itself via
            :meth:`run_setup` instead of the engine's per-node loop.
        uses_kernels: Whether the policy executes compiled
            whole-frontier kernels (:mod:`repro.kernels`) — the engine
            performs the kernel-capability handshake for such policies.
    """

    tracks_wakes = False
    supports_profile = True
    quiesced = False
    is_async = False
    handles_setup = False
    uses_kernels = False

    def __init__(self) -> None:
        self.rt: Any = None
        self.processed_last_round: Optional[set] = None

    @classmethod
    def capabilities(cls) -> Dict[str, Any]:
        """Introspectable capability record (see :func:`repro.schedules`)."""
        if cls.uses_kernels:
            from repro.kernels import available_kernels

            kernels: Tuple[str, ...] = available_kernels()
        else:
            kernels = ()
        return {
            "quiescence": cls.tracks_wakes,
            "async": cls.is_async,
            "profile": cls.supports_profile,
            "kernels": kernels,
        }

    def bind(self, rt: Any) -> None:
        """Attach the runtime (the engine) this scheduler drives."""
        self.rt = rt

    # -- wake-condition hooks (no-ops for the eager policy) -------------
    def note_setup(self, node: int, ctx: NodeContext) -> None:
        """A node finished its setup (round 0) with ``ctx`` state."""

    def on_terminated(self, node: int, neighbors: Any) -> None:
        """A node terminated at the end of a round."""

    def on_crashed(self, node: int, neighbors: Any) -> None:
        """A node crashed at the end of a round."""

    def on_recovered(
        self, node: int, ctx: NodeContext, program: Any
    ) -> None:
        """A crashed node rejoined at the start of a round."""

    def on_recovery_terminated(self, node: int) -> None:
        """A rejoined node terminated straight from its recovery setup."""

    # -- round execution ------------------------------------------------
    def run_setup(self) -> None:
        """Round 0 for policies with ``handles_setup = True``."""
        raise NotImplementedError

    def run_round(self, round_index: int) -> None:
        raise NotImplementedError

    def run_round_profiled(self, round_index: int) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Called once after the round loop, before result aggregation.

        Batched policies flush buffered per-node results here; the
        interpreted policies write through per round and need nothing.
        """

    def build_stuck_report(
        self, round_index: int, reason: str
    ) -> Optional[Any]:
        """Policy-built stuck report, or ``None`` to use the lifecycle's."""
        return None


class EagerScheduler(Scheduler):
    """Runs every active node every round (the default policy)."""

    def run_round(self, round_index: int) -> None:
        rt = self.rt
        rt.apply_recoveries(round_index)
        # Local bindings keep the per-round loops free of attribute churn;
        # the fault/sink hooks are skipped entirely when nothing is
        # installed, and the transport elides bandwidth accounting in
        # ``fast`` mode.
        active = rt._active
        order = rt._active_order
        programs = rt.programs
        contexts = rt.contexts
        transport = rt.transport
        inboxes = transport.inboxes
        deposit = transport.deposit
        emit = rt.obs.emit if rt.obs else None
        interposer = rt.interposer
        transport.round = round_index
        remote = transport.remote

        for node in order:
            inboxes[node].clear()
        if interposer is not None and interposer.has_pending_replays:
            interposer.deliver_replays(round_index, transport, active)

        # Compose phase: every active node decides its messages using state
        # from the end of the previous round.
        for node in order:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                # Messages to nodes that already terminated or crashed are
                # dropped: the recipient no longer participates.  (A sender
                # learns of a neighbor's termination only in the following
                # round, so such sends are legitimate.)  A receiver whose
                # mailbox lives on another shard is handed to the boundary
                # instead; the owning shard applies the same rules.
                if receiver not in active:
                    if receiver in remote:
                        transport.export(node, receiver, payload)
                    continue
                if interposer is not None:
                    payload = interposer.adjudicate(
                        round_index, node, receiver, payload
                    )
                    if payload is DROPPED:
                        continue
                deposit(node, receiver, payload)

        # Boundary barrier: merge cut messages before any node processes
        # (a no-op under the local transport).
        transport.sync(round_index, active)

        # Process phase: every active node consumes its inbox.
        for node in order:
            programs[node].process(contexts[node], inboxes[node])

        rt.finalize_round(round_index)

    def run_round_profiled(self, round_index: int) -> None:
        """One round with the compose/deliver split timed per phase.

        Observationally identical to :meth:`run_round` — same outputs,
        message counts, event order — but compose collects every outbox
        before any delivery, so the two phases can be timed separately.
        (Replays still land before fresh sends, and the inbox insertion
        order per receiver is unchanged because delivery walks nodes in
        the same order compose did.)
        """
        rt = self.rt
        profile = rt.obs.profile
        rt.apply_recoveries(round_index)
        active = rt._active
        order = rt._active_order
        programs = rt.programs
        contexts = rt.contexts
        transport = rt.transport
        inboxes = transport.inboxes
        deposit = transport.deposit
        emit = rt.obs.emit if rt.obs else None
        interposer = rt.interposer
        transport.round = round_index
        remote = transport.remote
        messages_before = rt.result.message_count
        participants = len(order)

        compose_start = perf_counter()
        outboxes: List[Tuple[int, Dict[int, Any]]] = []
        for node in order:
            inboxes[node].clear()
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver in outbox:
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
            outboxes.append((node, outbox))

        deliver_start = perf_counter()
        if interposer is not None and interposer.has_pending_replays:
            interposer.deliver_replays(round_index, transport, active)
        for node, outbox in outboxes:
            for receiver, payload in outbox.items():
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    if receiver in remote:
                        transport.export(node, receiver, payload)
                    continue
                if interposer is not None:
                    payload = interposer.adjudicate(
                        round_index, node, receiver, payload
                    )
                    if payload is DROPPED:
                        continue
                deposit(node, receiver, payload)
        transport.sync(round_index, active)

        process_start = perf_counter()
        for node in order:
            programs[node].process(contexts[node], inboxes[node])

        finalize_start = perf_counter()
        rt.finalize_round(round_index)
        finalize_end = perf_counter()
        profile.add_round(
            round_index,
            compose=deliver_start - compose_start,
            deliver=process_start - deliver_start,
            process=finalize_start - process_start,
            finalize=finalize_end - finalize_start,
            messages=rt.result.message_count - messages_before,
            active=participants,
        )


class QuiescentScheduler(Scheduler):
    """Runs only the wake-set: woken ∪ always-awake, active, sorted.

    Observationally identical to the eager policy under the idle
    contract: a node outside the wake-set would have composed an empty
    outbox and processed an empty inbox without acting, so skipping it
    changes no output, message, round count or event.  Nodes that
    *receive* a message this round are pulled into the process phase
    (and the next round's wake-set) even if they were asleep, exactly
    as the eager path would have processed them.
    """

    tracks_wakes = True

    def __init__(self) -> None:
        super().__init__()
        #: Nodes with a pending wake condition for the upcoming round
        #: (everyone before round 1, seeded in :meth:`bind`).
        self._next_wake: set = set()
        #: node -> earliest requested timed-wakeup round.
        self._timed_wake: Dict[int, int] = {}
        #: Nodes whose programs did not opt into quiescence.
        self._always_awake: set = set()

    def bind(self, rt: Any) -> None:
        super().bind(rt)
        self._next_wake = set(rt.graph.nodes)
        for node, program in rt.programs.items():
            if not getattr(program, "quiescent_when_idle", False):
                self._always_awake.add(node)

    # -- wake bookkeeping ----------------------------------------------
    def _collect_wake(self, node: int, ctx: NodeContext) -> None:
        """Fold a context's pending ``wake_at`` request into the schedule."""
        request = ctx._wake_request
        if request is not None:
            ctx._wake_request = None
            current = self._timed_wake.get(node)
            if current is None or request < current:
                self._timed_wake[node] = request

    def note_setup(self, node: int, ctx: NodeContext) -> None:
        self._collect_wake(node, ctx)

    def on_terminated(self, node: int, neighbors: Any) -> None:
        # Neighbors observe terminations from the next round on; under
        # quiescent scheduling that observation is a wake condition.
        self._next_wake.update(neighbors)

    def on_crashed(self, node: int, neighbors: Any) -> None:
        self._next_wake.update(neighbors)

    def on_recovered(self, node: int, ctx: NodeContext, program: Any) -> None:
        # The rejoined node starts fresh (round-1 semantics) and its
        # neighbors observe the recovery, so all of them are schedulable
        # this round; stale timed wakeups of the old incarnation die with
        # it.
        self._timed_wake.pop(node, None)
        self._next_wake.add(node)
        self._next_wake.update(ctx.neighbors)
        if getattr(program, "quiescent_when_idle", False):
            self._always_awake.discard(node)
        else:
            self._always_awake.add(node)
        self._collect_wake(node, ctx)

    def on_recovery_terminated(self, node: int) -> None:
        self._timed_wake.pop(node, None)
        self._next_wake.discard(node)
        self._always_awake.discard(node)

    def compute_wake_order(self, round_index: int) -> List[int]:
        """This round's compose schedule: woken ∪ always-awake, active,
        sorted.

        Consumes the accumulated wake-set and the due timed wakeups, and
        resets the wake-set so this round's events feed the next one.
        """
        wake = self._next_wake
        timed = self._timed_wake
        if timed:
            due = [node for node, when in timed.items() if when <= round_index]
            for node in due:
                del timed[node]
            wake.update(due)
        if self._always_awake:
            wake |= self._always_awake
        active = self.rt._active
        scheduled = sorted(node for node in wake if node in active)
        self._next_wake = set()
        return scheduled

    # -- round execution ------------------------------------------------
    def run_round(self, round_index: int) -> None:
        rt = self.rt
        rt.apply_recoveries(round_index)
        scheduled = self.compute_wake_order(round_index)
        next_wake = self._next_wake
        active = rt._active
        programs = rt.programs
        contexts = rt.contexts
        transport = rt.transport
        inboxes = transport.inboxes
        deposit = transport.deposit
        emit = rt.obs.emit if rt.obs else None
        interposer = rt.interposer
        transport.round = round_index
        remote = transport.remote
        #: Nodes to run in the process phase; sleeping nodes keep stale
        #: inboxes, cleared lazily when a delivery first wakes them.
        process_set = set(scheduled)

        for node in scheduled:
            inboxes[node].clear()
        if interposer is not None and interposer.has_pending_replays:
            interposer.deliver_replays(
                round_index, transport, active, awaken=process_set, wake=next_wake
            )

        for node in scheduled:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    if receiver in remote:
                        transport.export(node, receiver, payload)
                    continue
                if interposer is not None:
                    payload = interposer.adjudicate(
                        round_index, node, receiver, payload
                    )
                    if payload is DROPPED:
                        # The drop may have starved a waiter mid-protocol;
                        # waking the would-be receiver is harmless (an idle
                        # round is a no-op by contract) and keeps it live.
                        next_wake.add(receiver)
                        continue
                if receiver not in process_set:
                    inboxes[receiver].clear()
                    process_set.add(receiver)
                deposit(node, receiver, payload)
                next_wake.add(receiver)

        # Boundary barrier: inbound cut messages wake their receivers and
        # join the process phase exactly as local deliveries would have
        # (a no-op under the local transport).
        transport.sync(round_index, active, process_set, next_wake)

        if len(process_set) == len(scheduled):
            process_order: List[int] = scheduled
        else:
            process_order = sorted(process_set)
        for node in process_order:
            ctx = contexts[node]
            ctx.round = round_index
            programs[node].process(ctx, inboxes[node])
            self._collect_wake(node, ctx)
        self.processed_last_round = process_set
        rt.finalize_round(round_index, participants=process_order)

    def run_round_profiled(self, round_index: int) -> None:
        """Quiescent scheduling with the split, per-phase-timed round path.

        Wake-set computation is charged to the compose phase (it is the
        scheduler's overhead); everything else mirrors
        :meth:`EagerScheduler.run_round_profiled` restricted to the
        wake-set.
        """
        rt = self.rt
        profile = rt.obs.profile
        rt.apply_recoveries(round_index)
        active = rt._active
        programs = rt.programs
        contexts = rt.contexts
        transport = rt.transport
        inboxes = transport.inboxes
        deposit = transport.deposit
        emit = rt.obs.emit if rt.obs else None
        interposer = rt.interposer
        transport.round = round_index
        remote = transport.remote
        messages_before = rt.result.message_count
        participants = len(rt._active_order)

        compose_start = perf_counter()
        scheduled = self.compute_wake_order(round_index)
        next_wake = self._next_wake
        process_set = set(scheduled)
        outboxes: List[Tuple[int, Dict[int, Any]]] = []
        for node in scheduled:
            inboxes[node].clear()
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver in outbox:
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
            outboxes.append((node, outbox))

        deliver_start = perf_counter()
        if interposer is not None and interposer.has_pending_replays:
            interposer.deliver_replays(
                round_index, transport, active, awaken=process_set, wake=next_wake
            )
        for node, outbox in outboxes:
            for receiver, payload in outbox.items():
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    if receiver in remote:
                        transport.export(node, receiver, payload)
                    continue
                if interposer is not None:
                    payload = interposer.adjudicate(
                        round_index, node, receiver, payload
                    )
                    if payload is DROPPED:
                        next_wake.add(receiver)
                        continue
                if receiver not in process_set:
                    inboxes[receiver].clear()
                    process_set.add(receiver)
                deposit(node, receiver, payload)
                next_wake.add(receiver)
        transport.sync(round_index, active, process_set, next_wake)

        process_start = perf_counter()
        if len(process_set) == len(scheduled):
            process_order: List[int] = scheduled
        else:
            process_order = sorted(process_set)
        for node in process_order:
            ctx = contexts[node]
            ctx.round = round_index
            programs[node].process(ctx, inboxes[node])
            self._collect_wake(node, ctx)
        self.processed_last_round = process_set

        finalize_start = perf_counter()
        rt.finalize_round(round_index, participants=process_order)
        finalize_end = perf_counter()
        profile.add_round(
            round_index,
            compose=deliver_start - compose_start,
            deliver=process_start - deliver_start,
            process=finalize_start - process_start,
            finalize=finalize_end - finalize_start,
            messages=rt.result.message_count - messages_before,
            active=participants,
            scheduled=len(process_order),
        )


class QuiescentDebugScheduler(QuiescentScheduler):
    """Eager execution that polices the quiescence idle contract.

    Runs every active node (so state evolution matches the eager
    schedule exactly, including programs whose idle rounds mutate
    private counters) while maintaining the wake-set the quiescent
    schedule would have used; any observable action — a send, an
    output, a termination — by a node outside that set raises
    :class:`QuiescenceViolation`.
    """

    supports_profile = False

    def run_round(self, round_index: int) -> None:
        rt = self.rt
        rt.apply_recoveries(round_index)
        expected = set(self.compute_wake_order(round_index))
        next_wake = self._next_wake
        active = rt._active
        order = rt._active_order
        programs = rt.programs
        contexts = rt.contexts
        transport = rt.transport
        inboxes = transport.inboxes
        deposit = transport.deposit
        emit = rt.obs.emit if rt.obs else None
        interposer = rt.interposer
        transport.round = round_index
        remote = transport.remote

        for node in order:
            inboxes[node].clear()
        if interposer is not None and interposer.has_pending_replays:
            interposer.deliver_replays(
                round_index, transport, active, wake=next_wake
            )

        for node in order:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            if node not in expected:
                raise QuiescenceViolation(
                    f"node {node} ({type(programs[node]).__name__}) composed "
                    f"a non-empty outbox in round {round_index} while idle: "
                    f"schedule='quiescent' would have skipped this send"
                )
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    if receiver in remote:
                        transport.export(node, receiver, payload)
                    continue
                if interposer is not None:
                    payload = interposer.adjudicate(
                        round_index, node, receiver, payload
                    )
                    if payload is DROPPED:
                        next_wake.add(receiver)
                        continue
                deposit(node, receiver, payload)
                next_wake.add(receiver)
        transport.sync(round_index, active, None, next_wake)

        for node in order:
            ctx = contexts[node]
            inbox = inboxes[node]
            if node in expected or inbox:
                programs[node].process(ctx, inbox)
                self._collect_wake(node, ctx)
                continue
            before = (ctx.has_output, ctx.output)
            programs[node].process(ctx, inbox)
            self._collect_wake(node, ctx)
            if ctx.terminate_requested or (ctx.has_output, ctx.output) != before:
                raise QuiescenceViolation(
                    f"node {node} ({type(programs[node]).__name__}) "
                    f"{'terminated' if ctx.terminate_requested else 'assigned output'} "
                    f"in round {round_index} while idle: schedule='quiescent' "
                    f"would not have run it"
                )

        rt.finalize_round(round_index)


class AsyncScheduler(QuiescentScheduler):
    """The asynchronous execution model: delays, timeouts, stabilization.

    Builds on the quiescent wake machinery — a node fires exactly when
    something can observably reach it (a delivery, a neighbor event, a
    timed wakeup), which under asynchrony *is* fire-on-receipt — and
    relaxes lockstep delivery through three mechanisms:

    * **Adversarial delays** — every message that survives the fault
      interposer is handed to a :class:`~repro.simulator.adversary.
      DelayAdversary`; a message assigned delay ``delta > 0`` is parked
      in flight and lands at the start of tick ``tick + delta`` (waking
      its receiver), charged to the transport at delivery time.
    * **Send timeouts with bounded retry** — when the interposer drops a
      send and a send timeout is armed (engine-wide ``send_timeout`` or
      per-node ``ctx.set_send_timeout``), the sender retransmits after
      an exponential backoff (``timeout * 2**(attempt-1)`` ticks), up to
      ``max_retries`` times; the retransmission is re-adjudicated and
      re-delayed like any fresh send.
    * **Self-stabilizing recovery** — when active nodes remain but no
      wake condition, in-flight message, pending retry, replay or
      scheduled recovery exists anywhere, the scheduler pulses: it wakes
      every active node once (an idle round is a no-op by the quiescence
      contract, so the pulse is always safe).  A pulse that provokes no
      new activity proves the execution has *stabilized*; the scheduler
      sets :attr:`quiesced` and the engine ends the run with a partial
      result instead of spinning empty ticks to the round budget.

    At ``phi = 0`` with no send timeout every message lands in its send
    tick, no retry is ever armed and the stabilization detector stays
    dormant, so the execution is bit-identical — outputs, counters and
    the full event stream — to ``schedule="quiescent"`` (and therefore
    to eager; ``tests/test_engine_fuzz.py`` enforces this
    differentially).  Profiling is unsupported: with messages in flight
    the compose/deliver phase split of a tick is not well-defined.
    """

    supports_profile = False
    is_async = True

    def __init__(self) -> None:
        super().__init__()
        #: due tick -> [(sender, receiver, payload)] in dispatch order.
        self._in_flight: Dict[int, List[Tuple[int, int, Any]]] = {}
        #: due tick -> [(sender, receiver, payload, attempt)].
        self._retries: Dict[int, List[Tuple[int, int, Any, int]]] = {}
        self._adversary = DelayAdversary(0, 0)
        self._policy = RetryPolicy()
        #: Whether the previous tick was a stabilization pulse that has
        #: not yet provoked any activity.
        self._pulsed = False
        self.quiesced = False

    def bind(self, rt: Any) -> None:
        super().bind(rt)
        self._adversary = DelayAdversary(rt.phi, rt._seed)
        self._policy = RetryPolicy(rt.send_timeout, rt.max_retries)

    # -- async bookkeeping ----------------------------------------------
    def _has_future_work(self, round_index: int) -> bool:
        """Whether anything anywhere can still wake a node later."""
        if self._in_flight or self._retries or self._timed_wake:
            return True
        rt = self.rt
        interposer = rt.interposer
        if interposer is not None and interposer.has_pending_replays:
            return True
        return rt._has_pending_recoveries(round_index)

    def _dispatch(
        self,
        tick: int,
        sender: int,
        receiver: int,
        payload: Any,
        attempt: int,
        process_set: set,
        next_wake: set,
    ) -> None:
        """Route one composed (or retransmitted) message.

        Adjudicates faults, then either lands the message now (delay 0 —
        the synchronous path), parks it in flight (delay > 0), or — on a
        drop with a timeout armed — schedules a backoff retransmission
        of the *original* payload.
        """
        rt = self.rt
        interposer = rt.interposer
        if interposer is not None:
            adjudicated = interposer.adjudicate(tick, sender, receiver, payload)
            if adjudicated is DROPPED:
                next_wake.add(receiver)
                ctx_timeout = rt.contexts[sender]._send_timeout
                timeout = (
                    ctx_timeout
                    if ctx_timeout is not None
                    else self._policy.send_timeout
                )
                if timeout is not None:
                    due = self._policy.retry_due(tick, attempt + 1, timeout)
                    if due is not None:
                        self._retries.setdefault(due, []).append(
                            (sender, receiver, payload, attempt + 1)
                        )
                return
            payload = adjudicated
        delay = self._adversary.delay(tick, sender, receiver)
        if delay:
            rt.result.delayed_messages += 1
            if rt.obs:
                rt.obs.emit(
                    tick,
                    "delay",
                    sender,
                    {"to": receiver, "payload": payload, "delay": delay},
                )
            self._in_flight.setdefault(tick + delay, []).append(
                (sender, receiver, payload)
            )
            return
        transport = rt.transport
        if receiver not in process_set:
            transport.inboxes[receiver].clear()
            process_set.add(receiver)
        transport.deposit(sender, receiver, payload)
        next_wake.add(receiver)

    # -- round execution ------------------------------------------------
    def run_round(self, round_index: int) -> None:
        rt = self.rt
        rt.apply_recoveries(round_index)
        scheduled = self.compute_wake_order(round_index)
        next_wake = self._next_wake
        active = rt._active
        programs = rt.programs
        contexts = rt.contexts
        transport = rt.transport
        inboxes = transport.inboxes
        deposit = transport.deposit
        emit = rt.obs.emit if rt.obs else None
        interposer = rt.interposer
        live_async = (
            self._adversary.phi > 0 or self._policy.send_timeout is not None
        )

        if scheduled:
            self._pulsed = False
        elif live_async and active and not self._has_future_work(round_index):
            if self._pulsed:
                # A full pulse provoked nothing and nothing is in flight
                # anywhere: the execution has stabilized short of
                # termination.  Tell the engine instead of spinning.
                self.quiesced = True
                self.processed_last_round = set()
                rt.finalize_round(round_index, participants=[])
                return
            # Self-stabilizing recovery: wake everyone once.  An idle
            # round is a no-op under the quiescence contract, so the
            # pulse never perturbs a healthy execution.
            self._pulsed = True
            rt.result.recovery_pulses += 1
            if emit is not None:
                emit(round_index, "stabilize", -1, {"live": len(active)})
            scheduled = list(rt._active_order)

        process_set = set(scheduled)
        for node in scheduled:
            inboxes[node].clear()
        if interposer is not None and interposer.has_pending_replays:
            interposer.deliver_replays(
                round_index, transport, active, awaken=process_set, wake=next_wake
            )

        # Delayed messages due this tick land before fresh sends — they
        # are older traffic, the same precedence adversarial replays get.
        # A receiver that left the computation while the message was in
        # flight discards it, matching the synchronous rule for sends to
        # inactive nodes.
        due = self._in_flight.pop(round_index, None)
        if due is not None:
            for sender, receiver, payload in due:
                if receiver not in active:
                    continue
                if emit is not None:
                    emit(
                        round_index,
                        "deliver",
                        sender,
                        {"to": receiver, "payload": payload},
                    )
                if receiver not in process_set:
                    inboxes[receiver].clear()
                    process_set.add(receiver)
                deposit(sender, receiver, payload)
                next_wake.add(receiver)

        # Retransmissions whose backoff timer expires this tick.
        due_retries = self._retries.pop(round_index, None)
        if due_retries is not None:
            for sender, receiver, payload, attempt in due_retries:
                if sender not in active or receiver not in active:
                    continue
                rt.result.retried_messages += 1
                if emit is not None:
                    emit(
                        round_index,
                        "retry",
                        sender,
                        {"to": receiver, "payload": payload, "attempt": attempt},
                    )
                self._dispatch(
                    round_index, sender, receiver, payload, attempt,
                    process_set, next_wake,
                )

        for node in scheduled:
            ctx = contexts[node]
            ctx.round = round_index
            outbox = programs[node].compose(ctx)
            if not outbox:
                continue
            neighbors = ctx.neighbors
            for receiver, payload in outbox.items():
                if receiver not in neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if emit is not None:
                    emit(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                if receiver not in active:
                    continue
                self._dispatch(
                    round_index, node, receiver, payload, 0,
                    process_set, next_wake,
                )

        if len(process_set) == len(scheduled):
            process_order: List[int] = scheduled
        else:
            process_order = sorted(process_set)
        for node in process_order:
            ctx = contexts[node]
            ctx.round = round_index
            programs[node].process(ctx, inboxes[node])
            self._collect_wake(node, ctx)
        self.processed_last_round = process_set
        rt.finalize_round(round_index, participants=process_order)


class VectorizedScheduler(Scheduler):
    """Runs whole-frontier compiled kernels (:mod:`repro.kernels`).

    Instead of interpreting compose/deliver/process per node, every
    round executes as NumPy array operations over the run's CSR buffers
    — one :class:`~repro.kernels.base.FrontierKernel` per algorithm
    family, resolved by the engine's capability handshake at
    construction time (unsupported runs raise
    :class:`~repro.kernels.UnsupportedScheduleError` there, or fall
    back to the interpreted quiescent schedule under
    ``fallback="interpret"``).

    The kernel keeps the engine's ``_active`` set, result counters and
    per-node records bit-identical to the interpreted schedules
    (fuzz-checked in tests/test_vectorized.py); per-node record
    write-back is batched into :meth:`finish`, so the round loop does
    O(frontier) array work and no per-node Python at all.
    """

    handles_setup = True
    uses_kernels = True

    def __init__(self) -> None:
        super().__init__()
        self.kernel: Any = None

    def bind(self, rt: Any) -> None:
        self.rt = rt
        self.kernel = rt._kernel
        self.kernel.bind(rt)

    def run_setup(self) -> None:
        self.kernel.setup()

    def run_round(self, round_index: int) -> None:
        self.kernel.run_round(round_index)

    def run_round_profiled(self, round_index: int) -> None:
        """One timed kernel invocation per round.

        The interpreted phase split does not exist here; the whole
        round is charged to the ``kernel`` profile phase, and
        ``scheduled`` records how many nodes observably acted (the
        vectorized analogue of the quiescent wake-set size).
        """
        rt = self.rt
        profile = rt.obs.profile
        messages_before = rt.result.message_count
        active_before = len(rt._active)
        start = perf_counter()
        acted = self.kernel.run_round(round_index)
        elapsed = perf_counter() - start
        profile.add_round(
            round_index,
            compose=0.0,
            deliver=0.0,
            process=0.0,
            finalize=0.0,
            kernel=elapsed,
            messages=rt.result.message_count - messages_before,
            active=active_before,
            scheduled=int(acted),
        )

    def finish(self) -> None:
        self.kernel.flush()

    def build_stuck_report(self, round_index: int, reason: str) -> Any:
        return self.kernel.stuck_report(round_index, reason)


#: Registry mapping the public ``schedule=`` names to implementations.
SCHEDULERS = {
    "eager": EagerScheduler,
    "quiescent": QuiescentScheduler,
    "quiescent-debug": QuiescentDebugScheduler,
    "async": AsyncScheduler,
    "vectorized": VectorizedScheduler,
}


def schedule_capabilities() -> Dict[str, Dict[str, Any]]:
    """Name -> capability record for every registered schedule.

    The single source of truth behind :func:`repro.schedules` and the
    CLI's ``--schedule`` choices: a scheduler registered here is
    immediately selectable everywhere, with its capabilities
    (quiescence tracking, asynchrony, profiling support, compiled
    kernel availability) introspectable instead of hand-maintained.
    """
    return {name: cls.capabilities() for name, cls in SCHEDULERS.items()}
