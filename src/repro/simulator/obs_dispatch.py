"""The observability dispatch stage.

:class:`ObsDispatch` is the one place the runtime talks to observers: it
fans events out to every attached :class:`~repro.obs.events.EventSink`
(the :class:`~repro.simulator.trace.TraceRecorder` included — it is just
one sink) and owns the optional :class:`~repro.obs.profile.RoundProfile`.
The engine and the schedulers never iterate sinks themselves; they ask the
dispatch for a bound ``emit`` (or ``None`` when no sink is attached, so
the hot loops skip observability entirely — the zero-overhead-when-
detached contract of docs/OBSERVABILITY.md).

The ``run_begin`` meta names the run's transport stage (``"transport"``:
``"LocalTransport"`` for in-process mailboxes, ``"BoundaryTransport"``
for an edge-cut shard exchanging cut-crossing messages), so sinks can
tell shard-local streams apart from whole-graph ones.  Note that sweep
cells requesting structured events or traces are executed unsharded
(:func:`~repro.shard.plan.shard_mode` returns ``None`` for them) — a
``BoundaryTransport`` stream only appears when a sink is attached to a
shard engine directly.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.profile import RoundProfile


class ObsDispatch:
    """Fans run/round/event notifications out to the attached sinks.

    Args:
        sinks: Extra event sinks (may be empty).
        trace: The run's trace recorder, appended to the sink list when
            present (kept separate because it is also attached to the
            result).
        profile: ``None``/``False`` for no profiling, ``True`` for a fresh
            :class:`RoundProfile`, or a caller-provided profile to fill.
    """

    __slots__ = ("sinks", "profile")

    def __init__(
        self,
        sinks: Optional[Sequence[Any]] = None,
        trace: Optional[Any] = None,
        profile: Union[bool, RoundProfile, None] = None,
    ) -> None:
        sink_list: List[Any] = list(sinks) if sinks else []
        if trace is not None:
            sink_list.append(trace)
        #: Every attached sink (the trace recorder included), immutable.
        self.sinks: Tuple[Any, ...] = tuple(sink_list)
        if profile is None or profile is False:
            self.profile: Optional[RoundProfile] = None
        elif profile is True:
            self.profile = RoundProfile()
        else:
            self.profile = profile

    def __bool__(self) -> bool:
        """Whether any sink is attached (profiling alone does not count)."""
        return bool(self.sinks)

    # ------------------------------------------------------------------
    # Event fan-out
    # ------------------------------------------------------------------
    def emit(self, round_index: int, kind: str, node: int, data: Any = None) -> None:
        """Fan one event out to every attached sink."""
        for sink in self.sinks:
            sink.record(round_index, kind, node, data)

    # ------------------------------------------------------------------
    # Run / round lifecycle
    # ------------------------------------------------------------------
    def run_begin(self, meta: Mapping[str, Any]) -> None:
        for sink in self.sinks:
            sink.on_run_begin(meta)

    def round_begin(self, round_index: int, active: int) -> None:
        for sink in self.sinks:
            sink.on_round_begin(round_index, active)

    def round_end(self, round_index: int, info: Mapping[str, Any]) -> None:
        for sink in self.sinks:
            sink.on_round_end(round_index, info)

    def run_end(self, summary: Mapping[str, Any]) -> None:
        for sink in self.sinks:
            sink.on_run_end(summary)
