"""Run metrics: what a simulation measures.

The paper's performance measure is "the number of rounds until all
processes terminate" (Section 1); :class:`RunResult` records that number
together with per-node termination rounds, message/bit counts and CONGEST
bandwidth accounting, so that every quantitative claim in the paper can be
checked against an actual execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.simulator.models import ExecutionModel


@dataclass
class NodeRecord:
    """Per-node outcome of a run.

    Attributes:
        node_id: The node.
        output: The node's final output (``None`` if it crashed).
        termination_round: Round in which the node terminated (0 for
            termination during setup), or ``None`` if it never did.
        crashed: Whether fault injection removed the node.
    """

    node_id: int
    output: Any = None
    termination_round: Optional[int] = None
    crashed: bool = False


@dataclass
class RunResult:
    """Complete record of one synchronous execution.

    Attributes:
        outputs: Final output of every node that terminated.
        records: Per-node :class:`NodeRecord`.
        rounds: Number of rounds until all (non-crashed) nodes terminated —
            the paper's round complexity of the execution.
        message_count: Number of point-to-point messages delivered.
        total_bits: Sum of estimated message sizes.
        max_message_bits: Width of the largest single message.
        bandwidth_violations: Messages exceeding the model's budget.
        model: The execution model the run was accounted against.
    """

    outputs: Dict[int, Any] = field(default_factory=dict)
    records: Dict[int, NodeRecord] = field(default_factory=dict)
    rounds: int = 0
    message_count: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    bandwidth_violations: int = 0
    model: Optional[ExecutionModel] = None

    def termination_round(self, node_id: int) -> Optional[int]:
        """Round in which ``node_id`` terminated, or ``None``."""
        record = self.records.get(node_id)
        return record.termination_round if record else None

    @property
    def all_terminated(self) -> bool:
        """Whether every non-crashed node produced an output and stopped."""
        return all(
            record.crashed or record.termination_round is not None
            for record in self.records.values()
        )

    def congest_compatible(self, n: int) -> bool:
        """Whether every message of the run fit a CONGEST budget for ``n``."""
        from repro.simulator.models import CONGEST

        budget = CONGEST.bandwidth_bits(n)
        return budget is None or self.max_message_bits <= budget
