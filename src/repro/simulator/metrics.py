"""Run metrics: what a simulation measures.

The paper's performance measure is "the number of rounds until all
processes terminate" (Section 1); :class:`RunResult` records that number
together with per-node termination rounds, message/bit counts and CONGEST
bandwidth accounting, so that every quantitative claim in the paper can be
checked against an actual execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.simulator.models import ExecutionModel


@dataclass
class NodeRecord:
    """Per-node outcome of a run.

    Attributes:
        node_id: The node.
        output: The node's final output (``None`` if it crashed).
        termination_round: Round in which the node terminated (0 for
            termination during setup), or ``None`` if it never did.
        crashed: Whether fault injection removed the node (and it has not
            recovered since).
        recovery_round: Round in which the node last rejoined after a
            crash-with-recovery fault, or ``None`` if it never recovered.
    """

    node_id: int
    output: Any = None
    termination_round: Optional[int] = None
    crashed: bool = False
    recovery_round: Optional[int] = None


@dataclass
class NodeSnapshot:
    """State of one still-live node when a run was cut short.

    Attributes:
        node_id: The node.
        round: The last round the node participated in.
        last_inbox: The messages the node received in its last round
            (sender id -> payload).
        state: Shallow, ``repr``-ized snapshot of the node program's
            instance attributes — enough to see *where* a program is stuck
            without aliasing live state.
        has_output: Whether the node had assigned (parts of) its output.
    """

    node_id: int
    round: int
    last_inbox: Dict[int, Any] = field(default_factory=dict)
    state: Dict[str, str] = field(default_factory=dict)
    has_output: bool = False


@dataclass
class StuckReport:
    """Diagnosis of a run that hit its round budget under graceful mode.

    Produced by ``SyncEngine(..., on_round_limit="partial")`` instead of
    a :class:`~repro.simulator.engine.RoundLimitExceeded` exception, so
    that benchmarks under fault injection can *measure* degradation
    (which nodes are stuck, and how far everyone else got) rather than
    abort.

    Attributes:
        round: The last round that was executed (= the round budget).
        live_nodes: Nodes still active when the run was cut, sorted.
        total_nodes: Number of nodes in the instance.
        snapshots: Per-live-node :class:`NodeSnapshot`.
        reason: Why the run was cut short — ``"round-limit"`` (the round
            budget), ``"deadline"`` (the wall-clock budget of
            ``deadline_s``), or ``"stabilized"`` (the async scheduler's
            stabilization detector proved nothing can ever happen again).
    """

    round: int
    live_nodes: List[int] = field(default_factory=list)
    total_nodes: int = 0
    snapshots: Dict[int, NodeSnapshot] = field(default_factory=dict)
    reason: str = "round-limit"

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{len(self.live_nodes)}/{self.total_nodes} node(s) still live "
            f"after {self.round} round(s) [{self.reason}]: {self.live_nodes[:10]}"
        )


@dataclass
class RunResult:
    """Complete record of one synchronous execution.

    Attributes:
        outputs: Final output of every node that terminated.
        records: Per-node :class:`NodeRecord`.
        rounds: Number of rounds until all (non-crashed) nodes terminated —
            the paper's round complexity of the execution.  Under faults or
            partial runs this is the *last termination* round (0 when no
            node ever terminated); use :attr:`rounds_executed` to measure
            how long the engine actually ran.
        rounds_executed: Number of rounds the engine executed, regardless
            of terminations — well-defined even when every node crashed or
            the run was cut by ``stop_after`` / the round budget.
        message_count: Number of point-to-point messages delivered.
        total_bits: Sum of estimated message sizes.
        max_message_bits: Width of the largest single message.
        bandwidth_violations: Messages exceeding the model's budget.
        dropped_messages: Messages removed by a message adversary.
        duplicated_messages: Adversarial replay deliveries (a copy of a
            previous-round message delivered one round late).
        corrupted_messages: Messages whose payload an adversary mangled.
        delayed_messages: Messages the async delay adversary held in
            flight for at least one tick (``schedule="async"`` only).
        retried_messages: Retransmissions of lost sends fired by the
            async send-timeout machinery.
        recovery_pulses: Self-stabilization pulses the async scheduler
            injected to re-probe an apparently stalled execution.
        stuck: :class:`StuckReport` when the run was cut short in
            graceful mode (round budget, wall-clock deadline, or async
            stabilization — see ``StuckReport.reason``), else ``None``.
        model: The execution model the run was accounted against.
        trace: The :class:`~repro.simulator.trace.TraceRecorder` of the
            run when tracing was requested (``run(..., trace=True)``),
            else ``None``.
        profile: The :class:`~repro.obs.profile.RoundProfile` with
            per-round phase timings when profiling was requested
            (``run(..., profile=True)``), else ``None``.
        kernel: Name of the compiled whole-frontier kernel that executed
            the run under ``schedule="vectorized"`` (e.g.
            ``"greedy-mis"``), else ``None`` — including when a
            ``fallback="interpret"`` run downgraded to an interpreted
            schedule.
    """

    outputs: Dict[int, Any] = field(default_factory=dict)
    records: Dict[int, NodeRecord] = field(default_factory=dict)
    rounds: int = 0
    rounds_executed: int = 0
    message_count: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    bandwidth_violations: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    corrupted_messages: int = 0
    delayed_messages: int = 0
    retried_messages: int = 0
    recovery_pulses: int = 0
    stuck: Optional[StuckReport] = None
    model: Optional[ExecutionModel] = None
    trace: Optional[Any] = None
    profile: Optional[Any] = None
    kernel: Optional[str] = None

    def termination_round(self, node_id: int) -> Optional[int]:
        """Round in which ``node_id`` terminated, or ``None``."""
        record = self.records.get(node_id)
        return record.termination_round if record else None

    @property
    def all_terminated(self) -> bool:
        """Whether every non-crashed node produced an output and stopped."""
        return all(
            record.crashed or record.termination_round is not None
            for record in self.records.values()
        )

    def congest_compatible(self, n: int) -> bool:
        """Whether every message of the run fit a CONGEST budget for ``n``."""
        from repro.simulator.models import CONGEST

        budget = CONGEST.bandwidth_bits(n)
        return budget is None or self.max_message_bits <= budget
