"""The node-program interface.

Every algorithm in this repository — base algorithms, initialization
algorithms, measure-uniform algorithms, clean-up algorithms, reference
algorithms, and the four templates that combine them — is expressed as a
:class:`NodeProgram`: a per-node state machine driven by the synchronous
engine.  One fresh instance runs at each node; instances share nothing and
communicate only through messages, so no program can cheat by reading
global state.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.simulator.context import NodeContext

#: An outbox maps neighbor id -> payload for one round.
Outbox = Dict[int, Any]

#: An inbox maps sender id -> payload received this round.
Inbox = Dict[int, Any]


class NodeProgram:
    """Base class for per-node algorithm code.

    The engine drives each round in two steps that together realize the
    paper's synchronous round (Section 2):

    1. :meth:`compose` — using only state from previous rounds, produce the
       messages to send this round (possibly a different one per neighbor);
    2. :meth:`process` — receive this round's inbox, compute, optionally
       assign outputs via the context, and optionally terminate.

    :meth:`setup` runs once before round 1 and may already terminate the
    node (a "0-round" action, used e.g. by the edge-coloring
    measure-uniform algorithm on isolated nodes).

    Quiescence (the idle contract).  A program may set the class attribute
    ``quiescent_when_idle = True`` to opt into the engine's quiescence
    scheduler (``run(..., schedule="quiescent")``).  Doing so promises
    that in any round where the node is *idle* — it received no message in
    the previous round, no neighbor terminated/crashed/recovered since it
    last ran, and no timed wakeup (:meth:`NodeContext.wake_at` /
    :meth:`NodeContext.request_wakeup`) is due — the program is a no-op:

    * :meth:`compose` returns an empty outbox and mutates no state the
      node's observable behaviour depends on;
    * :meth:`process` with an empty inbox assigns no output, does not
      terminate, and mutates no such state.

    Under that contract the engine may skip the node's idle rounds
    entirely without changing outputs, round counts, message counts or
    event order.  A program whose acting rounds depend on the round
    *number* (parity, slice boundaries) must arm a timed wakeup while
    active, or it will sleep through its acting round.  Violations are
    detected loudly by ``schedule="quiescent-debug"``.
    """

    #: Opt-in flag for the quiescence scheduler (see the class docstring).
    #: ``False`` keeps the node scheduled every round, which is always
    #: correct.
    quiescent_when_idle = False

    def setup(self, ctx: NodeContext) -> None:
        """One-time initialization before the first round."""

    def compose(self, ctx: NodeContext) -> Outbox:
        """Return the messages to send this round, keyed by neighbor id."""
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Consume this round's inbox; may output and terminate."""


class IdleProgram(NodeProgram):
    """A program that terminates immediately with a fixed output.

    Useful as a stand-in in tests and as the behaviour of nodes that have
    nothing to do (e.g. an isolated node in a problem whose outputs live on
    edges).
    """

    def __init__(self, output: Any = None) -> None:
        self._output = output

    def setup(self, ctx: NodeContext) -> None:
        if self._output is not None:
            ctx.set_output(self._output)
        ctx.terminate()
