"""The node-program interface.

Every algorithm in this repository — base algorithms, initialization
algorithms, measure-uniform algorithms, clean-up algorithms, reference
algorithms, and the four templates that combine them — is expressed as a
:class:`NodeProgram`: a per-node state machine driven by the synchronous
engine.  One fresh instance runs at each node; instances share nothing and
communicate only through messages, so no program can cheat by reading
global state.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.simulator.context import NodeContext

#: An outbox maps neighbor id -> payload for one round.
Outbox = Dict[int, Any]

#: An inbox maps sender id -> payload received this round.
Inbox = Dict[int, Any]


class NodeProgram:
    """Base class for per-node algorithm code.

    The engine drives each round in two steps that together realize the
    paper's synchronous round (Section 2):

    1. :meth:`compose` — using only state from previous rounds, produce the
       messages to send this round (possibly a different one per neighbor);
    2. :meth:`process` — receive this round's inbox, compute, optionally
       assign outputs via the context, and optionally terminate.

    :meth:`setup` runs once before round 1 and may already terminate the
    node (a "0-round" action, used e.g. by the edge-coloring
    measure-uniform algorithm on isolated nodes).
    """

    def setup(self, ctx: NodeContext) -> None:
        """One-time initialization before the first round."""

    def compose(self, ctx: NodeContext) -> Outbox:
        """Return the messages to send this round, keyed by neighbor id."""
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Consume this round's inbox; may output and terminate."""


class IdleProgram(NodeProgram):
    """A program that terminates immediately with a fixed output.

    Useful as a stand-in in tests and as the behaviour of nodes that have
    nothing to do (e.g. an isolated node in a problem whose outputs live on
    edges).
    """

    def __init__(self, output: Any = None) -> None:
        self._output = output

    def setup(self, ctx: NodeContext) -> None:
        if self._output is not None:
            ctx.set_output(self._output)
        ctx.terminate()
