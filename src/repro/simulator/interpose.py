"""The fault-interposition stage.

A :class:`FaultInterposer` sits between the scheduler and the transport:
every composed message passes through :meth:`adjudicate` (drop / corrupt /
duplicate, per the controller's deterministic decisions) before the
transport may land it, and adversarial replays are flushed into mailboxes
at the start of each round's delivery.  It also fronts the controller's
crash/recovery schedule and prediction corruption, so the engine and the
schedulers talk to *one* fault surface instead of calling controller
hooks inline — faultless runs simply carry no interposer at all and pay
nothing.

The underlying controller is anything implementing the
:class:`~repro.faults.controller.FaultController` hook API; it is usually
built from a :class:`~repro.faults.plan.FaultPlan` by the engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.simulator.obs_dispatch import ObsDispatch
from repro.simulator.metrics import RunResult
from repro.simulator.transport import Transport

#: Sentinel for a message removed by the adversary.
DROPPED = object()


class FaultInterposer:
    """Interposes one fault controller in the compose/deliver path.

    Args:
        controller: The engine-facing fault controller (message fates,
            crash/recovery schedule, prediction corruption).
        result: The run's result record (drop/corrupt/duplicate counters).
        obs: The observability dispatch (fault events are observable).
    """

    __slots__ = ("controller", "result", "obs", "_pending_replays")

    def __init__(
        self, controller: Any, result: RunResult, obs: ObsDispatch
    ) -> None:
        self.controller = controller
        self.result = result
        self.obs = obs
        #: Adversarial replays scheduled for a later round:
        #: (due round, sender, receiver, payload).
        self._pending_replays: List[Tuple[int, int, int, Any]] = []

    # ------------------------------------------------------------------
    # Message path
    # ------------------------------------------------------------------
    def adjudicate(
        self, round_index: int, sender: int, receiver: int, payload: Any
    ) -> Any:
        """Run one message through the adversary; :data:`DROPPED` if lost."""
        fate = self.controller.message_fate(round_index, sender, receiver, payload)
        if fate.dropped:
            self.result.dropped_messages += 1
            if self.obs:
                self.obs.emit(
                    round_index, "drop", sender, {"to": receiver, "payload": payload}
                )
            return DROPPED
        if fate.corrupted:
            self.result.corrupted_messages += 1
            if self.obs:
                self.obs.emit(
                    round_index,
                    "corrupt",
                    sender,
                    {"to": receiver, "original": payload, "payload": fate.payload},
                )
        if fate.duplicate:
            self._pending_replays.append(
                (round_index + 1, sender, receiver, fate.payload)
            )
        return fate.payload

    @property
    def has_pending_replays(self) -> bool:
        """Whether any adversarial replay is still queued."""
        return bool(self._pending_replays)

    def deliver_replays(
        self,
        round_index: int,
        transport: Transport,
        active: set,
        awaken: Optional[set] = None,
        wake: Optional[set] = None,
    ) -> None:
        """Deliver adversarial replays due this round.

        Replays are inserted before fresh sends, so a fresh message from
        the same sender supersedes its own stale copy (the channel keeps
        at most one message per ordered pair per round).

        ``awaken`` is the quiescent schedule's process-set: a replay to a
        sleeping receiver clears its stale inbox and pulls it into this
        round's process phase, just as the eager path would have processed
        it.  ``wake`` is the next round's wake-set (when the scheduler
        tracks one): a replayed delivery is a wake condition like any
        other delivery.
        """
        if not self._pending_replays:
            return
        result = self.result
        obs = self.obs
        fast = transport.fast
        inboxes = transport.inboxes
        still_pending: List[Tuple[int, int, int, Any]] = []
        for due, sender, receiver, payload in self._pending_replays:
            if due != round_index:
                still_pending.append((due, sender, receiver, payload))
                continue
            if receiver not in active:
                continue
            result.duplicated_messages += 1
            if obs:
                obs.emit(
                    round_index,
                    "duplicate",
                    sender,
                    {"to": receiver, "payload": payload},
                )
            if fast:
                result.message_count += 1
            else:
                transport.account(payload)
            if awaken is not None and receiver not in awaken:
                inboxes[receiver].clear()
                awaken.add(receiver)
            if wake is not None:
                wake.add(receiver)
            inboxes[receiver][sender] = payload
        self._pending_replays = still_pending

    # ------------------------------------------------------------------
    # Crash / recovery schedule
    # ------------------------------------------------------------------
    def crashes_at(self, round_index: int) -> List[int]:
        """Nodes whose crash fault fires at the end of this round."""
        return self.controller.crashes_at(round_index)

    def recoveries_at(self, round_index: int) -> Iterable[int]:
        """Nodes rejoining at the start of this round."""
        return self.controller.recoveries_at(round_index)

    def last_recovery_round(self) -> Optional[int]:
        """Last round with a scheduled recovery, or ``None`` when the
        controller does not expose a recovery schedule at all."""
        last = getattr(self.controller, "last_recovery_round", None)
        if last is None:
            return None
        return last()

    # ------------------------------------------------------------------
    # Prediction adversary
    # ------------------------------------------------------------------
    def corrupt_predictions(
        self, predictions: Mapping[int, Any], nodes: Iterable[int]
    ) -> Dict[int, Any]:
        """Apply the controller's prediction corruption (setup time)."""
        return self.controller.corrupt_predictions(predictions, nodes)
