"""Execution tracing for debugging and fine-grained tests.

A :class:`TraceRecorder` attached to an engine run records every send,
output and termination with its round number.  Tests use traces to check
*when* something happened (e.g. that the MIS Base Algorithm's independent
set terminates in round 2 and its neighbors in round 3), not merely that
the final solution is correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.events import EventSink


@dataclass(frozen=True)
class TraceEvent:
    """One observable event of a run.

    Attributes:
        round: Round in which the event happened (0 = setup).
        kind: ``"send"``, ``"output"``, ``"terminate"``, ``"crash"``,
            ``"recover"``, or — under a message adversary — ``"drop"``,
            ``"corrupt"`` and ``"duplicate"``.  Every adversarial event
            references the *send* it acted on: a dropped or corrupted
            message still produces its ``"send"`` event first, and a
            ``"duplicate"`` marks the replay delivery one round later.
        node: The acting node (the sender, for message events).
        data: Event payload — for sends/drops/duplicates, ``{"to": ...,
            "payload": ...}``; for corruptions additionally
            ``"original"``; for outputs, ``{"value": ...}``; empty
            otherwise.
    """

    round: int
    kind: str
    node: int
    data: Any = None


class TraceRecorder(EventSink):
    """Collects :class:`TraceEvent` objects during a run.

    One :class:`~repro.obs.events.EventSink` implementation among others
    (the run/round lifecycle hooks are inherited no-ops, so the recorded
    stream contains exactly the :class:`TraceEvent` kinds); attach via
    ``run(..., trace=True)`` or alongside other sinks with
    ``run(..., sinks=[...])``.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, round_index: int, kind: str, node: int, data: Any = None) -> None:
        """Append one event (called by the engine)."""
        self.events.append(TraceEvent(round_index, kind, node, data))

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """All events of the given kind, in order."""
        return (event for event in self.events if event.kind == kind)

    def sends_in_round(self, round_index: int) -> List[TraceEvent]:
        """All send events of one round."""
        return [
            event
            for event in self.events
            if event.kind == "send" and event.round == round_index
        ]

    def termination_rounds(self) -> Dict[int, int]:
        """Map node -> round of its terminate event."""
        return {
            event.node: event.round for event in self.events if event.kind == "terminate"
        }

    def messages_between(self, sender: int, receiver: int) -> List[TraceEvent]:
        """All sends from ``sender`` to ``receiver``, in order."""
        return [
            event
            for event in self.events
            if event.kind == "send"
            and event.node == sender
            and event.data.get("to") == receiver
        ]

    def first_round_of(self, kind: str) -> Optional[int]:
        """Round of the first event of ``kind``, or ``None``."""
        for event in self.events:
            if event.kind == kind:
                return event.round
        return None
