"""The delay adversary of the asynchronous execution model.

Under ``schedule="async"`` the lockstep delivery assumption of Section 2
is relaxed: each message is handed to a :class:`DelayAdversary` that
assigns it a delivery delay of up to ``phi`` ticks (a *tick* is the
engine's global step; ``phi = 0`` recovers the synchronous model, where
every message arrives in the round it was sent).  This is the standard
φ-bounded asynchronous adversary: delivery order between distinct
channels is arbitrary within the bound, but no message is delayed
forever, so any synchronous algorithm still stabilizes within a factor
``1 + phi`` of its round bound.

Every decision is drawn from a fresh ``random.Random`` seeded with
``(seed, tick, sender, receiver)`` — the same keying discipline as
:meth:`repro.faults.controller.FaultController.message_fate` — so delays
are deterministic given the seed, independent of iteration order, and
reproducible across machines and schedulers.

:class:`RetryPolicy` is the sender-side half of the robustness story:
when a send is lost (the fault interposer dropped it) and the node has a
send timeout armed, the scheduler retransmits after
``timeout * 2**(attempt - 1)`` ticks — bounded exponential backoff — up
to ``max_retries`` times.  With no timeout armed (the default) a lost
message stays lost, exactly as in the synchronous fault model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["DelayAdversary", "RetryPolicy"]


class DelayAdversary:
    """Assigns each message a deterministic delivery delay in ``[0, phi]``.

    Args:
        phi: Upper bound (inclusive) on the delay, in ticks.  ``0`` makes
            the adversary a no-op: every message is delivered in the tick
            it was sent, which is exactly the synchronous model.
        seed: Base seed; the per-message stream is keyed by
            ``(seed, tick, sender, receiver)``, never by call order.
    """

    __slots__ = ("phi", "_seed")

    def __init__(self, phi: int = 0, seed: int = 0) -> None:
        if phi < 0:
            raise ValueError(f"phi must be non-negative, got {phi}")
        self.phi = phi
        self._seed = seed

    def delay(self, tick: int, sender: int, receiver: int) -> int:
        """The delay (in ticks) for one message on one channel.

        A message sent in ``tick`` with delay ``delta`` is delivered at
        the start of tick ``tick + delta`` (``delta = 0``: this very
        tick, before the receiver's process phase — synchronous timing).
        """
        if self.phi == 0:
            return 0
        rng = random.Random(f"{self._seed}:delay:{tick}:{sender}:{receiver}")
        return rng.randint(0, self.phi)

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"DelayAdversary(phi={self.phi})"


@dataclass(frozen=True)
class RetryPolicy:
    """Sender-side retransmission policy for lost messages.

    Attributes:
        send_timeout: Ticks a sender waits before retransmitting a lost
            message; ``None`` disables retries entirely (synchronous
            fault semantics — a dropped message stays dropped).
        max_retries: Maximum number of retransmissions per original send.
    """

    send_timeout: Optional[int] = None
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.send_timeout is not None and self.send_timeout < 1:
            raise ValueError(
                f"send_timeout must be >= 1 (ticks), got {self.send_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )

    def retry_due(self, tick: int, attempt: int, timeout: int) -> Optional[int]:
        """The tick attempt number ``attempt`` (1-based) fires at, or
        ``None`` when the retry budget is exhausted.

        Backoff is exponential: the first retry waits ``timeout`` ticks,
        the second ``2 * timeout``, the third ``4 * timeout``, ...
        """
        if attempt > self.max_retries:
            return None
        return tick + timeout * (2 ** (attempt - 1))
