"""The synchronous round-based execution engine (orchestrator).

:class:`SyncEngine` executes one :class:`~repro.simulator.program.
NodeProgram` per node under the model of Section 2 of the paper: rounds are
synchronous; in each round every active node composes messages (from its
state at the end of the previous round), all messages are delivered, then
every active node processes its inbox, may assign outputs, and may
terminate.  Messages a node sends in its final round are delivered normally
— the paper's "notifies its neighbors ... outputs ... and terminates".

After a node terminates, the engine exposes its output to its neighbors at
the start of the following round (``ctx.neighbor_outputs``) — exactly the
information and timing an explicit final-round notification message
provides, so composed algorithms (the Section 7 templates) stay faithful
without re-implementing the handshake.

The engine itself is a thin orchestrator over composable runtime stages
(docs/ARCHITECTURE.md has the full layer map): the shared
:class:`~repro.graphs.csr.CSRTopology` core, ``Transport`` (mailboxes +
bit accounting), ``Scheduler`` (eager / quiescent / quiescent-debug round
drive), ``FaultInterposer`` (the one fault surface; ``docs/MODEL.md``),
``NodeLifecycle`` (terminations, crashes, recoveries, stuck reports) and
``ObsDispatch`` (event fan-out + round profile).  The engine wires the
stages and owns the run loop; it contains no scheduling policy and no
message-path code.  ``on_round_limit="partial"`` turns a blown round
budget into a partial result carrying a ``StuckReport`` instead of an
exception, so benchmarks under faults can *measure* degradation.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.profile import RoundProfile
from repro.simulator.context import NodeContext
from repro.simulator.interpose import FaultInterposer
from repro.simulator.lifecycle import NodeLifecycle
from repro.simulator.metrics import NodeRecord, RunResult, StuckReport
from repro.simulator.models import LOCAL, ExecutionModel
from repro.simulator.obs_dispatch import ObsDispatch
from repro.simulator.program import NodeProgram
from repro.simulator.scheduling import SCHEDULERS, QuiescenceViolation
from repro.simulator.trace import TraceRecorder
from repro.simulator.transport import (
    BandwidthExceeded,
    LocalTransport,
    Transport,
)

__all__ = [
    "BandwidthExceeded",
    "QuiescenceViolation",
    "RoundLimitExceeded",
    "SyncEngine",
]


class RoundLimitExceeded(RuntimeError):
    """Raised when a run exceeds its round budget without terminating.

    Every algorithm in the paper has a finite worst-case round complexity;
    hitting this limit under fault-free execution always indicates a bug
    (e.g. deadlocked composition or a non-terminating wait).  Under fault
    injection it may instead mean the adversary starved the algorithm —
    pass ``on_round_limit="partial"`` to record that outcome instead of
    raising.
    """


ProgramSource = Union[Mapping[int, NodeProgram], Callable[[int], NodeProgram]]

#: Transport constructor signature the engine injects at build time:
#: ``(nodes, result, model, n, fast) -> Transport``.
TransportFactory = Callable[..., Transport]


class SyncEngine:
    """Runs node programs over a graph in synchronous rounds.

    Args:
        graph: A :class:`~repro.graphs.graph.DistGraph` (or any object with
            ``nodes``, ``neighbors(v)``, ``n``, ``d``, ``delta`` and
            ``node_attrs(v)``).
        programs: Either a mapping ``node -> NodeProgram`` or a factory
            ``node -> NodeProgram`` called once per node.
        predictions: Optional mapping ``node -> prediction`` handed to each
            node's context (the per-node prediction of Section 1.1).
        model: Execution model for bandwidth accounting.
        max_rounds: Round budget; defaults to ``8 * n + 64``.
        seed: Base seed for the per-node random streams.
        trace: Optional :class:`TraceRecorder` receiving every event
            (kept as a named argument because the recorder is attached
            to ``result.trace``; it is also just one sink).
        sinks: Additional :class:`~repro.obs.events.EventSink` objects
            receiving every event plus run/round lifecycle hooks with
            wall-clock and message deltas.  When neither sinks nor a
            trace are attached, the round loop does no observability
            work at all.
        profile: ``True`` (or a :class:`~repro.obs.profile.RoundProfile`
            to fill) records per-round compose/deliver/process/finalize
            phase timings on ``result.profile``, via a split round path
            that is observationally identical to the fused one.
        crash_rounds: Deprecated fault injection — mapping
            ``node -> round``; the node executes that round and then
            vanishes without output.  Use
            :meth:`repro.faults.plan.FaultPlan.crash_stop` instead.
        faults: A :class:`~repro.faults.plan.FaultPlan` (or any object
            with a ``build_controller()`` factory) describing crashes,
            crash-recovery, message adversaries and prediction
            corruption.  Passing a bare controller instance is
            deprecated and emits a :class:`DeprecationWarning`.
        on_round_limit: ``"raise"`` (default) raises
            :class:`RoundLimitExceeded` when the budget is blown;
            ``"partial"`` stops instead and returns the partial
            :class:`RunResult` with a populated ``stuck`` report.
        fast: Skip per-message bit-size estimation (``total_bits``,
            ``max_message_bits`` and CONGEST budget checks stay zero) for
            maximum throughput; ``message_count`` is still maintained.
            Outputs, round counts and termination records are identical
            to a normal run.
        schedule: Round-scheduling policy.  ``"eager"`` (default) runs
            every active node every round.  ``"quiescent"`` skips nodes
            whose programs declare ``quiescent_when_idle = True`` in
            rounds with no wake reason (mail, neighbor event, setup or
            recovery, timed wakeup via ``ctx.wake_at``), cutting frontier
            workloads from Θ(n · rounds) to Θ(total activity) while
            staying observationally identical.  ``"quiescent-debug"``
            executes eagerly but raises :class:`QuiescenceViolation` when
            an idle node acts.  ``"async"`` is the asynchronous execution
            model of docs/MODEL.md: messages are delayed up to ``phi``
            ticks by a seeded adversary, nodes fire on receipt, and a
            stabilization detector quiesces starved runs.
            ``"vectorized"`` executes compiled whole-frontier NumPy
            kernels (:mod:`repro.kernels`) over the CSR buffers instead
            of interpreting per-node programs — bit-identical outputs
            and counters for the registered greedy families, an order
            of magnitude faster at scale; unsupported runs raise
            :class:`~repro.kernels.UnsupportedScheduleError` (see
            ``fallback``).  See docs/PERFORMANCE.md.
        phi: Delay bound (ticks) for the ``"async"`` schedule's
            adversary; ``0`` (default) degenerates to synchronous
            delivery.  Only meaningful with ``schedule="async"``.
        send_timeout: Ticks an async sender waits before retransmitting
            a lost message (exponential backoff, ``max_retries``
            attempts); ``None`` (default) disables retries.  Only
            meaningful with ``schedule="async"``.
        max_retries: Retransmission budget per original send.
        deadline_s: Optional wall-clock budget (seconds) for the whole
            run.  A run that exceeds it stops *gracefully* — whatever
            ``on_round_limit`` says — and returns the partial result
            with a ``stuck`` report whose ``reason`` is ``"deadline"``,
            so a hung cell can never wedge a sweep or CI job.
        fallback: What to do when ``schedule="vectorized"`` cannot run
            this instance (no kernel for the program family, fault
            injection, event sinks, per-node program mappings).
            ``None`` (default) raises
            :class:`~repro.kernels.UnsupportedScheduleError`;
            ``"interpret"`` warns and downgrades to the interpreted
            ``"quiescent"`` schedule, which accepts any program.
        transport: Optional transport factory ``(nodes, result, model,
            n, fast) -> Transport``; ``None`` builds the default
            :class:`~repro.simulator.transport.LocalTransport`.  The
            edge-cut shard driver injects a
            :class:`~repro.simulator.transport.BoundaryTransport`
            bound to its coordinator here.
    """

    def __init__(
        self,
        graph: Any,
        programs: ProgramSource,
        *,
        predictions: Optional[Mapping[int, Any]] = None,
        model: ExecutionModel = LOCAL,
        max_rounds: Optional[int] = None,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        sinks: Optional[Sequence[Any]] = None,
        profile: Union[bool, RoundProfile, None] = None,
        crash_rounds: Optional[Mapping[int, int]] = None,
        faults: Optional[Any] = None,
        on_round_limit: str = "raise",
        fast: bool = False,
        schedule: str = "eager",
        phi: int = 0,
        send_timeout: Optional[int] = None,
        max_retries: int = 2,
        deadline_s: Optional[float] = None,
        fallback: Optional[str] = None,
        transport: Optional[TransportFactory] = None,
    ) -> None:
        if on_round_limit not in ("raise", "partial"):
            raise ValueError(
                f"on_round_limit must be 'raise' or 'partial', got {on_round_limit!r}"
            )
        if schedule not in SCHEDULERS:
            known = ", ".join(repr(name) for name in SCHEDULERS)
            raise ValueError(f"schedule must be one of {known}, got {schedule!r}")
        if phi < 0:
            raise ValueError(f"phi must be non-negative, got {phi}")
        if (phi or send_timeout is not None) and schedule != "async":
            raise ValueError(
                "phi= and send_timeout= belong to the asynchronous model; "
                f"pass schedule='async' (got schedule={schedule!r})"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        if fallback not in (None, "interpret"):
            raise ValueError(
                f"fallback must be None or 'interpret', got {fallback!r}"
            )
        if crash_rounds:
            warnings.warn(
                "crash_rounds= is deprecated; pass "
                "faults=FaultPlan.crash_stop({node: round, ...}) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.graph = graph
        self.model = model
        self.trace = trace
        #: The observability stage: event fan-out plus the round profile.
        self.obs = ObsDispatch(sinks=sinks, trace=trace, profile=profile)
        self.max_rounds = max_rounds if max_rounds is not None else 8 * graph.n + 64
        self.on_round_limit = on_round_limit
        self.fast = fast
        self.schedule = schedule
        #: Async-model knobs (read by the async scheduler at bind time;
        #: inert under every synchronous policy).
        self.phi = phi
        self.send_timeout = send_timeout
        self.max_retries = max_retries
        self.deadline_s = deadline_s
        #: The scheduling stage: which nodes run a round, and the
        #: compose/deliver/process drive.
        self._scheduler = SCHEDULERS[schedule]()
        if self.obs.profile is not None and not self._scheduler.supports_profile:
            raise ValueError(
                f"profiling is not supported with schedule={schedule!r}"
            )
        self._seed = seed
        #: The run's result record, shared with transport and interposer.
        self.result = RunResult(model=model)
        controller = self._resolve_faults(faults, crash_rounds)
        #: The fault stage, or ``None`` — faultless runs pay nothing.
        self.interposer: Optional[FaultInterposer] = (
            FaultInterposer(controller, self.result, self.obs)
            if controller is not None
            else None
        )
        predictions = dict(predictions or {})
        if self.interposer is not None and predictions:
            predictions = self.interposer.corrupt_predictions(
                predictions, sorted(graph.nodes)
            )
        self._predictions = predictions
        self._program_source = programs

        #: The compiled whole-frontier kernel when this run executes
        #: under ``schedule="vectorized"``, else ``None``.  Resolving it
        #: is the capability handshake: runs the kernels cannot
        #: reproduce bit-identically (faults, sinks, unregistered
        #: program families, per-node mappings) raise
        #: ``UnsupportedScheduleError`` here — or, under
        #: ``fallback="interpret"``, warn and downgrade to the
        #: interpreted quiescent schedule, which accepts any program.
        self._kernel = None
        if self._scheduler.uses_kernels:
            from repro.kernels import UnsupportedScheduleError, resolve_kernel

            try:
                self._kernel = resolve_kernel(self, programs)
            except UnsupportedScheduleError as exc:
                if fallback != "interpret":
                    raise
                warnings.warn(
                    f"schedule='vectorized' cannot run this instance "
                    f"({exc}); falling back to the interpreted "
                    f"'quiescent' schedule",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.schedule = schedule = "quiescent"
                self._scheduler = SCHEDULERS[schedule]()

        self.programs: Dict[int, NodeProgram] = {}
        self.contexts: Dict[int, NodeContext] = {}
        if self._kernel is None:
            # The kernel path never touches per-node programs/contexts/
            # inboxes; skipping them keeps construction O(1) per node in
            # arrays rather than Python objects at n ≈ 10⁶.
            for node in sorted(graph.nodes):
                if callable(programs):
                    program = programs(node)
                else:
                    program = programs[node]
                self.programs[node] = program
                self.contexts[node] = self._build_context(node)

        self._active = set(self.graph.nodes)
        #: Sorted view of ``_active``, rebuilt only when membership changes
        #: (terminations, crashes, recoveries) instead of thrice per round.
        self._active_order: List[int] = sorted(self._active)
        for node in self.graph.nodes:
            self.result.records[node] = NodeRecord(node_id=node)
        #: The transport stage: mailboxes, delivery and bit accounting.
        #: Injected — :class:`~repro.simulator.transport.LocalTransport`
        #: unless the caller (e.g. the edge-cut shard driver) provides a
        #: factory with the same ``(nodes, result, model, n, fast)``
        #: signature.
        factory = LocalTransport if transport is None else transport
        self.transport = factory(
            self.graph.nodes if self._kernel is None else (),
            self.result,
            model,
            graph.n,
            fast,
        )
        #: The lifecycle stage: terminations, crashes, recoveries.
        self._lifecycle = NodeLifecycle(self)
        self._scheduler.bind(self)

    # -- compat: pre-layering attribute names -----------------------------
    @property
    def _sinks(self) -> Tuple[Any, ...]:
        return self.obs.sinks

    @property
    def _profile(self) -> Optional[RoundProfile]:
        return self.obs.profile

    @property
    def _result(self) -> RunResult:
        return self.result

    @staticmethod
    def _resolve_faults(
        faults: Optional[Any], crash_rounds: Optional[Mapping[int, int]]
    ) -> Optional[Any]:
        """Normalize ``faults``/``crash_rounds`` into one controller."""
        controller = None
        if faults is not None:
            if hasattr(faults, "build_controller"):
                controller = faults.build_controller()
            else:
                warnings.warn(
                    "passing a bare fault controller as faults= is deprecated; "
                    "pass a FaultPlan (or any object with a build_controller() "
                    "factory) instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
                controller = faults
        if crash_rounds:
            if controller is None:
                # Imported here: the simulator package must stay importable
                # without repro.faults (which itself imports the simulator).
                from repro.faults.plan import FaultPlan

                controller = FaultPlan.from_crash_rounds(crash_rounds).build_controller()
            else:
                controller.add_crash_rounds(crash_rounds)
        return controller

    def _build_context(self, node: int) -> NodeContext:
        return NodeContext(
            node_id=node,
            neighbors=frozenset(self.graph.neighbors(node)),
            n=self.graph.n,
            d=self.graph.d,
            delta=self.graph.delta,
            prediction=self._predictions.get(node),
            attrs=self.graph.node_attrs(node),
            seed=self._seed,
            phi=self.phi,
        )

    # ------------------------------------------------------------------
    def run(self, stop_after: Optional[int] = None) -> RunResult:
        """Execute until every node terminates (or faults/limits stop it).

        With ``stop_after``, execute at most that many rounds and return
        the partial record without raising — how tests observe the partial
        solution a bounded component (e.g. a base algorithm) leaves behind.
        """
        obs = self.obs
        profile = obs.profile
        result = self.result
        if obs:
            obs.run_begin(
                {
                    "n": self.graph.n,
                    "model": getattr(self.model, "name", str(self.model)),
                    "max_rounds": self.max_rounds,
                    "seed": self._seed,
                    "fast": self.fast,
                    "transport": type(self.transport).__name__,
                }
            )
        if profile is not None:
            setup_start = perf_counter()
            self._setup_phase()
            profile.setup = perf_counter() - setup_start
        else:
            self._setup_phase()
        run_round = (
            self._scheduler.run_round_profiled
            if profile is not None
            else self._scheduler.run_round
        )
        round_index = 0
        run_deadline = (
            None if self.deadline_s is None else perf_counter() + self.deadline_s
        )
        while self._active or self._has_pending_recoveries(round_index):
            if stop_after is not None and round_index >= stop_after:
                break
            if run_deadline is not None and perf_counter() >= run_deadline:
                # Wall-clock deadlines always degrade gracefully: a hung
                # cell must never wedge a sweep, whatever on_round_limit
                # says about round budgets.
                result.stuck = self._build_stuck_report(
                    round_index, reason="deadline"
                )
                break
            if round_index >= self.max_rounds:
                if self.on_round_limit == "partial":
                    result.stuck = self._build_stuck_report(round_index)
                    break
                raise RoundLimitExceeded(
                    f"{len(self._active)} node(s) still active after "
                    f"{self.max_rounds} rounds: {sorted(self._active)[:10]}"
                )
            round_index += 1
            if obs:
                obs.round_begin(round_index, len(self._active))
                round_start = perf_counter()
                messages_before = result.message_count
            run_round(round_index)
            if obs:
                obs.round_end(
                    round_index,
                    {
                        "elapsed": perf_counter() - round_start,
                        "messages": result.message_count - messages_before,
                        "active": len(self._active),
                    },
                )
            if self._scheduler.quiesced and self._active:
                # The async stabilization detector proved nothing can
                # ever happen again; stop instead of spinning empty
                # ticks to the round budget.
                if self.on_round_limit != "partial":
                    raise RoundLimitExceeded(
                        f"{len(self._active)} node(s) stabilized without "
                        f"terminating after {round_index} rounds: "
                        f"{sorted(self._active)[:10]}"
                    )
                result.stuck = self._build_stuck_report(
                    round_index, reason="stabilized"
                )
                break
        # Batched schedulers (vectorized kernels) write their buffered
        # per-node outcomes into ``result`` here; interpreted schedulers
        # already wrote through and this is a no-op.
        self._scheduler.finish()
        result.rounds_executed = round_index
        result.rounds = max(
            (
                record.termination_round
                for record in result.records.values()
                if record.termination_round is not None
            ),
            default=0,
        )
        result.profile = profile
        if obs:
            obs.run_end(
                {
                    "rounds": result.rounds,
                    "rounds_executed": result.rounds_executed,
                    "messages": result.message_count,
                    "dropped": result.dropped_messages,
                    "terminated": sum(
                        1
                        for record in result.records.values()
                        if record.termination_round is not None
                    ),
                    "stuck": result.stuck is not None,
                }
            )
        return result

    def _has_pending_recoveries(self, round_index: int) -> bool:
        """Whether a crashed node is still scheduled to rejoin later.

        Keeps the run alive across a window in which *every* node is
        momentarily crashed but recoveries are due.
        """
        if self.interposer is None:
            return False
        due = self.interposer.last_recovery_round()
        if due is None:
            return False
        # A rejoin beyond the round budget can never fire; ignore it.
        return round_index < due <= self.max_rounds

    # ------------------------------------------------------------------
    def _setup_phase(self) -> None:
        scheduler = self._scheduler
        if scheduler.handles_setup:
            scheduler.run_setup()
            return
        for node in self._active_order:
            ctx = self.contexts[node]
            ctx.round = 0
            self.programs[node].setup(ctx)
            scheduler.note_setup(node, ctx)
        self.finalize_round(0)

    def apply_recoveries(self, round_index: int) -> None:
        """Rejoin crash-with-recovery nodes (lifecycle stage delegator)."""
        self._lifecycle.apply_recoveries(round_index)

    def finalize_round(
        self, round_index: int, participants: Optional[List[int]] = None
    ) -> None:
        """Apply terminations/crashes and publish neighbor updates.

        Delegates to the lifecycle stage; ``participants`` (sorted)
        restricts the termination scan to the nodes the quiescent schedule
        actually ran this round.
        """
        self._lifecycle.finalize_round(round_index, participants)

    def _build_stuck_report(
        self, round_index: int, reason: str = "round-limit"
    ) -> StuckReport:
        report = self._scheduler.build_stuck_report(round_index, reason)
        if report is not None:
            return report
        return self._lifecycle.build_stuck_report(round_index, reason=reason)
