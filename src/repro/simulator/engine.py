"""The synchronous round-based execution engine.

:class:`SyncEngine` executes one :class:`~repro.simulator.program.
NodeProgram` per node under the model of Section 2 of the paper: rounds are
synchronous; in each round every active node composes messages (from its
state at the end of the previous round), all messages are delivered, then
every active node processes its inbox, may assign outputs, and may
terminate.  Messages a node sends in its final round are delivered normally
— the paper's "notifies its neighbors ... outputs ... and terminates".

After a node terminates, the engine exposes its output to its neighbors at
the start of the following round (``ctx.neighbor_outputs``), which is
exactly the information and the timing an explicit final-round notification
message provides.  This keeps composed algorithms (the templates of
Section 7) faithful to the paper without every component re-implementing
the notification handshake.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.simulator.context import NodeContext
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import NodeRecord, RunResult
from repro.simulator.models import LOCAL, ExecutionModel
from repro.simulator.program import NodeProgram
from repro.simulator.trace import TraceRecorder


class RoundLimitExceeded(RuntimeError):
    """Raised when a run exceeds its round budget without terminating.

    Every algorithm in the paper has a finite worst-case round complexity;
    hitting this limit always indicates a bug (e.g. deadlocked composition
    or a non-terminating wait).
    """


class BandwidthExceeded(RuntimeError):
    """Raised in strict CONGEST mode when a message exceeds the budget."""


ProgramSource = Union[Mapping[int, NodeProgram], Callable[[int], NodeProgram]]


class SyncEngine:
    """Runs node programs over a graph in synchronous rounds.

    Args:
        graph: A :class:`~repro.graphs.graph.DistGraph` (or any object with
            ``nodes``, ``neighbors(v)``, ``n``, ``d``, ``delta`` and
            ``node_attrs(v)``).
        programs: Either a mapping ``node -> NodeProgram`` or a factory
            ``node -> NodeProgram`` called once per node.
        predictions: Optional mapping ``node -> prediction`` handed to each
            node's context (the per-node prediction of Section 1.1).
        model: Execution model for bandwidth accounting.
        max_rounds: Round budget; defaults to ``8 * n + 64``.
        seed: Base seed for the per-node random streams.
        trace: Optional :class:`TraceRecorder` receiving every event.
        crash_rounds: Optional fault injection — mapping ``node -> round``;
            the node executes that round and then vanishes without output.
    """

    def __init__(
        self,
        graph: Any,
        programs: ProgramSource,
        *,
        predictions: Optional[Mapping[int, Any]] = None,
        model: ExecutionModel = LOCAL,
        max_rounds: Optional[int] = None,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        crash_rounds: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.trace = trace
        self.max_rounds = max_rounds if max_rounds is not None else 8 * graph.n + 64
        self._crash_rounds = dict(crash_rounds or {})
        predictions = predictions or {}

        self.programs: Dict[int, NodeProgram] = {}
        self.contexts: Dict[int, NodeContext] = {}
        for node in sorted(graph.nodes):
            if callable(programs):
                program = programs(node)
            else:
                program = programs[node]
            self.programs[node] = program
            self.contexts[node] = NodeContext(
                node_id=node,
                neighbors=frozenset(graph.neighbors(node)),
                n=graph.n,
                d=graph.d,
                delta=graph.delta,
                prediction=predictions.get(node),
                attrs=graph.node_attrs(node),
                seed=seed,
            )

        self._active = set(self.graph.nodes)
        self._result = RunResult(model=model)
        for node in self.graph.nodes:
            self._result.records[node] = NodeRecord(node_id=node)

    # ------------------------------------------------------------------
    def run(self, stop_after: Optional[int] = None) -> RunResult:
        """Execute until every node terminates (or faults/limits stop it).

        With ``stop_after``, execute at most that many rounds and return
        the partial record without raising — how tests observe the partial
        solution a bounded component (e.g. a base algorithm) leaves behind.
        """
        self._setup_phase()
        round_index = 0
        while self._active:
            if stop_after is not None and round_index >= stop_after:
                break
            round_index += 1
            if round_index > self.max_rounds:
                raise RoundLimitExceeded(
                    f"{len(self._active)} node(s) still active after "
                    f"{self.max_rounds} rounds: {sorted(self._active)[:10]}"
                )
            self._run_round(round_index)
        self._result.rounds = max(
            (
                record.termination_round
                for record in self._result.records.values()
                if record.termination_round is not None
            ),
            default=0,
        )
        return self._result

    # ------------------------------------------------------------------
    def _setup_phase(self) -> None:
        for node in sorted(self._active):
            ctx = self.contexts[node]
            ctx.round = 0
            self.programs[node].setup(ctx)
        self._finalize_round(0)

    def _run_round(self, round_index: int) -> None:
        inboxes: Dict[int, Dict[int, Any]] = {node: {} for node in self._active}

        # Compose phase: every active node decides its messages using state
        # from the end of the previous round.
        for node in sorted(self._active):
            ctx = self.contexts[node]
            ctx.round = round_index
            outbox = self.programs[node].compose(ctx) or {}
            for receiver, payload in outbox.items():
                if receiver not in ctx.neighbors:
                    raise ValueError(
                        f"node {node} sent to non-neighbor {receiver} "
                        f"in round {round_index}"
                    )
                if self.trace is not None:
                    self.trace.record(
                        round_index, "send", node, {"to": receiver, "payload": payload}
                    )
                # Messages to nodes that already terminated or crashed are
                # dropped: the recipient no longer participates.  (A sender
                # learns of a neighbor's termination only in the following
                # round, so such sends are legitimate.)
                if receiver not in self._active:
                    continue
                self._account_message(payload)
                inboxes[receiver][node] = payload

        # Process phase: every active node consumes its inbox.
        for node in sorted(self._active):
            self.programs[node].process(self.contexts[node], inboxes[node])

        self._finalize_round(round_index)

    def _account_message(self, payload: Any) -> None:
        bits = estimate_bits(payload)
        self._result.message_count += 1
        self._result.total_bits += bits
        self._result.max_message_bits = max(self._result.max_message_bits, bits)
        if not self.model.allows(bits, self.graph.n):
            self._result.bandwidth_violations += 1
            if self.model.strict:
                raise BandwidthExceeded(
                    f"{bits}-bit message exceeds "
                    f"{self.model.bandwidth_bits(self.graph.n)}-bit budget"
                )

    def _finalize_round(self, round_index: int) -> None:
        terminated = [
            node
            for node in sorted(self._active)
            if self.contexts[node].terminate_requested
        ]
        crashed = [
            node
            for node in sorted(self._active)
            if self._crash_rounds.get(node) == round_index
            and node not in terminated
        ]

        for node in terminated:
            ctx = self.contexts[node]
            ctx.terminated = True
            ctx.termination_round = round_index
            record = self._result.records[node]
            record.output = ctx.output
            record.termination_round = round_index
            self._result.outputs[node] = ctx.output
            self._active.discard(node)
            if self.trace is not None:
                self.trace.record(round_index, "output", node, {"value": ctx.output})
                self.trace.record(round_index, "terminate", node)

        for node in crashed:
            self._result.records[node].crashed = True
            self._active.discard(node)
            if self.trace is not None:
                self.trace.record(round_index, "crash", node)

        # Neighbors observe terminations/crashes from the next round on —
        # the same timing as the paper's explicit final-round notification.
        for node in terminated:
            output = self.contexts[node].output
            for neighbor in self.contexts[node].neighbors:
                neighbor_ctx = self.contexts[neighbor]
                neighbor_ctx.active_neighbors.discard(node)
                neighbor_ctx.neighbor_outputs[node] = output
        for node in crashed:
            for neighbor in self.contexts[node].neighbors:
                neighbor_ctx = self.contexts[neighbor]
                neighbor_ctx.active_neighbors.discard(node)
                neighbor_ctx.crashed_neighbors.add(node)
