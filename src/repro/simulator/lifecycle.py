"""The node-lifecycle stage: terminations, crashes, recoveries, stuck state.

:class:`NodeLifecycle` owns every transition of a node's participation
status — it applies terminations and adversarial crashes at the end of a
round (publishing outputs / crash marks to neighbor contexts with the
paper's one-round observation delay), rejoins crash-with-recovery nodes at
the start of one, and snapshots live nodes into a
:class:`~repro.simulator.metrics.StuckReport` when a run blows its round
budget under ``on_round_limit="partial"``.

It is bound to the engine runtime (the same ``rt`` handle the schedulers
drive) and is the only layer that mutates ``rt._active`` /
``rt._active_order`` or writes termination/crash fields of the
:class:`~repro.simulator.metrics.RunResult` records.  Schedulers reach it
through the engine's ``finalize_round`` / ``apply_recoveries`` delegators,
so scheduling policy and lifecycle bookkeeping stay decoupled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.simulator.metrics import NodeSnapshot, StuckReport


class NodeLifecycle:
    """Applies node participation transitions for one engine run."""

    __slots__ = ("rt",)

    def __init__(self, rt: Any) -> None:
        self.rt = rt

    def finalize_round(
        self, round_index: int, participants: Optional[List[int]] = None
    ) -> None:
        """Apply terminations/crashes and publish neighbor updates.

        ``participants`` (sorted) restricts the termination scan to the
        nodes the quiescent schedule actually ran this round — a node that
        was not run cannot have requested termination, so the restriction
        finds exactly the set the full scan would, in the same order,
        without the Θ(active) sweep.  Crashes are adversarial, not program
        actions, so they are drawn from the fault schedule regardless.
        """
        rt = self.rt
        contexts = rt.contexts
        if participants is None:
            candidates = rt._active_order
        else:
            candidates = participants
        terminated = [
            node for node in candidates if contexts[node].terminate_requested
        ]
        if rt.interposer is not None:
            crash_now = rt.interposer.crashes_at(round_index)
            if participants is None:
                crash_set = set(crash_now)
                crashed = [
                    node
                    for node in rt._active_order
                    if node in crash_set and node not in terminated
                ]
            else:
                terminated_set = set(terminated)
                # crashes_at is sorted, so this matches the eager order.
                crashed = [
                    node
                    for node in crash_now
                    if node in rt._active and node not in terminated_set
                ]
        else:
            crashed = []

        obs = rt.obs
        result = rt.result
        for node in terminated:
            ctx = contexts[node]
            ctx.terminated = True
            ctx.termination_round = round_index
            record = result.records[node]
            record.output = ctx.output
            record.termination_round = round_index
            result.outputs[node] = ctx.output
            rt._active.discard(node)
            if obs:
                obs.emit(round_index, "output", node, {"value": ctx.output})
                obs.emit(round_index, "terminate", node)

        for node in crashed:
            result.records[node].crashed = True
            rt._active.discard(node)
            if obs:
                obs.emit(round_index, "crash", node)

        if terminated or crashed:
            rt._active_order = sorted(rt._active)

        # Neighbors observe terminations/crashes from the next round on —
        # the same timing as the paper's explicit final-round notification.
        # Under quiescent scheduling that observation is a wake condition
        # (the scheduler hooks; no-ops under the eager policy).
        scheduler = rt._scheduler
        transport = rt.transport
        if transport.remote:
            # Edge-cut shard: publication is deferred to the round barrier,
            # where the driver applies every shard's events in one global
            # ascending order — the same per-round ``neighbor_outputs``
            # insertion order an unsharded run produces (some neighbors
            # live on other shards, so no context exists for them here;
            # see :mod:`repro.shard.edgecut`).
            for node in terminated:
                transport.export_event("terminate", node, contexts[node].output)
            for node in crashed:
                transport.export_event("crash", node, None)
            return
        for node in terminated:
            output = contexts[node].output
            neighbors = contexts[node].neighbors
            for neighbor in neighbors:
                neighbor_ctx = contexts[neighbor]
                neighbor_ctx.active_neighbors.discard(node)
                neighbor_ctx.neighbor_outputs[node] = output
            scheduler.on_terminated(node, neighbors)
        for node in crashed:
            neighbors = contexts[node].neighbors
            for neighbor in neighbors:
                neighbor_ctx = contexts[neighbor]
                neighbor_ctx.active_neighbors.discard(node)
                neighbor_ctx.crashed_neighbors.add(node)
            scheduler.on_crashed(node, neighbors)

    def apply_recoveries(self, round_index: int) -> None:
        """Rejoin crash-with-recovery nodes at the start of this round."""
        rt = self.rt
        if rt.interposer is None:
            return
        scheduler = rt._scheduler
        result = rt.result
        rejoined = False
        for node in rt.interposer.recoveries_at(round_index):
            record = result.records.get(node)
            if record is None or not record.crashed:
                continue  # never crashed (or already back): nothing to do
            if callable(rt._program_source):
                rt.programs[node] = rt._program_source(node)
            # else: mapping-provided program instances cannot be rebuilt;
            # the node rejoins with whatever state the instance holds.
            ctx = rt._build_context(node)
            ctx.round = round_index
            ctx.active_neighbors = {
                other for other in ctx.neighbors if other in rt._active
            }
            for other in ctx.neighbors:
                other_record = result.records[other]
                if other_record.termination_round is not None:
                    ctx.neighbor_outputs[other] = other_record.output
                elif other_record.crashed:
                    ctx.crashed_neighbors.add(other)
            rt.contexts[node] = ctx
            rt._active.add(node)
            record.crashed = False
            record.recovery_round = round_index
            for other in ctx.neighbors:
                neighbor_ctx = rt.contexts[other]
                neighbor_ctx.active_neighbors.add(node)
                neighbor_ctx.crashed_neighbors.discard(node)
            rt.programs[node].setup(ctx)
            rejoined = True
            scheduler.on_recovered(node, ctx, rt.programs[node])
            if rt.obs:
                rt.obs.emit(round_index, "recover", node)
            if ctx.terminate_requested:
                # A program may output and terminate straight from its
                # recovery setup (e.g. every neighbor is already gone).
                # Honor it before the round runs — the same semantics
                # ``finalize_round(0)`` gives the initial setup — so the
                # node never re-enters the hot loop and cannot output a
                # second time.
                ctx.terminated = True
                ctx.termination_round = round_index
                record.output = ctx.output
                record.termination_round = round_index
                result.outputs[node] = ctx.output
                rt._active.discard(node)
                for other in ctx.neighbors:
                    neighbor_ctx = rt.contexts[other]
                    neighbor_ctx.active_neighbors.discard(node)
                    neighbor_ctx.neighbor_outputs[node] = ctx.output
                scheduler.on_recovery_terminated(node)
                if rt.obs:
                    rt.obs.emit(round_index, "output", node, {"value": ctx.output})
                    rt.obs.emit(round_index, "terminate", node)
        if rejoined:
            rt._active_order = sorted(rt._active)

    def build_stuck_report(
        self, round_index: int, reason: str = "round-limit"
    ) -> StuckReport:
        """Snapshot every live node when a run is cut short.

        ``reason`` records *which* budget cut it: the round limit, the
        wall-clock ``deadline_s``, or async stabilization.
        """
        rt = self.rt
        live = sorted(rt._active)
        processed = rt._scheduler.processed_last_round
        inboxes = rt.transport.inboxes
        snapshots: Dict[int, NodeSnapshot] = {}
        for node in live:
            ctx = rt.contexts[node]
            # A node the quiescent schedule skipped keeps a stale inbox;
            # the eager path would have cleared it, so report it empty.
            if processed is not None and node not in processed:
                last_inbox: Dict[int, Any] = {}
            else:
                last_inbox = dict(inboxes.get(node, {}))
            snapshots[node] = NodeSnapshot(
                node_id=node,
                round=ctx.round,
                last_inbox=last_inbox,
                state={
                    key: repr(value)
                    for key, value in sorted(vars(rt.programs[node]).items())
                },
                has_output=ctx.has_output,
            )
        return StuckReport(
            round=round_index,
            live_nodes=live,
            total_nodes=rt.graph.n,
            snapshots=snapshots,
            reason=reason,
        )
