"""Synchronous message-passing simulator (LOCAL / CONGEST models).

This subpackage is the substrate of the whole repository: every algorithm
from the paper is written as a :class:`~repro.simulator.program.NodeProgram`
and executed by the :class:`~repro.simulator.engine.SyncEngine`, which
implements the synchronous round structure of Section 2 of the paper:

    In each round, each active node can send a possibly different message
    to each of its neighbors, receive all messages sent to it that round
    from all of its neighbors, do some computation and update its state,
    optionally assign a value to its local output, and terminate if this
    is the node's last output.

The engine also implements the paper's convention (Section 7) that, prior
to terminating, nodes inform their active neighbors about their output
values: a terminated neighbor's output becomes visible in the *following*
round, exactly when an explicit notification message would have arrived.

The engine is a thin orchestrator over composable runtime stages — see
docs/ARCHITECTURE.md: :class:`~repro.simulator.transport.Transport`
(mailboxes + bit accounting), :class:`~repro.simulator.scheduling.Scheduler`
(eager / quiescent / quiescent-debug / async / vectorized round drives),
:class:`~repro.simulator.interpose.FaultInterposer` (the fault surface),
:class:`~repro.simulator.lifecycle.NodeLifecycle` (terminations, crashes,
recoveries) and :class:`~repro.simulator.obs_dispatch.ObsDispatch` (event
fan-out + profiling), all over the shared
:class:`~repro.graphs.csr.CSRTopology` graph core.
"""

from repro.simulator.adversary import DelayAdversary, RetryPolicy
from repro.simulator.context import NodeContext
from repro.simulator.engine import (
    BandwidthExceeded,
    QuiescenceViolation,
    RoundLimitExceeded,
    SyncEngine,
)
from repro.simulator.interpose import FaultInterposer
from repro.simulator.lifecycle import NodeLifecycle
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import (
    NodeRecord,
    NodeSnapshot,
    RunResult,
    StuckReport,
)
from repro.simulator.models import CONGEST, LOCAL, ExecutionModel
from repro.simulator.obs_dispatch import ObsDispatch
from repro.simulator.program import NodeProgram
from repro.simulator.scheduling import (
    AsyncScheduler,
    EagerScheduler,
    QuiescentDebugScheduler,
    QuiescentScheduler,
    Scheduler,
    VectorizedScheduler,
    schedule_capabilities,
)
from repro.simulator.trace import TraceEvent, TraceRecorder
from repro.simulator.transport import Transport

__all__ = [
    "AsyncScheduler",
    "BandwidthExceeded",
    "CONGEST",
    "DelayAdversary",
    "EagerScheduler",
    "ExecutionModel",
    "FaultInterposer",
    "LOCAL",
    "NodeContext",
    "NodeLifecycle",
    "NodeProgram",
    "NodeRecord",
    "NodeSnapshot",
    "ObsDispatch",
    "QuiescenceViolation",
    "QuiescentDebugScheduler",
    "QuiescentScheduler",
    "RetryPolicy",
    "RoundLimitExceeded",
    "RunResult",
    "Scheduler",
    "StuckReport",
    "SyncEngine",
    "TraceEvent",
    "TraceRecorder",
    "Transport",
    "VectorizedScheduler",
    "estimate_bits",
    "schedule_capabilities",
]
