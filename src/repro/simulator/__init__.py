"""Synchronous message-passing simulator (LOCAL / CONGEST models).

This subpackage is the substrate of the whole repository: every algorithm
from the paper is written as a :class:`~repro.simulator.program.NodeProgram`
and executed by the :class:`~repro.simulator.engine.SyncEngine`, which
implements the synchronous round structure of Section 2 of the paper:

    In each round, each active node can send a possibly different message
    to each of its neighbors, receive all messages sent to it that round
    from all of its neighbors, do some computation and update its state,
    optionally assign a value to its local output, and terminate if this
    is the node's last output.

The engine also implements the paper's convention (Section 7) that, prior
to terminating, nodes inform their active neighbors about their output
values: a terminated neighbor's output becomes visible in the *following*
round, exactly when an explicit notification message would have arrived.
"""

from repro.simulator.context import NodeContext
from repro.simulator.engine import (
    QuiescenceViolation,
    RoundLimitExceeded,
    SyncEngine,
)
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import (
    NodeRecord,
    NodeSnapshot,
    RunResult,
    StuckReport,
)
from repro.simulator.models import CONGEST, LOCAL, ExecutionModel
from repro.simulator.program import NodeProgram
from repro.simulator.trace import TraceEvent, TraceRecorder

__all__ = [
    "CONGEST",
    "LOCAL",
    "ExecutionModel",
    "NodeContext",
    "NodeProgram",
    "NodeRecord",
    "NodeSnapshot",
    "QuiescenceViolation",
    "RoundLimitExceeded",
    "RunResult",
    "StuckReport",
    "SyncEngine",
    "TraceEvent",
    "TraceRecorder",
    "estimate_bits",
]
