"""Command-line interface: run algorithms-with-predictions from a shell.

Examples::

    python -m repro list
    python -m repro run --problem mis --template simple \
        --graph gnp:100:0.05 --noise 0.2
    python -m repro sweep --problem mis --template parallel \
        --graph grid:10:10 --rates 0,0.1,0.3,1.0 --csv sweep.csv
    python -m repro faults --template hardened --graph grid:6:8 \
        --rates 0,0.05,0.2 --crash-frac 0.1 --recover-after 3
    python -m repro profile --problem mis --template parallel \
        --graph gnp:100:0.05 --noise 0.2
    python -m repro events --graph grid:5:5 --out events.jsonl
    python -m repro dynamic --problem mis --template simple \
        --graph gnp:80:0.06 --epochs 6 --churn-add 5 --churn-remove 5
    python -m repro dynamic --dataset collegemsg --window 3 --epochs 8
    python -m repro example robustness

Graph specs: ``line:N``, ``ring:N``, ``star:N``, ``clique:N``,
``grid:R:C``, ``gnp:N:P[:SEED]``, ``regular:N:DEG[:SEED]``, ``tree:N``,
``rtree:N[:SEED]``, ``dline:N``, ``wheel:K``, ``paths:COUNT:LEN``,
``ptree:ARITY:HEIGHT``, ``sortedline:N``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench.algorithms import (
    coloring_consecutive,
    coloring_parallel,
    coloring_simple,
    edge_coloring_consecutive,
    edge_coloring_simple,
    matching_consecutive,
    matching_simple,
    mis_blackwhite_simple,
    mis_consecutive,
    mis_hardened_simple,
    mis_interleaved,
    mis_parallel,
    mis_rooted_parallel,
    mis_rooted_simple,
    mis_simple,
)
from repro.algorithms.coloring import PaletteGreedyColoringAlgorithm
from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import GreedyMISAlgorithm
from repro.core import ExecutionPolicy, run
from repro.errors import eta1
from repro.kernels import UnsupportedScheduleError
from repro.simulator import schedule_capabilities
from repro.graphs import (
    DistGraph,
    clique,
    directed_line,
    erdos_renyi,
    grid2d,
    line,
    path_forest,
    preorder_kary_tree,
    random_regular,
    random_rooted_tree,
    random_tree,
    ring,
    sorted_path_ids,
    star,
    wheel_fk,
)
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING

PROBLEMS = {
    "mis": MIS,
    "matching": MATCHING,
    "vertex-coloring": VERTEX_COLORING,
    "edge-coloring": EDGE_COLORING,
}

TEMPLATES: Dict[str, Dict[str, Callable]] = {
    "mis": {
        "greedy": GreedyMISAlgorithm,
        "simple": mis_simple,
        "consecutive": mis_consecutive,
        "interleaved": mis_interleaved,
        "parallel": mis_parallel,
        "blackwhite": mis_blackwhite_simple,
        "hardened": mis_hardened_simple,
        "rooted-simple": mis_rooted_simple,
        "rooted-parallel": mis_rooted_parallel,
    },
    "matching": {
        "greedy": GreedyMatchingAlgorithm,
        "simple": matching_simple,
        "consecutive": matching_consecutive,
    },
    "vertex-coloring": {
        "greedy": PaletteGreedyColoringAlgorithm,
        "simple": coloring_simple,
        "consecutive": coloring_consecutive,
        "parallel": coloring_parallel,
    },
    "edge-coloring": {
        "simple": edge_coloring_simple,
        "consecutive": edge_coloring_consecutive,
    },
}

EXAMPLES = {
    "quickstart": "examples.quickstart",
    "migration": "examples.network_migration",
    "grid": "examples.grid_blackwhite",
    "rooted": "examples.rooted_tree_forest",
    "robustness": "examples.robustness_study",
    "tradeoff": "examples.tradeoff_tuning",
    "learned": "examples.learned_predictor",
}


def parse_graph(spec: str) -> DistGraph:
    """Parse a ``family:args`` graph spec (see module docstring)."""
    parts = spec.split(":")
    family, args = parts[0], [p for p in parts[1:]]

    def arg(index: int, default=None, cast=int):
        if index < len(args):
            return cast(args[index])
        if default is None:
            raise SystemExit(f"graph spec {spec!r}: missing argument {index + 1}")
        return default

    if family == "line":
        return line(arg(0))
    if family == "sortedline":
        return sorted_path_ids(line(arg(0)))
    if family == "ring":
        return ring(arg(0))
    if family == "star":
        return star(arg(0))
    if family == "clique":
        return clique(arg(0))
    if family == "grid":
        return grid2d(arg(0), arg(1))
    if family == "gnp":
        return erdos_renyi(arg(0), arg(1, cast=float), seed=arg(2, default=0))
    if family == "regular":
        return random_regular(arg(0), arg(1), seed=arg(2, default=0))
    if family == "tree":
        return random_tree(arg(0), seed=arg(1, default=0))
    if family == "rtree":
        return random_rooted_tree(arg(0), seed=arg(1, default=0))
    if family == "dline":
        return directed_line(arg(0))
    if family == "wheel":
        return wheel_fk(arg(0))
    if family == "paths":
        return path_forest(arg(0), arg(1))
    if family == "ptree":
        return preorder_kary_tree(arg(0), arg(1))
    raise SystemExit(f"unknown graph family {family!r}")


def cmd_list(args: argparse.Namespace) -> int:
    print("problems and templates:")
    for problem, templates in TEMPLATES.items():
        print(f"  {problem}: {', '.join(sorted(templates))}")
    print()
    print("graph families: line ring star clique grid gnp regular tree")
    print("                rtree dline wheel paths sortedline ptree")
    print()
    print("schedules:")
    for name, caps in sorted(schedule_capabilities().items()):
        kernels = ", ".join(caps["kernels"]) if caps.get("kernels") else "-"
        print(f"  {name}: kernels={kernels}")
    print()
    print(f"examples: {', '.join(sorted(EXAMPLES))}")
    return 0


def _build(args: argparse.Namespace):
    problem = PROBLEMS.get(args.problem)
    if problem is None:
        raise SystemExit(f"unknown problem {args.problem!r}")
    factory = TEMPLATES[args.problem].get(args.template)
    if factory is None:
        raise SystemExit(
            f"unknown template {args.template!r} for {args.problem} "
            f"(choose from {sorted(TEMPLATES[args.problem])})"
        )
    return problem, factory(), parse_graph(args.graph)


def _policy_from_args(args: argparse.Namespace) -> ExecutionPolicy:
    """The :class:`ExecutionPolicy` described by the shared CLI flags."""
    try:
        return ExecutionPolicy(
            schedule=args.schedule,
            phi=args.phi,
            send_timeout=args.send_timeout,
            deadline_s=args.deadline_s,
            fallback=getattr(args, "fallback", None),
            share_graph=getattr(args, "share_graph", False),
            shard=getattr(args, "shard", None),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_run(args: argparse.Namespace) -> int:
    problem, algorithm, graph = _build(args)
    predictions = _predictions_for_args(problem, graph, args)
    try:
        result = run(
            algorithm,
            graph,
            predictions,
            seed=args.seed,
            max_rounds=args.max_rounds,
            policy=_policy_from_args(args),
            on_round_limit="partial" if args.schedule == "async" else "raise",
        )
    except UnsupportedScheduleError as exc:
        raise SystemExit(f"{exc} (pass --fallback interpret to run anyway)")
    violations = problem.verify_solution(graph, result.outputs)
    error = eta1(graph, predictions, problem.name)
    print(f"instance   : {graph.name} (n={graph.n}, m={graph.num_edges})")
    print(f"algorithm  : {algorithm.name}")
    print(f"noise rate : {args.noise}")
    print(f"eta1       : {error}")
    print(f"rounds     : {result.rounds}")
    print(f"messages   : {result.message_count} ({result.total_bits} bits)")
    if args.schedule == "async":
        print(f"async      : phi={args.phi} delayed={result.delayed_messages} "
              f"retried={result.retried_messages} "
              f"pulses={result.recovery_pulses}")
    if result.kernel:
        print(f"kernel     : {result.kernel}")
    if result.stuck is not None:
        print(f"stuck      : {result.stuck.summary()}")
    print(f"max msg    : {result.max_message_bits} bits "
          f"(CONGEST-ok: {result.congest_compatible(graph.n)})")
    print(f"valid      : {not violations}")
    if violations:
        for violation in violations[:5]:
            print(f"  ! {violation}")
        return 1
    return 0


def _predictions_for_args(problem, graph, args: argparse.Namespace):
    """Perfect predictions, optionally perturbed by ``--noise``."""
    base = perfect_predictions(problem, graph, seed=args.seed)
    if args.noise > 0:
        return noisy_predictions(
            problem, graph, args.noise, seed=args.seed, base=base
        )
    return base


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one instance with round profiling and print the phase table."""
    problem, algorithm, graph = _build(args)
    predictions = _predictions_for_args(problem, graph, args)
    try:
        result = run(
            algorithm,
            graph,
            predictions,
            seed=args.seed,
            max_rounds=args.max_rounds,
            profile=True,
            policy=_policy_from_args(args),
        )
    except UnsupportedScheduleError as exc:
        raise SystemExit(f"{exc} (pass --fallback interpret to run anyway)")
    violations = problem.verify_solution(graph, result.outputs)
    print(f"instance   : {graph.name} (n={graph.n}, m={graph.num_edges})")
    print(f"algorithm  : {algorithm.name}")
    print(f"rounds     : {result.rounds}")
    print(f"messages   : {result.message_count}")
    print(f"valid      : {not violations}")
    print()
    print(result.profile.table())
    summary = result.profile.summary()
    print()
    from repro.obs.profile import PHASES

    for phase in PHASES:
        print(
            f"{phase:>9}: {summary[f'{phase}_s']:.6f}s "
            f"({summary[f'{phase}_share']:.1%})"
        )
    return 1 if violations else 0


def cmd_events(args: argparse.Namespace) -> int:
    """Run one instance and export its structured events as JSONL."""
    import json

    from repro.obs import MemoryEventSink
    from repro.obs.events import write_jsonl_events

    problem, algorithm, graph = _build(args)
    predictions = _predictions_for_args(problem, graph, args)
    sink = MemoryEventSink()
    try:
        result = run(
            algorithm,
            graph,
            predictions,
            seed=args.seed,
            max_rounds=args.max_rounds,
            sinks=[sink],
            policy=_policy_from_args(args),
            on_round_limit="partial" if args.schedule == "async" else "raise",
        )
    except UnsupportedScheduleError as exc:
        raise SystemExit(f"{exc} (pass --fallback interpret to run anyway)")
    entries = sink.entries
    if args.kinds:
        wanted = set(args.kinds.split(","))
        entries = [entry for entry in entries if entry["kind"] in wanted]
    if args.out:
        open(args.out, "w", encoding="utf-8").close()
        write_jsonl_events(args.out, entries)
        print(
            f"wrote {len(entries)} events ({result.rounds} rounds, "
            f"{result.message_count} messages) to {args.out}"
        )
    else:
        try:
            for entry in entries:
                print(json.dumps(entry, sort_keys=True))
        except BrokenPipeError:  # piped into head & co.
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.workloads import noisy_for
    from repro.core import RunConfig
    from repro.exec import FaultSpec, GraphSpec, PredictionSpec, Sweep

    problem = PROBLEMS.get(args.problem)
    if problem is None:
        raise SystemExit(f"unknown problem {args.problem!r}")
    factory = TEMPLATES[args.problem].get(args.template)
    if factory is None:
        raise SystemExit(
            f"unknown template {args.template!r} for {args.problem} "
            f"(choose from {sorted(TEMPLATES[args.problem])})"
        )
    rates = [float(r) for r in args.rates.split(",")]

    # The graph comes from a parsed string spec, so it enters the sweep
    # as a literal (content-hashed) artifact rather than a named factory.
    graph_spec = GraphSpec.literal(parse_graph(args.graph))
    faulted = bool(args.drop_rate or args.crash_frac)
    config = RunConfig(
        max_rounds=args.max_rounds,
        seed=args.seed,
        policy=_policy_from_args(args),
    )
    if faulted or args.schedule == "async":
        # A starved faulty (or stabilized async) cell is a data point,
        # not an error.
        config = config.with_overrides(on_round_limit="partial")
    sweep = Sweep(name=f"{args.problem}/{args.template}")
    for rate in rates:
        for seed in range(args.repeats):
            faults = None
            if faulted:
                faults = FaultSpec.of(
                    "random_crash_plan",
                    args.crash_frac,
                    drop_rate=args.drop_rate,
                    seed=seed,
                )
            sweep.add(
                f"p={rate}/s={seed}",
                graph_spec,
                factory,
                predictions=PredictionSpec.of(
                    noisy_for, args.problem, rate, seed=seed
                ),
                faults=faults,
                problem=problem.name,
                seed=args.seed,
                config=config,
            )
    result = sweep.run(
        args.backend,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        cache_dir=args.cache_dir,
        profile=args.profile,
        events_path=args.events_out,
    )
    print(f"{'error':>6}  {'max rounds':>10}")
    for error, rounds in result.rounds_by_error():
        print(f"{error:>6}  {rounds:>10}")
    print(
        f"\nall valid: {result.all_valid}  "
        f"({len(result)} cells, {result.backend} backend, "
        f"{result.elapsed:.2f}s)"
    )
    if result.backend != result.requested_backend:
        print(
            f"note: requested {result.requested_backend} backend, "
            f"ran {result.backend}"
        )
    telemetry = result.telemetry()
    if telemetry["sharded_cells"]:
        print(
            f"sharded: {telemetry['sharded_cells']} cell(s) across "
            f"{telemetry['shards_total']} shard(s)"
        )
    if telemetry["boundary_msgs_total"]:
        print(
            f"edge-cut boundary: {telemetry['boundary_msgs_total']} "
            f"message(s), {telemetry['boundary_bytes_total']} bytes "
            "exchanged between shards"
        )
    if result.shared_bytes:
        print(
            f"shared-memory store: {result.shared_bytes} bytes resident, "
            f"{telemetry['ship_bytes_total']} bytes shipped across "
            f"{len(result)} cells"
        )
    if args.profile:
        from repro.obs.profile import PHASES

        totals: Dict[str, float] = {}
        for row in result.rows:
            for phase in PHASES:
                key = f"{phase}_s"
                if row.profile:
                    totals[key] = totals.get(key, 0.0) + row.profile[key]
        grand = sum(totals.values()) or 1.0
        print("\nphase totals across cells:")
        for key, value in totals.items():
            print(f"  {key:>11}: {value:.6f}s ({value / grand:.1%})")
    if args.events_out:
        print(f"wrote events to {args.events_out}")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    status = 0 if result.all_valid else 1
    if args.bench_out:
        from repro.obs.bench import record_run

        payload, diff = record_run(
            args.bench_out, result, gate=args.bench_gate
        )
        telemetry = payload["telemetry"]
        print(
            f"\nbench baseline {args.bench_out}: "
            f"{telemetry['node_rounds_per_sec']:.0f} node-rounds/s"
        )
        if diff is None:
            print("no previous baseline; recorded this run as the baseline")
        else:
            print(diff.summary())
            if not diff.ok:
                status = 1
    return status


def cmd_dynamic(args: argparse.Namespace) -> int:
    """Replay a dynamic epoch stream with warm-started predictions."""
    from repro.core import RunConfig
    from repro.dynamic import DynamicRunner, SyntheticChurnStream, temporal_stream

    problem = PROBLEMS.get(args.problem)
    if problem is None:
        raise SystemExit(f"unknown problem {args.problem!r}")
    factory = TEMPLATES[args.problem].get(args.template)
    if factory is None:
        raise SystemExit(
            f"unknown template {args.template!r} for {args.problem} "
            f"(choose from {sorted(TEMPLATES[args.problem])})"
        )
    if args.dataset:
        stream = temporal_stream(
            args.dataset,
            epochs=args.epochs,
            data_dir=args.data_dir,
            window=args.window,
            limit=args.limit,
            seed=args.seed,
        )
    else:
        stream = SyntheticChurnStream(
            parse_graph(args.graph),
            args.epochs,
            add=args.churn_add,
            remove=args.churn_remove,
            add_nodes=args.node_add,
            remove_nodes=args.node_remove,
            seed=args.seed,
        )
    config = RunConfig(
        max_rounds=args.max_rounds,
        policy=_policy_from_args(args),
    )
    runner = DynamicRunner(
        factory,
        problem,
        stream,
        config=config,
        scratch=not args.no_scratch,
        seed=args.seed,
    )
    try:
        result = runner.run()
    except UnsupportedScheduleError as exc:
        raise SystemExit(f"{exc} (pass --fallback interpret to run anyway)")
    print(f"stream     : {stream.name} (epochs={stream.epochs})")
    print(f"algorithm  : {args.problem}/{args.template}")
    print()
    print(
        f"{'epoch':>5}  {'n':>6}  {'+e':>5}  {'-e':>5}  {'eta1':>5}  "
        f"{'rounds':>6}  {'scratch':>7}  {'recourse':>8}  {'valid':>5}"
    )
    for row in result.rows:
        scratch = row.scratch_rounds if row.scratch_rounds is not None else "-"
        recourse = row.recourse if row.recourse is not None else "-"
        print(
            f"{row.epoch:>5}  {row.n:>6}  "
            f"{row.metrics.get('inserted_edges', 0):>5}  "
            f"{row.metrics.get('deleted_edges', 0):>5}  "
            f"{row.error if row.error is not None else '-':>5}  "
            f"{row.rounds:>6}  {scratch:>7}  {recourse:>8}  "
            f"{str(bool(row.valid)):>5}"
        )
    status = 0 if result.all_valid else 1
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.bench_out:
        from repro.obs.bench import record_run

        payload, diff = record_run(args.bench_out, result, gate=args.bench_gate)
        telemetry = payload["telemetry"]
        print(
            f"\nbench baseline {args.bench_out}: "
            f"{telemetry['node_rounds_per_sec']:.0f} node-rounds/s, "
            f"recourse_total={telemetry['recourse_total']}"
        )
        if diff is None:
            print("no previous baseline; recorded this run as the baseline")
        else:
            print(diff.summary())
            if not diff.ok:
                status = 1
    return status


def cmd_faults(args: argparse.Namespace) -> int:
    """Degradation sweep under fault injection (message loss + crashes)."""
    from repro.faults import degradation_sweep, summarize_points

    problem, algorithm, graph = _build(args)
    rates = [float(rate) for rate in args.rates.split(",")]
    seeds = list(range(args.seeds))
    recover_after = args.recover_after if args.recover_after > 0 else None

    def predictions_for(seed: int):
        base = perfect_predictions(problem, graph, seed=seed)
        if args.noise > 0:
            return noisy_predictions(
                problem, graph, args.noise, seed=seed, base=base
            )
        return base

    points = degradation_sweep(
        algorithm,
        problem,
        graph,
        predictions_for,
        drop_rates=rates,
        seeds=seeds,
        crash_fraction=args.crash_frac,
        recover_after=recover_after,
        max_rounds=args.max_rounds,
    )
    rows = summarize_points(points)
    print(f"instance   : {graph.name} (n={graph.n}, m={graph.num_edges})")
    print(f"algorithm  : {algorithm.name}")
    print(
        f"faults     : crash_frac={args.crash_frac} "
        f"recover_after={recover_after} seeds={args.seeds}"
    )
    print()
    print(
        f"{'drop':>6}  {'rounds':>7}  {'coverage':>8}  {'|S|':>6}  "
        f"{'stuck':>5}  {'dropped':>7}  {'violations':>10}"
    )
    for row in rows:
        print(
            f"{row['drop_rate']:>6}  {row['mean_rounds_executed']:>7.1f}  "
            f"{row['mean_coverage']:>8.3f}  {row['mean_solution_size']:>6.1f}  "
            f"{row['stuck_runs']:>5}  {row['dropped_messages']:>7}  "
            f"{row['violations']:>10}"
        )
    total_violations = sum(row["violations"] for row in rows)
    if total_violations:
        print(f"\n! {total_violations} safety violation(s) among survivors")
        for point in points:
            for violation in point.violations[:3]:
                print(f"  ! drop={point.drop_rate} seed={point.seed}: {violation}")
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "graph", "drop_rate", "crash_fraction", "recovery", "seed",
                    "rounds", "rounds_executed", "survivors", "coverage",
                    "solution_size", "violations", "stuck", "dropped",
                ]
            )
            for p in points:
                writer.writerow(
                    [
                        p.graph, p.drop_rate, p.crash_fraction, p.recovery,
                        p.seed, p.rounds, p.rounds_executed, p.survivors,
                        f"{p.coverage:.6f}", p.solution_size,
                        len(p.violations), p.stuck, p.dropped,
                    ]
                )
        print(f"wrote {args.csv}")
    return 1 if total_violations else 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run the E1..E29 benchmark suite (requires a source checkout)."""
    import os

    if not os.path.isdir(args.benchmarks):
        raise SystemExit(
            f"benchmark directory {args.benchmarks!r} not found — run from a "
            "source checkout or pass --benchmarks"
        )
    import pytest

    argv = [args.benchmarks, "--benchmark-only", "-p", "no:cacheprovider"]
    if args.tables:
        argv.append("-s")
    return pytest.main(argv)


def cmd_datasets(args: argparse.Namespace) -> int:
    """List or download the temporal dataset files (E29 workloads)."""
    import os

    from repro.dynamic.datasets import (
        DATASET_SHA256,
        DATASET_URLS,
        DatasetFetchError,
        TEMPORAL_DATASETS,
        fetch_dataset,
    )

    if args.action == "list":
        for key in sorted(TEMPORAL_DATASETS):
            path = os.path.join(args.data_dir, TEMPORAL_DATASETS[key])
            status = "present" if os.path.exists(path) else "missing"
            pinned = DATASET_SHA256[key] or "unpinned"
            print(f"{key:>14}: {status:>7}  {path}")
            print(f"{'':>14}  url    {DATASET_URLS[key]}")
            print(f"{'':>14}  sha256 {pinned}")
        return 0

    names = args.names or sorted(TEMPORAL_DATASETS)
    if args.sha256 and len(names) != 1:
        raise SystemExit("--sha256 pins one digest; name exactly one dataset")
    failed = 0
    for name in names:
        try:
            outcome = fetch_dataset(
                name,
                data_dir=args.data_dir,
                sha256=args.sha256,
                force=args.force,
            )
        except DatasetFetchError as exc:
            print(f"{name}: FAILED — {exc}")
            failed += 1
            continue
        verb = "downloaded" if outcome.downloaded else "already present"
        print(f"{outcome.name}: {verb} -> {outcome.path}")
        print(f"{'':>{len(outcome.name)}}  sha256 {outcome.sha256}")
    return 1 if failed else 0


def cmd_example(args: argparse.Namespace) -> int:
    module_name = EXAMPLES.get(args.name)
    if module_name is None:
        raise SystemExit(
            f"unknown example {args.name!r} (choose from {sorted(EXAMPLES)})"
        )
    import importlib
    import os

    sys.path.insert(0, os.getcwd())
    module = importlib.import_module(module_name)
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed graph algorithms with predictions",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list problems, templates, graphs")

    run_parser = subparsers.add_parser("run", help="run one instance")
    sweep_parser = subparsers.add_parser("sweep", help="noise-rate sweep")
    profile_parser = subparsers.add_parser(
        "profile", help="run one instance with per-round phase timings"
    )
    events_parser = subparsers.add_parser(
        "events", help="run one instance and export structured events"
    )
    dynamic_parser = subparsers.add_parser(
        "dynamic",
        help="replay an epoch stream with warm-started predictions",
    )
    for sub in (
        run_parser, sweep_parser, profile_parser, events_parser, dynamic_parser
    ):
        sub.add_argument("--problem", default="mis", help="problem name")
        sub.add_argument("--template", default="simple", help="template name")
        sub.add_argument("--graph", default="gnp:60:0.08", help="graph spec")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--max-rounds", type=int, default=None)
        sub.add_argument(
            "--schedule",
            choices=tuple(sorted(schedule_capabilities())),
            default="eager",
            help="round scheduling policy (quiescent skips idle nodes; "
            "observationally identical to eager; async adds adversarial "
            "delivery delays — see --phi; vectorized runs whole-frontier "
            "compiled kernels, bit-identical on registered templates)",
        )
        sub.add_argument(
            "--fallback",
            choices=("interpret",),
            default=None,
            help="what to do when --schedule vectorized cannot run this "
            "instance: 'interpret' warns and falls back to the "
            "interpreted quiescent schedule (default: fail loudly)",
        )
        sub.add_argument(
            "--phi", type=int, default=0,
            help="async delay bound: each message arrives within phi ticks "
            "(requires --schedule async; 0 = synchronous delivery)",
        )
        sub.add_argument(
            "--send-timeout", type=int, default=None,
            help="async send timeout in ticks: lost sends are retransmitted "
            "with exponential backoff (requires --schedule async)",
        )
        sub.add_argument(
            "--deadline-s", type=float, default=None,
            help="wall-clock budget per run in seconds; exceeding it "
            "returns a partial result instead of hanging",
        )
    for sub in (run_parser, profile_parser, events_parser):
        sub.add_argument(
            "--noise", type=float, default=0.0, help="prediction noise rate"
        )
    events_parser.add_argument(
        "--out", default=None, help="write JSONL here (default: stdout)"
    )
    events_parser.add_argument(
        "--kinds", default=None,
        help="comma-separated event kinds to keep (e.g. send,drop)",
    )
    sweep_parser.add_argument(
        "--rates", default="0,0.1,0.3,0.6,1.0", help="comma-separated rates"
    )
    sweep_parser.add_argument("--repeats", type=int, default=2)
    sweep_parser.add_argument("--csv", default=None, help="write CSV here")
    sweep_parser.add_argument(
        "--backend", choices=("process", "serial"), default="process",
        help="execution backend (process pool or in-process serial)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the process backend (default: CPUs)",
    )
    sweep_parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="cells per dispatched chunk (default: auto)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help="on-disk artifact cache directory (e.g. .repro_cache)",
    )
    sweep_parser.add_argument(
        "--share-graph", action="store_true",
        help="publish CSR buffers into a shared-memory store so the "
        "process backend ships each graph once as a ~100-byte handle "
        "instead of flat buffers per chunk",
    )
    sweep_parser.add_argument(
        "--shard", choices=("components", "edgecut"), default=None,
        help="split each cell's graph across workers and merge the shard "
        "results into one bit-identical row: 'components' farms out "
        "connected components independently; 'edgecut' block-partitions "
        "the id space of a connected graph and exchanges cut-crossing "
        "messages through a per-round barrier",
    )
    sweep_parser.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="inject a message adversary dropping this fraction of sends",
    )
    sweep_parser.add_argument(
        "--crash-frac", type=float, default=0.0,
        help="fraction of nodes given crash faults in every cell",
    )
    sweep_parser.add_argument(
        "--profile", action="store_true",
        help="profile every cell and print aggregate phase timings",
    )
    sweep_parser.add_argument(
        "--events-out", default=None,
        help="write every cell's structured events to this JSONL file",
    )
    sweep_parser.add_argument(
        "--bench-out", default=None,
        help="record a BENCH baseline JSON here and diff against the "
        "previous one (exits nonzero on regression)",
    )
    sweep_parser.add_argument(
        "--bench-gate", type=float, default=2.0,
        help="throughput regression gate for --bench-out (default 2.0x)",
    )

    dynamic_parser.add_argument(
        "--epochs", type=int, default=6, help="number of update epochs"
    )
    dynamic_parser.add_argument(
        "--churn-add", type=int, default=4,
        help="edges inserted per synthetic epoch",
    )
    dynamic_parser.add_argument(
        "--churn-remove", type=int, default=4,
        help="edges deleted per synthetic epoch",
    )
    dynamic_parser.add_argument(
        "--node-add", type=int, default=0,
        help="nodes arriving per synthetic epoch",
    )
    dynamic_parser.add_argument(
        "--node-remove", type=int, default=0,
        help="nodes departing per synthetic epoch",
    )
    dynamic_parser.add_argument(
        "--dataset", default=None,
        help="temporal dataset name (collegemsg, email-eu-core, "
        "mathoverflow, or a file name); replaces --graph with a "
        "timestamp-bucketed stream, synthetic fallback when the file "
        "is missing",
    )
    dynamic_parser.add_argument(
        "--data-dir", default="data",
        help="directory holding temporal dataset files (default: data)",
    )
    dynamic_parser.add_argument(
        "--window", type=int, default=None,
        help="age edges out of a temporal stream after this many epochs",
    )
    dynamic_parser.add_argument(
        "--limit", type=int, default=None,
        help="truncate the temporal event list to this many events",
    )
    dynamic_parser.add_argument(
        "--no-scratch", action="store_true",
        help="skip the per-epoch solve-from-scratch comparison runs",
    )
    dynamic_parser.add_argument("--csv", default=None, help="write CSV here")
    dynamic_parser.add_argument(
        "--bench-out", default=None,
        help="record a BENCH baseline JSON here and diff against the "
        "previous one (exits nonzero on regression)",
    )
    dynamic_parser.add_argument(
        "--bench-gate", type=float, default=2.0,
        help="throughput regression gate for --bench-out (default 2.0x)",
    )

    faults_parser = subparsers.add_parser(
        "faults", help="degradation sweep under fault injection"
    )
    faults_parser.add_argument("--problem", default="mis", help="problem name")
    faults_parser.add_argument(
        "--template", default="hardened", help="template name"
    )
    faults_parser.add_argument(
        "--graph", default="gnp:48:0.1", help="graph spec"
    )
    faults_parser.add_argument(
        "--noise", type=float, default=0.0, help="prediction noise rate"
    )
    faults_parser.add_argument(
        "--rates", default="0,0.01,0.05,0.2",
        help="comma-separated message drop rates",
    )
    faults_parser.add_argument(
        "--crash-frac", type=float, default=0.0,
        help="fraction of nodes that crash in early rounds",
    )
    faults_parser.add_argument(
        "--recover-after", type=int, default=0,
        help="rounds until crashed nodes rejoin (0 = crash-stop)",
    )
    faults_parser.add_argument(
        "--seeds", type=int, default=3, help="seeds per rate"
    )
    faults_parser.add_argument("--max-rounds", type=int, default=None)
    faults_parser.add_argument("--csv", default=None, help="write CSV here")

    datasets_parser = subparsers.add_parser(
        "datasets",
        help="list or download the temporal dataset files (SNAP dumps)",
    )
    datasets_parser.add_argument(
        "action", choices=("list", "fetch"),
        help="'list' shows status and pinned digests; 'fetch' downloads, "
        "decompresses and checksum-verifies into --data-dir (the only "
        "command that touches the network — loading never does)",
    )
    datasets_parser.add_argument(
        "names", nargs="*",
        help="dataset names to fetch (default: all known datasets)",
    )
    datasets_parser.add_argument(
        "--data-dir", default="data",
        help="directory to place dataset files in (default: data)",
    )
    datasets_parser.add_argument(
        "--force", action="store_true",
        help="re-download even when a verified local copy exists",
    )
    datasets_parser.add_argument(
        "--sha256", default=None,
        help="expected digest of the decompressed file (overrides the "
        "pinned registry entry; requires naming exactly one dataset)",
    )

    example_parser = subparsers.add_parser("example", help="run a bundled example")
    example_parser.add_argument("name", help=f"one of {sorted(EXAMPLES)}")

    reproduce_parser = subparsers.add_parser(
        "reproduce", help="run the full E1..E29 experiment suite"
    )
    reproduce_parser.add_argument("--benchmarks", default="benchmarks")
    reproduce_parser.add_argument(
        "--tables", action="store_true", help="print the measured tables"
    )

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "profile": cmd_profile,
        "events": cmd_events,
        "dynamic": cmd_dynamic,
        "datasets": cmd_datasets,
        "faults": cmd_faults,
        "example": cmd_example,
        "reproduce": cmd_reproduce,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
