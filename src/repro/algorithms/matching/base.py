"""The Maximal Matching Base Algorithm (Section 8.1).

Two rounds: nodes exchange predictions; mutually predicted pairs output
their match and terminate (informing their other neighbors); a node
predicted unmatched outputs ⊥ once it learns all its neighbors matched.
A pruning algorithm: every output equals the node's prediction.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.problems.matching import UNMATCHED
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class MatchingBaseProgram(NodeProgram):
    """Per-node program of the Maximal Matching Base Algorithm."""

    MATCHED = "matched"

    def __init__(self, allow_unpredicted_bottom: bool = False) -> None:
        # The reasonable initialization algorithm differs in exactly one
        # rule: a node may output ⊥ even when its prediction is a partner,
        # provided all its neighbors are matched.
        self._allow_unpredicted_bottom = allow_unpredicted_bottom
        self._partner = None

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: ctx.prediction for other in ctx.active_neighbors}
        if ctx.round == 2 and self._partner is not None:
            return {other: self.MATCHED for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            predicted = ctx.prediction
            if (
                predicted in ctx.neighbors
                and inbox.get(predicted) == ctx.node_id
            ):
                self._partner = predicted
        elif ctx.round == 2:
            if self._partner is not None:
                ctx.set_output(self._partner)
                ctx.terminate()
                return
            all_neighbors_matched = all(
                inbox.get(other) == self.MATCHED for other in ctx.neighbors
            )
            eligible = (
                ctx.prediction == UNMATCHED or self._allow_unpredicted_bottom
            )
            if eligible and all_neighbors_matched:
                ctx.set_output(UNMATCHED)
                ctx.terminate()


class MatchingBaseAlgorithm(DistributedAlgorithm):
    """The 2-round Maximal Matching Base Algorithm."""

    name = "matching-base"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return MatchingBaseProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 2
