"""Maximal Matching algorithms (Section 8.1).

The 2-round base algorithm, the reasonable initialization algorithm, the
proposal-based measure-uniform algorithm (3-round groups), and the
clean-up algorithm.
"""

from repro.algorithms.matching.base import MatchingBaseAlgorithm
from repro.algorithms.matching.cleanup import MatchingCleanupAlgorithm
from repro.algorithms.matching.greedy import GreedyMatchingAlgorithm
from repro.algorithms.matching.initialization import (
    MatchingInitializationAlgorithm,
)
from repro.algorithms.matching.via_coloring import ColoredMatchingAlgorithm

__all__ = [
    "ColoredMatchingAlgorithm",
    "GreedyMatchingAlgorithm",
    "MatchingBaseAlgorithm",
    "MatchingCleanupAlgorithm",
    "MatchingInitializationAlgorithm",
]
