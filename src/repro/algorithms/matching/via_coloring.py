"""Maximal matching via edge coloring: O(Δ² + log* d) rounds, n-free.

A proper (2Δ−1)-edge coloring turns maximal matching into a color-class
sweep: color classes are matchings, so in round ``c`` every still-
unmatched pair joined by a ``c``-colored edge matches greedily — no two
candidate edges share an endpoint.  After all ``2Δ − 1`` classes no edge
has two unmatched endpoints, so outputting ⊥ at the stragglers is
maximal.

Combined with the line-graph Linial coloring
(:class:`~repro.algorithms.edge_coloring.linegraph.
LineGraphEdgeColoringAlgorithm`), this yields a prediction-free maximal
matching whose worst case depends only on Δ and d — the matching
analogue of Corollary 12's n-independent MIS reference, giving the
Maximal Matching problem its own robustness crossover (benchmark E23).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algorithms.edge_coloring.linegraph import (
    LineGraphColoringProgram,
    line_graph_round_bound,
)
from repro.core.algorithm import DistributedAlgorithm
from repro.problems.matching import UNMATCHED
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class MatchingFromEdgeColorsProgram(NodeProgram):
    """The color-class sweep: round ``c`` matches the ``c``-colored edges.

    ``colors`` maps each neighbor to the (agreed) color of the shared
    edge.  In round ``c``, an unmatched node with a ``c``-colored edge to
    a still-active neighbor offers itself; mutual offers match.  Colors
    agree at both endpoints, so offers along an edge are always mutual —
    an offer can only go unanswered when the neighbor already terminated.
    """

    AVAILABLE = "avail"

    def __init__(self, colors: Optional[Dict[int, int]]) -> None:
        self._colors = dict(colors or {})
        self._palette_size = max([0, *self._colors.values()])

    def setup(self, ctx: NodeContext) -> None:
        if not ctx.active_neighbors:
            ctx.set_output(UNMATCHED)
            ctx.terminate()

    def _partner_for_class(self, ctx: NodeContext, class_index: int):
        for other, color in self._colors.items():
            if color == class_index and other in ctx.active_neighbors:
                return other
        return None

    def compose(self, ctx: NodeContext) -> Outbox:
        partner = self._partner_for_class(ctx, ctx.round)
        if partner is not None:
            return {partner: self.AVAILABLE}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        partner = self._partner_for_class(ctx, ctx.round)
        if partner is not None and inbox.get(partner) == self.AVAILABLE:
            ctx.set_output(partner)
            ctx.terminate()
            return
        if ctx.round > self._palette_size:
            # All classes processed: every neighbor is matched.
            ctx.set_output(UNMATCHED)
            ctx.terminate()


class ColoredMatchingAlgorithm(DistributedAlgorithm):
    """Prediction-free maximal matching in O(Δ² + log* d) rounds.

    Phase 1 runs the line-graph Linial edge coloring with its outputs
    held locally; phase 2 sweeps the color classes.
    """

    name = "colored-matching"

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return line_graph_round_bound(d, delta) + max(1, 2 * delta - 1) + 1

    def build_program(self) -> NodeProgram:
        from repro.core.composition import Slice, SlicedProgram
        from repro.simulator.program import NodeProgram as IdleBase

        def schedule(ctx):
            bound = line_graph_round_bound(ctx.d, ctx.delta or 0)
            yield Slice(
                "edge-color",
                bound,
                lambda host: IdleBase(),
                parallel_builder=lambda host: LineGraphColoringProgram(),
            )
            yield Slice(
                "sweep",
                None,
                lambda host: MatchingFromEdgeColorsProgram(
                    host.last_parallel_result
                ),
            )

        return SlicedProgram(schedule)
