"""The Maximal Matching clean-up algorithm (Section 8.1).

One round: every active node that already knows it is matched to a
neighbor outputs the match (informing its other neighbors through the
engine's announcement) and terminates.  Together with the measure-uniform
algorithm's 3-round group structure, cutting at group boundaries always
leaves an extendable partial solution, so in our compositions this
clean-up is a no-op safety net — exactly the paper's role for it.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.problems.matching import UNMATCHED
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram


class MatchingCleanupProgram(NodeProgram):
    """Per-node program of the matching clean-up."""

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round != 1:
            return
        # A neighbor may have terminated naming this node as its partner
        # while this node was cut off mid-handshake; honor the match.
        for other, value in ctx.neighbor_outputs.items():
            if value == ctx.node_id:
                ctx.set_output(other)
                ctx.terminate()
                return
        # With every neighbor decided and matched, the node is safely
        # unmatched (the extendability condition of Section 8.1).
        if not ctx.active_neighbors and all(
            value != UNMATCHED for value in ctx.neighbor_outputs.values()
        ):
            ctx.set_output(UNMATCHED)
            ctx.terminate()


class MatchingCleanupAlgorithm(DistributedAlgorithm):
    """The one-round matching clean-up algorithm."""

    name = "matching-cleanup"

    def build_program(self) -> NodeProgram:
        return MatchingCleanupProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 1
