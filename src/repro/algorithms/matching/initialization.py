"""The reasonable Maximal Matching initialization algorithm (Section 8.1).

Identical to the base algorithm except that a node outputs ⊥ even when
its prediction is a partner, provided all of its neighbors are matched —
always at least as good as the base algorithm, but not a pruning
algorithm (an output may differ from the prediction).
"""

from __future__ import annotations

from repro.algorithms.matching.base import MatchingBaseProgram
from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.program import NodeProgram


class MatchingInitializationAlgorithm(DistributedAlgorithm):
    """The 2-round reasonable initialization algorithm for matching."""

    name = "matching-init"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return MatchingBaseProgram(allow_unpredicted_bottom=True)

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 2
