"""The measure-uniform Maximal Matching algorithm (Section 8.1).

Rounds are grouped in threes:

1. every active local-identifier-maximum proposes to its active neighbor
   with the smallest identifier;
2. every proposee accepts the proposal from the largest proposer;
3. matched nodes inform their active neighbors, output the match and
   terminate; a node left with no active neighbors outputs ⊥ and
   terminates.

On a component of ``s ≥ 2`` nodes the algorithm finishes within
``3⌊s/2⌋`` rounds (plus O(1) bootstrap), and it is measure-uniform with
respect to μ₁.  The partial solution at the end of each group is
extendable, so ``safe_pause_interval = 3``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithm import DistributedAlgorithm
from repro.problems.matching import UNMATCHED
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class GreedyMatchingProgram(NodeProgram):
    """Per-node program of the proposal-based matching algorithm.

    Quiescent: mid-group progress is message-driven (a PROPOSE wakes the
    proposee, an ACCEPT wakes the winner), and the two round-number-
    dependent waits — a local maximum reaching the next proposal round,
    and a neighborless node reaching the next output round — arm timed
    wakeups in :meth:`process`.  Proposals are stamped with their round
    instead of being cleared at the top of each group, so an idle
    ``compose`` mutates nothing; an ACCEPT only binds when it answers the
    proposal of this very group.
    """

    PROPOSE = "propose"
    ACCEPT = "accept"
    MATCHED = "matched"

    quiescent_when_idle = True

    def __init__(self) -> None:
        self._proposed_to: Optional[int] = None
        self._proposed_round: Optional[int] = None
        self._partner: Optional[int] = None

    def setup(self, ctx: NodeContext) -> None:
        if not ctx.active_neighbors:
            ctx.set_output(UNMATCHED)
            ctx.terminate()

    def compose(self, ctx: NodeContext) -> Outbox:
        step = (ctx.round - 1) % 3
        if step == 0:
            if ctx.active_neighbors and ctx.is_local_maximum():
                self._proposed_to = min(ctx.active_neighbors)
                self._proposed_round = ctx.round
                return {self._proposed_to: self.PROPOSE}
        elif step == 1:
            if self._partner is not None:
                return {self._partner: self.ACCEPT}
        elif step == 2 and self._partner is not None:
            return {
                other: self.MATCHED
                for other in ctx.active_neighbors
                if other != self._partner
            }
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        step = (ctx.round - 1) % 3
        if step == 0:
            proposers = [
                sender for sender, payload in inbox.items()
                if payload == self.PROPOSE
            ]
            if proposers:
                self._partner = max(proposers)
        elif step == 1:
            if (
                self.ACCEPT in inbox.values()
                and self._proposed_round == ctx.round - 1
            ):
                # Our proposal of this group was accepted by the proposee.
                self._partner = self._proposed_to
        elif step == 2:
            if self._partner is not None:
                ctx.set_output(self._partner)
                ctx.terminate()
                return
            informed = {
                sender for sender, payload in inbox.items()
                if payload == self.MATCHED
            }
            if not (ctx.active_neighbors - informed):
                ctx.set_output(UNMATCHED)
                ctx.terminate()
                return
        self._schedule_wakeup(ctx, step)

    def _schedule_wakeup(self, ctx: NodeContext, step: int) -> None:
        """Arm the next round this node may have to act in.

        * A node holding a partner acts in every remaining round of its
          group (ACCEPT at step 1, MATCHED + output at step 2).
        * A node whose neighborhood emptied must reach the next step-2
          round to output ⊥ (the eager path checks that only there).
        * A local maximum must reach the next step-0 round to propose —
          including re-proposing after a lost or unanswered proposal.
        """
        if self._partner is not None:
            ctx.request_wakeup(1)
        elif not ctx.active_neighbors:
            ctx.request_wakeup((2 - step) % 3 or 3)
        elif ctx.is_local_maximum():
            ctx.request_wakeup(3 - step)


class GreedyMatchingAlgorithm(DistributedAlgorithm):
    """The measure-uniform matching algorithm (3-round groups)."""

    name = "greedy-matching"
    safe_pause_interval = 3

    def build_program(self) -> NodeProgram:
        return GreedyMatchingProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        # Worst-case bound usable when the algorithm doubles as a
        # reference: 3 rounds per group, one group per matched pair, plus
        # bootstrap slack.
        return 3 * (max(n, 2) // 2) + 3
