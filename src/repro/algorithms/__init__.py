"""Algorithm implementations, one subpackage per problem.

Every algorithm from the paper is implemented as a per-node
message-passing program:

* :mod:`repro.algorithms.mis` — Sections 4, 6, 7, 9 and 10.
* :mod:`repro.algorithms.matching` — Section 8.1.
* :mod:`repro.algorithms.coloring` — Section 8.2 (plus the Linial-style
  (Δ+1)-coloring used as a fault-tolerant reference part).
* :mod:`repro.algorithms.edge_coloring` — Section 8.3.
"""
