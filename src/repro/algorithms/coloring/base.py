"""The (Δ+1)-Vertex Coloring Base Algorithm (Section 8.2).

Two rounds: nodes exchange predicted colors; a node whose prediction is a
legal color different from all its neighbors' predictions outputs it and
terminates (informing its neighbors, who remove the color from their
palettes).  A pruning algorithm.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class VertexColoringBaseProgram(NodeProgram):
    """Per-node program of the coloring base algorithm."""

    def __init__(self, tie_break_by_id: bool = False) -> None:
        # The initialization variant keeps a predicted color as long as
        # every neighbor with the *same* prediction has a smaller id.
        self._tie_break_by_id = tie_break_by_id
        self._keep = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: ctx.prediction for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            color = ctx.prediction
            palette_size = (ctx.delta or 0) + 1
            legal = isinstance(color, int) and 1 <= color <= palette_size
            if not legal:
                return
            if self._tie_break_by_id:
                self._keep = all(
                    other < ctx.node_id
                    for other in ctx.neighbors
                    if inbox.get(other) == color
                )
            else:
                self._keep = all(
                    inbox.get(other) != color for other in ctx.neighbors
                )
        elif ctx.round == 2 and self._keep:
            ctx.set_output(ctx.prediction)
            ctx.terminate()


class VertexColoringBaseAlgorithm(DistributedAlgorithm):
    """The 2-round (Δ+1)-Vertex Coloring Base Algorithm."""

    name = "coloring-base"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return VertexColoringBaseProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 2
