"""The (Δ+1)-Vertex Coloring initialization algorithm (Section 8.2).

A node outputs its predicted color provided all of its neighbors with the
same prediction have smaller identifiers.  Also a pruning algorithm; the
extendable partial solution it produces contains the base algorithm's,
so it is a reasonable initialization algorithm.
"""

from __future__ import annotations

from repro.algorithms.coloring.base import VertexColoringBaseProgram
from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.program import NodeProgram


class VertexColoringInitializationAlgorithm(DistributedAlgorithm):
    """The 2-round reasonable initialization algorithm for coloring."""

    name = "coloring-init"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return VertexColoringBaseProgram(tie_break_by_id=True)

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 2
