"""The measure-uniform (Δ+1)-Vertex Coloring algorithm (Section 8.2).

Each round, every active node whose identifier exceeds those of all its
active neighbors chooses a color from its palette (the colors of
``{1, ..., Δ+1}`` not output by any neighbor), informs its neighbors,
outputs it and terminates.  At least one node per component terminates
per round, so the round complexity on a component of ``s`` nodes is at
most ``s`` — asymptotically optimal for a measure-uniform coloring
algorithm by Lemma 4.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class PaletteGreedyColoringProgram(NodeProgram):
    """Per-node program of the palette greedy coloring.

    Quiescent with no timed wakeups at all: the algorithm has no round-
    number dependence, and a node acts in exactly the rounds where it is a
    local maximum — a condition that can only *become* true through a
    neighbor termination or crash, both of which wake the node for the
    very round in which the eager schedule would have had it act.
    """

    quiescent_when_idle = True

    def _palette_choice(self, ctx: NodeContext) -> int:
        blocked = {
            value
            for value in ctx.neighbor_outputs.values()
            if isinstance(value, int)
        }
        color = 1
        while color in blocked:
            color += 1
        return color

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.is_local_maximum():
            choice = self._palette_choice(ctx)
            return {other: choice for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.is_local_maximum():
            choice = self._palette_choice(ctx)
            palette_size = (ctx.delta or 0) + 1
            if choice > palette_size:
                raise RuntimeError(
                    f"node {ctx.node_id}: palette exhausted "
                    f"(choice {choice} > {palette_size})"
                )
            ctx.set_output(choice)
            ctx.terminate()


class PaletteGreedyColoringAlgorithm(DistributedAlgorithm):
    """The measure-uniform palette greedy coloring (1 round per pick)."""

    name = "greedy-coloring"
    safe_pause_interval = 1

    def build_program(self) -> NodeProgram:
        return PaletteGreedyColoringProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        # Usable as a (slow) reference: at most one round per node.
        return n + 1
