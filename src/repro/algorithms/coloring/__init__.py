"""(Δ+1)-Vertex Coloring algorithms (Section 8.2).

Includes the base and initialization algorithms, the measure-uniform
palette algorithm, and a Linial-style (Δ+1)-coloring —
``O(Δ² + log* d)`` rounds, independent of ``n``, fault tolerant — used
both as a reference algorithm for the coloring problem and as the
fault-tolerant part 1 of the Corollary 12 MIS reference.
"""

from repro.algorithms.coloring.base import VertexColoringBaseAlgorithm
from repro.algorithms.coloring.greedy import PaletteGreedyColoringAlgorithm
from repro.algorithms.coloring.initialization import (
    VertexColoringInitializationAlgorithm,
)
from repro.algorithms.coloring.linial import (
    LinialColoringAlgorithm,
    LinialColoringProgram,
    LinialColoringReference,
    linial_round_bound,
    linial_schedule,
)

__all__ = [
    "LinialColoringAlgorithm",
    "LinialColoringProgram",
    "LinialColoringReference",
    "PaletteGreedyColoringAlgorithm",
    "VertexColoringBaseAlgorithm",
    "VertexColoringInitializationAlgorithm",
    "linial_round_bound",
    "linial_schedule",
]
