"""Linial-style (Δ+1)-vertex coloring: O(Δ² + log* d) rounds, fault tolerant.

This is the repository's stand-in for the ``O(Δ + log* d)`` coloring
algorithms the paper cites (Barenboim–Elkin and relatives); see DESIGN.md
for the substitution rationale.  The structure:

1. **Linial color reduction** (the classic polynomial/cover-free-family
   argument).  With colors in ``{0, ..., m−1}``, pick a prime ``q`` with
   ``q ≥ kΔ + 1`` and ``q^(k+1) ≥ m`` and view each color as a degree-≤k
   polynomial over GF(q) (its base-``q`` digits).  A node with color
   ``c`` picks a point ``x`` where its polynomial differs from every
   active neighbor's polynomial — at most ``kΔ < q`` points are spoiled —
   and adopts the new color ``x·q + p_c(x) < q²``.  Properness is
   preserved, and the color count drops from ``m`` to ``q²``.  Iterating
   reaches ``O(Δ²)`` colors in a log*-type number of steps; all nodes
   compute the identical ``(k, q)`` schedule from the shared ``(d, Δ)``.

2. **Class-by-class final recoloring.**  For ``j = m_f−1, ..., 0``, one
   round per class: each node of class ``j`` takes the smallest color of
   ``{1, ..., Δ+1}`` not finalized by any neighbor.  Because at most
   ``deg ≤ Δ`` colors are blocked, a color always exists; because classes
   are independent sets, no two adjacent nodes choose in the same round.

Every node terminates at the end of the common schedule (the paper's
"wait until the known upper bound" convention), which makes the program
trivially safe to run intercepted inside the Parallel Template.  The
algorithm is *fault tolerant*: it only ever constrains against currently
active neighbors and finalized colors, so nodes crashing (or being
terminated by a concurrently running measure-uniform algorithm) never
break properness — exactly the property Section 7.4 requires of a part-1
reference.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.algorithm import DistributedAlgorithm, TwoPartReference
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


# ----------------------------------------------------------------------
# Schedule computation (shared knowledge: all nodes derive it from (d, Δ))
# ----------------------------------------------------------------------
def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    if value % 2 == 0:
        return value == 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def _next_prime(value: int) -> int:
    candidate = max(2, value)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


def linial_schedule(d: int, delta: int) -> Tuple[List[Tuple[int, int]], int]:
    """The common (k, q) step schedule and final color count.

    Returns ``(steps, m_final)`` where each step ``(k, q)`` reduces the
    color count ``m`` to ``q²`` using degree-≤k polynomials over GF(q).
    Steps are emitted while they strictly reduce the color count.
    """
    m = max(1, d)
    steps: List[Tuple[int, int]] = []
    while True:
        best: Optional[Tuple[int, int]] = None
        for k in (1, 2, 3, 4):
            q = _next_prime(
                max(k * delta + 1, math.ceil(m ** (1.0 / (k + 1))))
            )
            while q ** (k + 1) < m:
                q = _next_prime(q + 1)
            if q * q < m and (best is None or q * q < best[1] ** 2):
                best = (k, q)
        if best is None:
            return steps, m
        steps.append(best)
        m = best[1] ** 2


def linial_round_bound(d: int, delta: int) -> int:
    """Total rounds of the coloring: Linial steps + one round per class."""
    if delta <= 0:
        return 1
    steps, m_final = linial_schedule(d, delta)
    return len(steps) + m_final


def _poly_eval(digits: List[int], x: int, q: int) -> int:
    value = 0
    for coefficient in reversed(digits):
        value = (value * x + coefficient) % q
    return value


def _digits(value: int, q: int, count: int) -> List[int]:
    digits = []
    for _ in range(count):
        digits.append(value % q)
        value //= q
    return digits


# ----------------------------------------------------------------------
# The program
# ----------------------------------------------------------------------
class LinialColoringProgram(NodeProgram):
    """Per-node program of the Linial-style (Δ+1)-coloring.

    Args:
        respect_neighbor_outputs: When true, colors already *output* by
            terminated neighbors (``ctx.neighbor_outputs``) are treated
            as finalized constraints — required when the coloring runs
            after an initialization algorithm that let some nodes output
            predicted colors (the list-coloring view of Section 8.2).
            Leave false when the program runs intercepted as part 1 of
            the Corollary 12 MIS reference, where terminated neighbors
            carry MIS bits, not colors.
    """

    def __init__(self, respect_neighbor_outputs: bool = False) -> None:
        self._respect_outputs = respect_neighbor_outputs
        self._steps: List[Tuple[int, int]] = []
        self._m_final = 0
        self._total_rounds = 0
        self._color = 0
        self._final: Optional[int] = None
        self._neighbor_finals: Dict[int, int] = {}

    # -- knowledge ------------------------------------------------------
    def setup(self, ctx: NodeContext) -> None:
        delta = ctx.delta or 0
        if delta <= 0:
            ctx.set_output(1)
            ctx.terminate()
            return
        self._steps, self._m_final = linial_schedule(ctx.d, delta)
        self._total_rounds = len(self._steps) + self._m_final
        self._color = ctx.node_id - 1

    # -- rounds ----------------------------------------------------------
    def compose(self, ctx: NodeContext) -> Outbox:
        payload = (self._color, self._final)
        return {other: payload for other in ctx.active_neighbors}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        delta = ctx.delta or 0
        round_index = ctx.round
        neighbor_colors: Dict[int, int] = {}
        for sender, payload in inbox.items():
            color, final = payload
            neighbor_colors[sender] = color
            if final is not None:
                self._neighbor_finals[sender] = final
        if self._respect_outputs:
            for sender, value in ctx.neighbor_outputs.items():
                if isinstance(value, int):
                    self._neighbor_finals[sender] = value

        if round_index <= len(self._steps):
            k, q = self._steps[round_index - 1]
            self._color = self._linial_step(ctx, k, q, neighbor_colors)
        else:
            class_index = self._m_final - (round_index - len(self._steps))
            if self._final is None and self._color == class_index:
                blocked = set(self._neighbor_finals.values())
                choice = 1
                while choice in blocked:
                    choice += 1
                if choice > delta + 1:
                    raise RuntimeError(
                        f"node {ctx.node_id}: no free color in 1..{delta + 1}"
                    )
                self._final = choice

        if round_index >= self._total_rounds:
            assert self._final is not None
            ctx.set_output(self._final)
            ctx.terminate()

    def _linial_step(
        self, ctx: NodeContext, k: int, q: int, neighbor_colors: Dict[int, int]
    ) -> int:
        own = _digits(self._color, q, k + 1)
        spoiled = set()
        for other, color in neighbor_colors.items():
            if other not in ctx.active_neighbors:
                continue
            theirs = _digits(color, q, k + 1)
            for x in range(q):
                if _poly_eval(own, x, q) == _poly_eval(theirs, x, q):
                    spoiled.add(x)
        for x in range(q):
            if x not in spoiled:
                return x * q + _poly_eval(own, x, q)
        raise RuntimeError(
            f"node {ctx.node_id}: no safe evaluation point (q={q}, k={k}, "
            f"{len(neighbor_colors)} neighbors) — schedule invariant broken"
        )


class LinialColoringAlgorithm(DistributedAlgorithm):
    """The Linial-style (Δ+1)-coloring as a standalone algorithm.

    Usable directly on the (Δ+1)-Vertex Coloring problem and as the
    reference ``R`` in the Simple and Consecutive Templates for coloring.
    """

    name = "linial-coloring"

    def __init__(self, respect_neighbor_outputs: bool = True) -> None:
        self._respect = respect_neighbor_outputs

    def build_program(self) -> NodeProgram:
        return LinialColoringProgram(respect_neighbor_outputs=self._respect)

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return linial_round_bound(d, delta)


class LinialColoringReference(TwoPartReference):
    """The coloring as a Parallel-Template reference for the coloring problem.

    The whole algorithm is fault tolerant, so part 1 is everything and its
    stored color is the node's final output (``part1_outputs_are_final``).
    """

    name = "linial-coloring-ref"
    part1_outputs_are_final = True

    def __init__(self, respect_neighbor_outputs: bool = True) -> None:
        self._respect = respect_neighbor_outputs

    def build_part1(self) -> NodeProgram:
        return LinialColoringProgram(respect_neighbor_outputs=self._respect)

    def part1_bound(self, n: int, delta: int, d: int) -> int:
        return linial_round_bound(d, delta)
