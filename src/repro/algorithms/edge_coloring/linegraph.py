"""(2Δ−1)-edge coloring via Linial on the line graph: O(Δ² + log* d), n-free.

Edge coloring a graph is vertex coloring its line graph.  Each edge is a
*virtual node*, hosted by its higher-identifier endpoint (the manager),
whose virtual identifier encodes the endpoint pair (distinct, bounded by
``(d+1)²``); virtual neighbors are the edges sharing an endpoint, so the
virtual maximum degree is ``2Δ − 2`` and the Linial-style coloring
(:class:`~repro.algorithms.coloring.linial.LinialColoringProgram`)
finishes with at most ``2Δ − 1`` colors — exactly the (2Δ−1)-Edge
Coloring problem — in a number of virtual rounds depending only on Δ and
d.

Simulation structure:

* **round 1 (bootstrap)** — every node broadcasts its neighbor list, so
  the manager of edge ``{u, v}`` learns both stars and hence the edge's
  full virtual neighborhood;
* **rounds 2k, 2k+1 (virtual round k)** — virtual messages from edge
  ``e`` to an adjacent edge ``e'`` travel through their shared endpoint
  (or directly when the managers are adjacent/identical), buffered so
  every virtual node sees synchronous virtual rounds;
* **completion** — when a virtual node outputs its color, the manager
  records its side and notifies the other endpoint.

This gives the Maximal Matching and (2Δ−1)-Edge Coloring problems a
reference algorithm whose worst case is independent of ``n`` — enabling
the same robustness-crossover story as MIS enjoys via Corollary 12 (see
the E23 benchmark).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms.coloring.linial import (
    LinialColoringProgram,
    linial_round_bound,
)
from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


def edge_id(u: int, v: int, d: int) -> int:
    """The virtual identifier of edge ``{u, v}``: distinct, ≥ 1."""
    low, high = min(u, v), max(u, v)
    return low * (d + 1) + high


def decode_edge(identifier: int, d: int) -> Tuple[int, int]:
    """Inverse of :func:`edge_id` (returns ``(low, high)``)."""
    return identifier // (d + 1), identifier % (d + 1)


def line_graph_round_bound(d: int, delta: int) -> int:
    """Real-round bound: bootstrap + 2 per virtual round + completion."""
    if delta <= 0:
        return 1
    virtual_delta = max(0, 2 * delta - 2)
    virtual_d = (d + 1) * (d + 1)
    if virtual_delta == 0:
        virtual_rounds = 1
    else:
        virtual_rounds = linial_round_bound(virtual_d, virtual_delta)
    return 1 + 2 * virtual_rounds + 2


class _VirtualEdgeContext:
    """The context a virtual edge-node presents to the Linial program.

    Provides exactly the knowledge the coloring uses: virtual identifier,
    virtual neighbor set, Δ and d of the line graph, and write-once
    output capture.  The virtual node count ``n`` is unknown (and unused:
    the Linial schedule depends only on d and Δ).
    """

    def __init__(
        self,
        identifier: int,
        neighbors: frozenset,
        virtual_d: int,
        virtual_delta: int,
    ) -> None:
        self.node_id = identifier
        self.neighbors = neighbors
        self.active_neighbors = set(neighbors)
        self.neighbor_outputs: Dict[int, Any] = {}
        self.crashed_neighbors: set = set()
        self.n = 0  # unknown; never consulted by the Linial schedule
        self.d = virtual_d
        self.delta = virtual_delta
        self.prediction = None
        self.attrs: Dict[str, Any] = {}
        self.round = 0
        self.finished = False
        self.result: Optional[int] = None

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def is_local_maximum(self) -> bool:
        return all(other < self.node_id for other in self.active_neighbors)

    def set_output(self, value: Any) -> None:
        self.result = value

    def terminate(self) -> None:
        self.finished = True


class LineGraphColoringProgram(NodeProgram):
    """Host program: simulates one Linial virtual node per managed edge."""

    def __init__(self) -> None:
        # edge id -> (program, virtual context); built after the bootstrap.
        self._managed: Dict[int, Tuple[LinialColoringProgram, _VirtualEdgeContext]] = {}
        self._inboxes: Dict[int, Dict[int, Any]] = {}
        self._to_forward: List[Tuple[int, int, Any]] = []
        self._neighbor_stars: Dict[int, frozenset] = {}
        self._neighbor_used: Dict[int, frozenset] = {}
        # Managed edges whose final color has been sent to the other
        # endpoint; termination waits for completeness of this set, so
        # the program is safe to run with intercepted outputs (where the
        # engine's termination announcement does not exist).
        self._announced: set = set()

    # -- lifecycle ---------------------------------------------------------
    def setup(self, ctx: NodeContext) -> None:
        if not ctx.neighbors:
            ctx.terminate()

    def _build_virtual_nodes(self, ctx: NodeContext) -> None:
        delta = ctx.delta or 1
        virtual_delta = max(0, 2 * delta - 2)
        virtual_d = (ctx.d + 1) * (ctx.d + 1)
        for other in ctx.neighbors:
            if ctx.node_id < other:
                continue  # managed by the other endpoint
            if ctx.output_part(other) is not None:
                continue  # already colored by an earlier component
            identifier = edge_id(ctx.node_id, other, ctx.d)
            neighbors = set()
            for w in ctx.neighbors:
                if w != other:
                    neighbors.add(edge_id(ctx.node_id, w, ctx.d))
            for w in self._neighbor_stars.get(other, frozenset()):
                if w != ctx.node_id:
                    neighbors.add(edge_id(other, w, ctx.d))
            virtual_ctx = _VirtualEdgeContext(
                identifier, frozenset(neighbors), virtual_d, virtual_delta
            )
            # List-coloring constraints: colors already used at either
            # endpoint (by an initialization or measure-uniform component
            # that ran earlier) are injected as pseudo neighbor outputs,
            # which the Linial program folds into its final palette.
            blocked = set(self._my_used_colors(ctx))
            blocked.update(self._neighbor_used.get(other, frozenset()))
            for index, color in enumerate(sorted(blocked)):
                virtual_ctx.neighbor_outputs[-(index + 1)] = color
            program = LinialColoringProgram(respect_neighbor_outputs=True)
            program.setup(virtual_ctx)
            self._managed[identifier] = (program, virtual_ctx)
            self._inboxes[identifier] = {}

    def _my_used_colors(self, ctx: NodeContext):
        return {
            ctx.output_part(w)
            for w in ctx.neighbors
            if ctx.output_part(w) is not None
        }

    # -- routing helpers ------------------------------------------------------
    def _route(
        self,
        ctx: NodeContext,
        outbox: Dict[int, List[tuple]],
        src: int,
        dst: int,
        payload: Any,
    ) -> None:
        """Move a virtual message one hop toward dst's manager."""
        if dst in self._managed:
            self._inboxes[dst][src] = payload
            return
        dst_low, dst_high = decode_edge(dst, ctx.d)
        manager = dst_high
        if manager in ctx.neighbors:
            outbox.setdefault(manager, []).append(("d", dst, src, payload))
            return
        src_low, src_high = decode_edge(src, ctx.d)
        shared = {src_low, src_high} & {dst_low, dst_high}
        shared.discard(ctx.node_id)
        if not shared:
            return  # not actually adjacent; drop
        relay = min(shared)
        outbox.setdefault(relay, []).append(("f", dst, src, payload))

    # -- rounds --------------------------------------------------------------
    def compose(self, ctx: NodeContext) -> Outbox:
        outbox: Dict[int, List[tuple]] = {}
        if ctx.round == 1:
            star = (
                "star",
                tuple(sorted(ctx.neighbors)),
                tuple(sorted(self._my_used_colors(ctx))),
            )
            return {other: [star] for other in ctx.active_neighbors}

        if ctx.round % 2 == 0:
            # Round A of a virtual round: virtual compose + first hop.
            for identifier, (program, virtual_ctx) in sorted(self._managed.items()):
                if virtual_ctx.finished:
                    continue
                virtual_ctx.round += 1
                virtual_out = program.compose(virtual_ctx) or {}
                for dst, payload in virtual_out.items():
                    self._route(ctx, outbox, identifier, dst, payload)
        else:
            # Round B: forward relayed messages.
            for dst, src, payload in self._to_forward:
                self._route(ctx, outbox, src, dst, payload)
            self._to_forward = []
        # Any round: announce freshly finished edge colors to the other
        # endpoint, exactly once each.
        for identifier, (program, virtual_ctx) in sorted(self._managed.items()):
            if (
                virtual_ctx.finished
                and virtual_ctx.result is not None
                and identifier not in self._announced
            ):
                low, high = decode_edge(identifier, ctx.d)
                other = low if high == ctx.node_id else high
                outbox.setdefault(other, []).append(
                    ("final", identifier, 0, virtual_ctx.result)
                )
                self._announced.add(identifier)
        return outbox

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            for sender, items in inbox.items():
                for kind, star, used in items:
                    if kind == "star":
                        self._neighbor_stars[sender] = frozenset(star)
                        self._neighbor_used[sender] = frozenset(used)
            self._build_virtual_nodes(ctx)
            return

        for sender, items in inbox.items():
            for kind, dst, src, payload in items:
                if kind == "d":
                    if dst in self._inboxes:
                        self._inboxes[dst][src] = payload
                elif kind == "f":
                    self._to_forward.append((dst, src, payload))
                elif kind == "final":
                    low, high = decode_edge(dst, ctx.d)
                    other = low if high == ctx.node_id else high
                    if ctx.output_part(other) is None:
                        ctx.set_output_part(other, payload)

        if ctx.round % 2 == 1 and ctx.round > 1:
            # End of a virtual round: deliver gathered inboxes.
            for identifier, (program, virtual_ctx) in sorted(self._managed.items()):
                if virtual_ctx.finished:
                    continue
                program.process(virtual_ctx, self._inboxes[identifier])
                self._inboxes[identifier] = {}
                if virtual_ctx.finished and virtual_ctx.result is not None:
                    low, high = decode_edge(identifier, ctx.d)
                    other = low if high == ctx.node_id else high
                    if ctx.output_part(other) is None:
                        ctx.set_output_part(other, virtual_ctx.result)

        # A terminated manager's announced output carries our edge color.
        for sender, value in ctx.neighbor_outputs.items():
            if isinstance(value, dict) and ctx.output_part(sender) is None:
                color = value.get(ctx.node_id)
                if color is not None:
                    ctx.set_output_part(sender, color)

        all_finished_announced = all(
            identifier in self._announced
            for identifier, (program, virtual_ctx) in self._managed.items()
            if virtual_ctx.finished and virtual_ctx.result is not None
        )
        if (
            ctx.neighbors
            and all_finished_announced
            and all(ctx.output_part(other) is not None for other in ctx.neighbors)
        ):
            ctx.terminate()


class LineGraphEdgeColoringAlgorithm(DistributedAlgorithm):
    """(2Δ−1)-edge coloring in O(Δ² + log* d) rounds (n-independent)."""

    name = "linegraph-edge-coloring"

    def build_program(self) -> NodeProgram:
        return LineGraphColoringProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return line_graph_round_bound(d, delta)
