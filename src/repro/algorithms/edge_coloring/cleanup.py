"""The (2Δ−1)-Edge Coloring clean-up algorithm (Section 8.3).

One round: each active node sends the colors it has output along its
uncolored edges, so both endpoints of every uncolored edge agree on its
palette.  In this repository the measure-uniform algorithm rebuilds its
palette knowledge from refresh rounds, so the clean-up also serves nodes
whose last incident edge was colored from the other side: they detect
completeness and terminate.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class EdgeColoringCleanupProgram(NodeProgram):
    """Per-node program of the edge-coloring clean-up."""

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round != 1:
            return {}
        used = sorted(
            ctx.output_part(other)
            for other in ctx.neighbors
            if ctx.output_part(other) is not None
        )
        return {
            other: ("used", tuple(used))
            for other in ctx.active_neighbors
            if ctx.output_part(other) is None
        }

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round != 1:
            return
        if all(ctx.output_part(other) is not None for other in ctx.neighbors) or (
            not ctx.active_neighbors
        ):
            ctx.terminate()


class EdgeColoringCleanupAlgorithm(DistributedAlgorithm):
    """The one-round edge-coloring clean-up algorithm."""

    name = "edge-coloring-cleanup"

    def build_program(self) -> NodeProgram:
        return EdgeColoringCleanupProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 1
