"""(2Δ−1)-Edge Coloring algorithms (Section 8.3).

The base algorithm (≤2 rounds), the 2-hop-dominance measure-uniform
algorithm, and the clean-up algorithm.
"""

from repro.algorithms.edge_coloring.base import EdgeColoringBaseAlgorithm
from repro.algorithms.edge_coloring.cleanup import EdgeColoringCleanupAlgorithm
from repro.algorithms.edge_coloring.greedy import GreedyEdgeColoringAlgorithm
from repro.algorithms.edge_coloring.linegraph import LineGraphEdgeColoringAlgorithm

__all__ = [
    "EdgeColoringBaseAlgorithm",
    "EdgeColoringCleanupAlgorithm",
    "GreedyEdgeColoringAlgorithm",
    "LineGraphEdgeColoringAlgorithm",
]
