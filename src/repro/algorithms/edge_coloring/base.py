"""The (2Δ−1)-Edge Coloring Base Algorithm (Section 8.3).

Round 1: each node sends its predicted color for each incident edge,
provided none of its other edges share that predicted color; an edge
whose endpoints propose the same color is output by both.  A node with
all incident edges colored terminates at the end of round 1.  Round 2:
remaining nodes exchange the colors they output so palettes stay
consistent.  If the predictions are correct the algorithm terminates in
one round; otherwise it takes two.
"""

from __future__ import annotations

from typing import Dict

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class EdgeColoringBaseProgram(NodeProgram):
    """Per-node program of the edge-coloring base algorithm."""

    def setup(self, ctx: NodeContext) -> None:
        if not ctx.neighbors:
            # No incident edges: the (vacuous) output is complete.
            ctx.terminate()

    def _proposals(self, ctx: NodeContext) -> Dict[int, int]:
        prediction = ctx.prediction or {}
        if not isinstance(prediction, dict):
            return {}
        palette_size = max(1, 2 * (ctx.delta or 1) - 1)
        counts: Dict[int, int] = {}
        for color in prediction.values():
            if isinstance(color, int):
                counts[color] = counts.get(color, 0) + 1
        return {
            other: color
            for other, color in prediction.items()
            if other in ctx.neighbors
            and isinstance(color, int)
            and 1 <= color <= palette_size
            and counts.get(color) == 1
        }

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {
                other: ("propose", color)
                for other, color in self._proposals(ctx).items()
                if other in ctx.active_neighbors
            }
        if ctx.round == 2:
            fixed = {
                other: ctx.output_part(other)
                for other in ctx.neighbors
                if ctx.output_part(other) is not None
            }
            return {
                other: ("fixed", sorted(fixed.values()))
                for other in ctx.active_neighbors
                if other not in fixed
            }
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            proposals = self._proposals(ctx)
            for other, color in proposals.items():
                received = inbox.get(other)
                if received == ("propose", color):
                    ctx.set_output_part(other, color)
            if all(ctx.output_part(other) is not None for other in ctx.neighbors):
                ctx.terminate()
        # Round 2's "fixed" broadcasts only synchronize palette knowledge;
        # the measure-uniform algorithm rebuilds palettes from scratch, so
        # no state needs to be retained here.


class EdgeColoringBaseAlgorithm(DistributedAlgorithm):
    """The ≤2-round edge-coloring base (and initialization) algorithm."""

    name = "edge-coloring-base"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return EdgeColoringBaseProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 2
