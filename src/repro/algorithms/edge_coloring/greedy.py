"""The measure-uniform (2Δ−1)-Edge Coloring algorithm (Section 8.3).

Rounds alternate between *refresh* (odd) and *act* (even):

* refresh: every active node sends its current uncolored-neighbor set and
  used colors to its active neighbors;
* act: every node whose identifier exceeds those of all nodes within two
  uncolored edges chooses a distinct palette color per uncolored incident
  edge, sends it to the other endpoint, outputs its side and terminates;
  endpoints output their side on receipt.

Two-hop dominance prevents two nodes from coloring edges sharing an
endpoint in the same round.  Because identifiers are static and uncolored
structures only shrink, acting on the previous refresh's snapshot is
always safe.  At least one node per component finishes every two rounds,
so a component of ``s`` nodes completes within ``2s + O(1)`` rounds
(the paper's bound is ``2s − 3``; the O(1) is our bootstrap refresh) —
asymptotically optimal by Lemma 14.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class GreedyEdgeColoringProgram(NodeProgram):
    """Per-node program of the 2-hop-dominance edge coloring."""

    def __init__(self) -> None:
        # Last refresh snapshot: neighbor -> (uncolored ids, used colors).
        self._info: Dict[int, Tuple[Set[int], Set[int]]] = {}

    # -- local views -----------------------------------------------------
    def _uncolored(self, ctx: NodeContext) -> Set[int]:
        return {
            other
            for other in ctx.active_neighbors
            if ctx.output_part(other) is None
        }

    def _used(self, ctx: NodeContext) -> Set[int]:
        return {
            ctx.output_part(other)
            for other in ctx.neighbors
            if ctx.output_part(other) is not None
        }

    def _maybe_finish(self, ctx: NodeContext) -> None:
        if not self._uncolored(ctx):
            ctx.terminate()

    # -- rounds ------------------------------------------------------------
    def setup(self, ctx: NodeContext) -> None:
        if not ctx.active_neighbors:
            ctx.terminate()

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round % 2 == 1:
            payload = (
                "info",
                tuple(sorted(self._uncolored(ctx))),
                tuple(sorted(self._used(ctx))),
            )
            return {other: payload for other in ctx.active_neighbors}
        if self._dominant(ctx):
            return {
                other: ("color", color)
                for other, color in self._choose_colors(ctx).items()
            }
        return {}

    def _dominant(self, ctx: NodeContext) -> bool:
        uncolored = self._uncolored(ctx)
        if not uncolored:
            return False
        within_two_hops: Set[int] = set(uncolored)
        for other in uncolored:
            info = self._info.get(other)
            if info is not None:
                within_two_hops.update(info[0])
        within_two_hops.discard(ctx.node_id)
        return all(other < ctx.node_id for other in within_two_hops)

    def _choose_colors(self, ctx: NodeContext) -> Dict[int, int]:
        palette_size = max(1, 2 * (ctx.delta or 1) - 1)
        my_used = self._used(ctx)
        chosen: Dict[int, int] = {}
        for other in sorted(self._uncolored(ctx)):
            info = self._info.get(other)
            their_used = info[1] if info is not None else set()
            blocked = my_used | set(their_used) | set(chosen.values())
            color = 1
            while color in blocked:
                color += 1
            if color > palette_size:
                raise RuntimeError(
                    f"node {ctx.node_id}: edge palette exhausted for "
                    f"edge to {other}"
                )
            chosen[other] = color
        return chosen

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round % 2 == 1:
            for sender, payload in inbox.items():
                if isinstance(payload, tuple) and payload and payload[0] == "info":
                    self._info[sender] = (set(payload[1]), set(payload[2]))
            return
        if self._dominant(ctx):
            for other, color in self._choose_colors(ctx).items():
                ctx.set_output_part(other, color)
            ctx.terminate()
            return
        for sender, payload in inbox.items():
            if isinstance(payload, tuple) and payload and payload[0] == "color":
                ctx.set_output_part(sender, payload[1])
        self._maybe_finish(ctx)


class GreedyEdgeColoringAlgorithm(DistributedAlgorithm):
    """The measure-uniform edge coloring (refresh/act round pairs)."""

    name = "greedy-edge-coloring"
    safe_pause_interval = 2

    def build_program(self) -> NodeProgram:
        return GreedyEdgeColoringProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        # Usable as a (slow) reference: one act round pair per node.
        return 2 * n + 3
