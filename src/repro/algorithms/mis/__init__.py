"""Maximal Independent Set algorithms.

Implements every MIS algorithm the paper uses:

* :class:`~repro.algorithms.mis.base.MISBaseAlgorithm` — the 3-round
  pruning base algorithm (Section 4) that defines error components.
* :class:`~repro.algorithms.mis.initialization.MISInitializationAlgorithm`
  — the reasonable initialization algorithm with identifier tie-breaking.
* :class:`~repro.algorithms.mis.greedy.GreedyMISAlgorithm` — Algorithm 1,
  the measure-uniform workhorse (Lemmas 1 and 2).
* :class:`~repro.algorithms.mis.cleanup.MISCleanupAlgorithm` — the
  one-round clean-up (Section 7.2).
* :class:`~repro.algorithms.mis.luby.LubyMISAlgorithm` — Luby's randomized
  algorithm (Section 10).
* :class:`~repro.algorithms.mis.color_reduction.ColoringMISReference` —
  the two-part reference of Corollary 12 (fault-tolerant coloring, then
  greedy-augmented color reduction).
* :class:`~repro.algorithms.mis.clustering.ClusteringMISReference` — the
  phased clustering reference of Corollary 10 (substituted; see DESIGN.md).
* :class:`~repro.algorithms.mis.blackwhite.BlackWhiteGreedyMIS` — the
  black/white alternating measure-uniform algorithm (Section 9.1).
* :mod:`~repro.algorithms.mis.rooted_tree` — the rooted-tree
  initialization, Algorithm 6, and the Corollary 15 reference.
"""

from repro.algorithms.mis.alternating import AlternatingColorWrapper
from repro.algorithms.mis.base import MISBaseAlgorithm
from repro.algorithms.mis.blackwhite import BlackWhiteGreedyMIS
from repro.algorithms.mis.cleanup import MISCleanupAlgorithm
from repro.algorithms.mis.clustering import ClusteringMISReference
from repro.algorithms.mis.color_reduction import (
    ColoringMISReference,
    LinialMISAlgorithm,
)
from repro.algorithms.mis.greedy import GreedyMISAlgorithm
from repro.algorithms.mis.hardened import (
    HardenedGreedyMIS,
    HardenedMISInitialization,
)
from repro.algorithms.mis.initialization import MISInitializationAlgorithm
from repro.algorithms.mis.luby import LubyMISAlgorithm
from repro.algorithms.mis.rooted_tree import (
    RootedTreeColoringMISReference,
    RootedTreeMISInitialization,
    RootsAndLeavesMISAlgorithm,
)

__all__ = [
    "AlternatingColorWrapper",
    "BlackWhiteGreedyMIS",
    "ClusteringMISReference",
    "ColoringMISReference",
    "GreedyMISAlgorithm",
    "HardenedGreedyMIS",
    "HardenedMISInitialization",
    "LinialMISAlgorithm",
    "LubyMISAlgorithm",
    "MISBaseAlgorithm",
    "MISCleanupAlgorithm",
    "MISInitializationAlgorithm",
    "RootedTreeColoringMISReference",
    "RootedTreeMISInitialization",
    "RootsAndLeavesMISAlgorithm",
]
