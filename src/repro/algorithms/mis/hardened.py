"""Fault-hardened MIS components for runs under message adversaries.

The stock MIS Initialization and Greedy MIS Algorithms are correct in the
paper's reliable synchronous model, but their safety leans on explicit
JOIN messages: if an adversary drops the JOIN a joining node sends, a
neighbor may later join too and two adjacent nodes output 1.  These
variants restore unconditional safety under message loss by leaning only
on information the engine delivers reliably — the termination
announcements of Section 7 (``ctx.neighbor_outputs`` /
``ctx.active_neighbors``), which model a node's final-round notification
and are part of the synchronous abstraction, not the attackable channel
(see docs/MODEL.md, "Fault model"):

* a node *joins* only when it is a local maximum among active neighbors
  **and** no neighbor is known to have output 1 — two adjacent joiners in
  the same round would each have to exceed the other's identifier;
* a node treats a missing expected message as suspicious rather than as
  a "no": the hardened initialization joins only when it heard from
  *every* active neighbor, so dropped prediction exchanges make nodes
  conservative (they defer to the greedy phase) instead of wrong.

Message loss therefore only ever *delays* decisions (the JOIN fast path
degrades to the next-round notification path); it cannot break
independence or domination.  Corruption of prediction *values* in
transit is outside this guarantee — a Byzantine channel needs
authentication, not hardening.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


def _sees_one(ctx: NodeContext) -> bool:
    """Whether some neighbor reliably announced an output of 1."""
    return any(value == 1 for value in ctx.neighbor_outputs.values())


class HardenedMISInitializationProgram(NodeProgram):
    """Drop-tolerant variant of the MIS Initialization Algorithm."""

    JOIN = "in"

    def __init__(self) -> None:
        self._in_independent_set = False
        self._dominated = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: ctx.prediction for other in ctx.active_neighbors}
        # The _sees_one guard must match round 2's process exactly: a
        # neighbor may have announced a 1 between the round-1 decision and
        # now, and sending JOIN while aborting the join would falsely
        # dominate a neighbor.  Compose and process of the same round see
        # the same notifications, so the two checks always agree.
        if ctx.round == 2 and self._in_independent_set and not _sees_one(ctx):
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            # A missing message from an active neighbor means the channel
            # lost it; joining on incomplete information could pick two
            # adjacent 1s, so the node defers to the greedy phase instead.
            heard_everyone = all(other in inbox for other in ctx.active_neighbors)
            self._in_independent_set = (
                ctx.prediction == 1
                and heard_everyone
                and not _sees_one(ctx)
                and all(
                    other < ctx.node_id
                    for other in ctx.neighbors
                    if inbox.get(other) == 1
                )
            )
        elif ctx.round == 2:
            # Re-checked here: a neighbor may have announced a 1 since the
            # decision (relevant for nodes rejoining after a crash, whose
            # restarted round 1 can be vacuous when all neighbors decided).
            if self._in_independent_set and not _sees_one(ctx):
                ctx.set_output(1)
                ctx.terminate()
            elif self.JOIN in inbox.values():
                self._dominated = True
        elif ctx.round == 3 and (self._dominated or _sees_one(ctx)):
            # The notification path covers a dropped JOIN with no round
            # penalty: a round-2 joiner is visible in neighbor_outputs here.
            ctx.set_output(0)
            ctx.terminate()


class HardenedMISInitialization(DistributedAlgorithm):
    """Hardened initialization: same 3-round bound, safe under loss."""

    name = "mis-init-hardened"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return HardenedMISInitializationProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 3


class HardenedGreedyMISProgram(NodeProgram):
    """Drop-tolerant variant of Algorithm 1 (Greedy MIS)."""

    JOIN = "in"

    def __init__(self) -> None:
        self._dominated = False

    def _can_join(self, ctx: NodeContext) -> bool:
        return ctx.is_local_maximum() and not _sees_one(ctx)

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round % 2 == 1 and self._can_join(ctx):
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if _sees_one(ctx):
            self._dominated = True
        if ctx.round % 2 == 1:
            if self._can_join(ctx):
                ctx.set_output(1)
                ctx.terminate()
            elif self.JOIN in inbox.values():
                self._dominated = True
        elif self._dominated:
            ctx.set_output(0)
            ctx.terminate()


class HardenedGreedyMIS(DistributedAlgorithm):
    """Hardened Greedy MIS: measure-uniform shape, safe under loss.

    Safety argument: two adjacent nodes can only both output 1 if they
    join in the same odd round while both still active — but then each
    is in the other's ``active_neighbors`` and ``is_local_maximum``
    demands each identifier exceed the other.  Joins in different rounds
    are excluded by the ``neighbor_outputs`` check, which the engine
    updates reliably one round after a termination.  Progress: the
    highest-identifier active undecided node always joins or is
    dominated within 2 rounds, so the algorithm terminates in at most
    ``2n`` rounds regardless of the drop pattern.
    """

    name = "greedy-mis-hardened"
    safe_pause_interval = 2

    def build_program(self) -> NodeProgram:
        return HardenedGreedyMISProgram()
