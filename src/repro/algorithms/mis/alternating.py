"""The generic black/white alternation combinator (Section 9.1).

The paper describes U_bw generically:

    Suppose we have a measure-uniform algorithm, U, ... that can be
    divided into short phases. ... Then we can obtain another
    measure-uniform algorithm, U_bw, by alternately running phases on the
    black nodes and the white nodes.  When U is running on the black
    (white) nodes, it ignores the white (black) nodes, except that,
    before a black (white) node outputs 1 and terminates, it informs all
    its active neighbors. ... If necessary, at the end of each phase, a
    clean-up algorithm is performed.

:class:`AlternatingColorWrapper` implements exactly that, for *any*
phase-divisible measure-uniform MIS algorithm (Greedy, Luby, ...): each
node runs a private instance of U whose context is filtered to its own
color class, phases alternate black/white, and the problem's clean-up
runs between phases (new 1-outputs are visible across colors through the
engine's termination announcements — the paper's "informs all its active
neighbors").

The specialized :class:`~repro.algorithms.mis.blackwhite.
BlackWhiteGreedyMIS` remains the paper-faithful tight integration for
Greedy (clean-up folded into the phases); this combinator is the
framework-level generalization.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algorithm import DistributedAlgorithm
from repro.core.composition import SubContext
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox

BLACK = 1
WHITE = 0


class AlternatingColorProgram(NodeProgram):
    """Per-node driver of the generic U_bw.

    Round 1 exchanges prediction colors.  Then blocks of
    ``phase_length + 1`` rounds alternate: ``phase_length`` rounds of the
    wrapped algorithm on the current color class, then one clean-up round
    in which any active node adjacent to a new 1-output retires with 0.
    """

    def __init__(self, child: NodeProgram, phase_length: int) -> None:
        self._child = child
        self._phase_length = phase_length
        self._child_ctx: Optional[SubContext] = None
        self._neighbor_colors: Dict[int, int] = {}
        self._colors_known = False

    def _my_color(self, ctx: NodeContext) -> int:
        return BLACK if ctx.prediction == 1 else WHITE

    def _block_stage(self, round_index: int) -> tuple:
        """Map a global round to (color, stage) within the block cycle.

        Returns ``("exchange", None)`` for round 1; afterwards blocks of
        ``phase_length + 1`` rounds alternate black and white, with the
        last round of each block being the clean-up.
        """
        if round_index == 1:
            return ("exchange", None)
        offset = round_index - 2
        block = offset // (self._phase_length + 1)
        within = offset % (self._phase_length + 1)
        color = BLACK if block % 2 == 0 else WHITE
        if within == self._phase_length:
            return ("cleanup", color)
        return ("phase", color)

    def _ensure_child_ctx(self, ctx: NodeContext) -> SubContext:
        if self._child_ctx is None:
            mine = self._my_color(ctx)
            colors = self._neighbor_colors

            def same_color(other: int) -> bool:
                return colors.get(other) == mine

            self._child_ctx = SubContext(ctx, neighbor_filter=same_color)
            self._child.setup(self._child_ctx)
        return self._child_ctx

    def compose(self, ctx: NodeContext) -> Outbox:
        stage, color = self._block_stage(ctx.round)
        if stage == "exchange":
            return {
                other: ("color", self._my_color(ctx))
                for other in ctx.active_neighbors
            }
        if stage == "phase" and color == self._my_color(ctx):
            child_ctx = self._ensure_child_ctx(ctx)
            if not child_ctx.finished:
                child_ctx.round += 1
                return self._child.compose(child_ctx) or {}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        stage, color = self._block_stage(ctx.round)
        if stage == "exchange":
            for sender, payload in inbox.items():
                if isinstance(payload, tuple) and payload[0] == "color":
                    self._neighbor_colors[sender] = payload[1]
            return
        if stage == "phase" and color == self._my_color(ctx):
            child_ctx = self._ensure_child_ctx(ctx)
            if not child_ctx.finished:
                self._child.process(child_ctx, inbox)
            return
        if stage == "cleanup":
            if any(value == 1 for value in ctx.neighbor_outputs.values()):
                ctx.set_output(0)
                ctx.terminate()


class AlternatingColorWrapper(DistributedAlgorithm):
    """U_bw for any phase-divisible measure-uniform MIS algorithm.

    Args:
        measure_uniform: The wrapped algorithm (its
            ``safe_pause_interval`` becomes the default phase length).
        phase_length: Rounds of the wrapped algorithm per color phase;
            must be a multiple of its safe pause interval.
    """

    uses_predictions = True

    def __init__(
        self,
        measure_uniform: DistributedAlgorithm,
        phase_length: Optional[int] = None,
    ) -> None:
        interval = measure_uniform.safe_pause_interval
        self._phase_length = phase_length or interval
        if self._phase_length % interval:
            raise ValueError(
                f"phase length {self._phase_length} is not a multiple of "
                f"{measure_uniform.name}'s safe pause interval {interval}"
            )
        self._measure_uniform = measure_uniform
        self.name = f"alternating({measure_uniform.name})"
        # One full cycle = black phase + clean-up + white phase + clean-up.
        self.safe_pause_interval = 2 * (self._phase_length + 1)

    def build_program(self) -> NodeProgram:
        return AlternatingColorProgram(
            self._measure_uniform.build_program(), self._phase_length
        )
