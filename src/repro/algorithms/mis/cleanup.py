"""The one-round MIS clean-up algorithm (Section 7.2).

A clean-up algorithm extends a partial solution so that it becomes
extendable: for MIS it suffices that every active node with a neighbor
that output 1 outputs 0 (after informing its active neighbors — handled
by the engine's output announcement).
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram


class MISCleanupProgram(NodeProgram):
    """Per-node program of the MIS clean-up."""

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1 and any(
            value == 1 for value in ctx.neighbor_outputs.values()
        ):
            ctx.set_output(0)
            ctx.terminate()


class MISCleanupAlgorithm(DistributedAlgorithm):
    """The one-round MIS clean-up algorithm."""

    name = "mis-cleanup"

    def build_program(self) -> NodeProgram:
        return MISCleanupProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 1
