"""The Greedy MIS Algorithm — Algorithm 1 of the paper (Section 6).

In each odd round, every node whose identifier exceeds those of all its
active neighbors joins the independent set, notifies its neighbors,
outputs 1 and terminates; in the following even round, every notified
node outputs 0 and terminates.

Lemma 1: on a graph ``G`` the algorithm finishes within
``max { μ₁(S) : S component of G }`` rounds, and it is measure-uniform
with respect to μ₁.  Lemma 2: it also finishes within
``max { μ₂(S) + 1 }`` rounds and is measure-uniform with respect to μ₂.
The partial solution at the end of every even round is extendable, so the
algorithm may be paused or cut every 2 rounds (``safe_pause_interval``),
and it makes steady progress with respect to both measures (Section 7.4).
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class GreedyMISProgram(NodeProgram):
    """Per-node program of Algorithm 1.

    Quiescent: a node acts only when it is a local maximum (a fact that
    changes exclusively through neighbor terminations/crashes, which wake
    it) or when it received a JOIN (a message, which wakes it).  The only
    round-parity dependence — acting rounds are odd — is bridged by the
    timed wakeup armed in :meth:`process`.
    """

    JOIN = "in"
    quiescent_when_idle = True

    def __init__(self) -> None:
        self._dominated = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round % 2 == 1 and ctx.is_local_maximum():
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round % 2 == 1:
            if ctx.is_local_maximum():
                ctx.set_output(1)
                ctx.terminate()
                return
            if self.JOIN in inbox.values():
                self._dominated = True
        else:
            if self._dominated:
                ctx.set_output(0)
                ctx.terminate()
                return
        # Next acting round: a dominated node outputs 0 in the coming even
        # round; a node that became a local maximum in an even round (e.g.
        # its dominating neighbor's JOIN was dropped, or a larger neighbor
        # crashed) joins in the coming odd round.
        if (self._dominated and ctx.round % 2 == 1) or (
            ctx.round % 2 == 0 and ctx.is_local_maximum()
        ):
            ctx.request_wakeup(1)


class GreedyMISAlgorithm(DistributedAlgorithm):
    """Algorithm 1: the measure-uniform Greedy MIS Algorithm."""

    name = "greedy-mis"
    safe_pause_interval = 2

    def build_program(self) -> NodeProgram:
        return GreedyMISProgram()
