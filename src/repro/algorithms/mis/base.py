"""The MIS Base Algorithm (Section 4).

A 3-round pruning algorithm: the nodes with prediction 1 whose neighbors
all have prediction 0 form an independent set ``I``; in round 2 the nodes
of ``I`` notify their neighbors, output 1 and terminate; in round 3 the
neighbors of ``I`` output 0 and terminate.  Every node that outputs a
value outputs its prediction, and the resulting partial solution is
extendable and maximal among pruning algorithms' independent sets.

The base algorithm is part of the MIS problem definition: the components
induced by the nodes it leaves active are the *error components* from
which every error measure is built.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class MISBaseProgram(NodeProgram):
    """Per-node program of the MIS Base Algorithm."""

    JOIN = "in"

    def __init__(self) -> None:
        self._in_independent_set = False
        self._dominated = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: ctx.prediction for other in ctx.active_neighbors}
        if ctx.round == 2 and self._in_independent_set:
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            self._in_independent_set = ctx.prediction == 1 and all(
                inbox.get(other) == 0 for other in ctx.neighbors
            )
        elif ctx.round == 2:
            if self._in_independent_set:
                ctx.set_output(1)
                ctx.terminate()
            elif self.JOIN in inbox.values():
                self._dominated = True
        elif ctx.round == 3 and self._dominated:
            ctx.set_output(0)
            ctx.terminate()


class MISBaseAlgorithm(DistributedAlgorithm):
    """The MIS Base Algorithm as a reusable initialization component."""

    name = "mis-base"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return MISBaseProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 3
