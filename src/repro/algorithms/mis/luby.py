"""Luby's randomized MIS algorithm (Section 10).

Each 2-round phase: every active node draws a random priority and sends it
to its active neighbors; a node whose priority beats all of its active
neighbors' joins the independent set (output 1), and notified neighbors
leave (output 0).  Priorities are ``(random value, identifier)`` pairs, so
ties are impossible and the process matches the random-permutation view
the paper uses in its Section 10 analysis.

The algorithm is randomized but fully reproducible: priorities come from
the per-node seeded streams, so a run is a deterministic function of
``(graph, seed)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class LubyMISProgram(NodeProgram):
    """Per-node program of Luby's algorithm (2-round phases)."""

    JOIN = "in"

    def __init__(self) -> None:
        self._priority: Optional[Tuple[float, int]] = None
        self._neighbor_priorities: dict = {}

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round % 2 == 1:
            self._priority = (ctx.rng.random(), ctx.node_id)
            return {other: self._priority for other in ctx.active_neighbors}
        if self._wins(ctx):
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def _wins(self, ctx: NodeContext) -> bool:
        relevant = {
            other: priority
            for other, priority in self._neighbor_priorities.items()
            if other in ctx.active_neighbors
        }
        return all(tuple(priority) < self._priority for priority in relevant.values())

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round % 2 == 1:
            self._neighbor_priorities = {
                other: tuple(value) for other, value in inbox.items()
            }
        else:
            if self._wins(ctx):
                ctx.set_output(1)
                ctx.terminate()
            elif self.JOIN in inbox.values():
                ctx.set_output(0)
                ctx.terminate()


class LubyMISAlgorithm(DistributedAlgorithm):
    """Luby's randomized MIS (O(log n) phases in expectation)."""

    name = "luby-mis"
    safe_pause_interval = 2

    def build_program(self) -> NodeProgram:
        return LubyMISProgram()
