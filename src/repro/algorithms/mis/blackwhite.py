"""The black/white alternating measure-uniform MIS algorithm (Section 9.1).

Splitting the active nodes by their *prediction* (black = predicted 1,
white = predicted 0) is a symmetry-breaking mechanism: the Greedy MIS
Algorithm is run on the black nodes and the white nodes in alternation,
and before a node outputs 1 it informs *all* its active neighbors, so the
built-in clean-up removes dominated nodes of either color.

Round structure: odd rounds are act rounds — every active node broadcasts
its color (so color knowledge is complete after round 1), and a node of
the current phase's color whose identifier exceeds those of all its
active same-color neighbors joins the independent set; even rounds retire
dominated nodes.  Phases alternate black, white, black, ... every two
rounds.

The round complexity is at most twice that of the Greedy MIS Algorithm
run per black/white component — e.g. on the Figure 2 grid pattern it is
O(η_bw) = O(1) while η₁ = n.
"""

from __future__ import annotations

from typing import Dict

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox

BLACK = 1
WHITE = 0


def _phase_color(round_index: int) -> int:
    """Color acting in this 2-round phase: black first, then alternating."""
    return BLACK if ((round_index - 1) // 2) % 2 == 0 else WHITE


class BlackWhiteGreedyProgram(NodeProgram):
    """Per-node program of the black/white alternating greedy MIS."""

    def __init__(self) -> None:
        self._known_colors: Dict[int, int] = {}
        self._dominated = False
        self._joining = False

    def _my_color(self, ctx: NodeContext) -> int:
        return BLACK if ctx.prediction == 1 else WHITE

    def _wants_to_join(self, ctx: NodeContext) -> bool:
        if self._my_color(ctx) != _phase_color(ctx.round):
            return False
        unknown = [
            other
            for other in ctx.active_neighbors
            if other not in self._known_colors
        ]
        if unknown:
            # Color knowledge incomplete (only possible in round 1): wait.
            return False
        same_color = [
            other
            for other in ctx.active_neighbors
            if self._known_colors[other] == self._my_color(ctx)
        ]
        return all(other < ctx.node_id for other in same_color)

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round % 2 == 1:
            self._joining = self._wants_to_join(ctx)
            payload = (self._my_color(ctx), self._joining)
            return {other: payload for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round % 2 == 1:
            for sender, payload in inbox.items():
                color, joining = payload
                self._known_colors[sender] = color
                if joining:
                    self._dominated = True
            if self._joining:
                ctx.set_output(1)
                ctx.terminate()
        else:
            if self._dominated:
                ctx.set_output(0)
                ctx.terminate()


class BlackWhiteGreedyMIS(DistributedAlgorithm):
    """The measure-uniform U_bw algorithm of Section 9.1."""

    name = "blackwhite-greedy-mis"
    uses_predictions = True
    safe_pause_interval = 2

    def build_program(self) -> NodeProgram:
        return BlackWhiteGreedyProgram()
