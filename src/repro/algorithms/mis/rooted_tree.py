"""MIS on rooted trees (Section 9.2).

Three components:

* :class:`RootedTreeMISInitialization` — the 4-round initialization
  algorithm whose surviving components are *monochromatic* (all black or
  all white), enabling the η_t error measure.
* :class:`RootsAndLeavesMISAlgorithm` — Algorithm 6, the measure-uniform
  algorithm that repeatedly adds every component root and leaf to the
  independent set.
* :class:`RootedTreeColoringMISReference` — Corollary 15's two-part
  reference: a fault-tolerant Cole–Vishkin/GPS 3-coloring in O(log* d)
  rounds (part 1, outputs stored locally), then a 2-round sweep that
  turns the 3-coloring into an MIS (part 2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.algorithm import DistributedAlgorithm, TwoPartReference
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


def _parent(ctx) -> Optional[int]:
    """The node's parent id, or ``None`` at a root."""
    return ctx.attrs.get("parent")


def _active_parent(ctx) -> Optional[int]:
    parent = _parent(ctx)
    if parent is not None and parent in ctx.active_neighbors:
        return parent
    return None


def _active_children(ctx):
    parent = _parent(ctx)
    return [other for other in ctx.active_neighbors if other != parent]


# ----------------------------------------------------------------------
# Initialization
# ----------------------------------------------------------------------
class RootedTreeMISInitProgram(NodeProgram):
    """Per-node program of the MIS Rooted Tree Initialization Algorithm.

    Round 1 exchanges predictions; round 2 outputs 1 at every black node
    without a black parent (the set ``I``); round 3 retires the neighbors
    of ``I`` with 0 and outputs 1 at every white node with no neighbor in
    ``I`` and no white parent; round 4 retires the neighbors of the
    round-3 joiners.  Afterwards the active components are monochromatic,
    and if the predictions are correct all nodes terminate by round 3.
    """

    JOIN = "in"

    def __init__(self) -> None:
        self._parent_prediction: Any = None
        self._in_independent_set = False
        self._dominated = False
        self._white_joiner = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: ctx.prediction for other in ctx.active_neighbors}
        if ctx.round == 2 and self._in_independent_set:
            return {other: self.JOIN for other in ctx.active_neighbors}
        if ctx.round == 3 and self._white_joiner:
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            parent = _parent(ctx)
            self._parent_prediction = inbox.get(parent) if parent else None
            self._in_independent_set = (
                ctx.prediction == 1 and self._parent_prediction != 1
            )
        elif ctx.round == 2:
            if self._in_independent_set:
                ctx.set_output(1)
                ctx.terminate()
                return
            if self.JOIN in inbox.values():
                self._dominated = True
            is_white = ctx.prediction != 1
            parent_is_white = (
                _parent(ctx) is not None and self._parent_prediction != 1
            )
            # The round-3 join decision uses only round-≤2 knowledge, so it
            # is fixed here and the notification goes out in round 3's send.
            self._white_joiner = (
                not self._dominated and is_white and not parent_is_white
            )
        elif ctx.round == 3:
            if self._dominated:
                ctx.set_output(0)
                ctx.terminate()
            elif self._white_joiner:
                ctx.set_output(1)
                ctx.terminate()
            elif self.JOIN in inbox.values():
                # A neighbor joined in round 3; output 0 in round 4.
                self._dominated = True
        elif ctx.round == 4:
            if self._dominated:
                ctx.set_output(0)
                ctx.terminate()


class RootedTreeMISInitialization(DistributedAlgorithm):
    """The 4-round rooted-tree initialization (3 rounds when η = 0)."""

    name = "rooted-tree-mis-init"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return RootedTreeMISInitProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 4


# ----------------------------------------------------------------------
# Algorithm 6
# ----------------------------------------------------------------------
class RootsAndLeavesProgram(NodeProgram):
    """Per-node program of Algorithm 6.

    Odd rounds: the root of each active component outputs 1 (notifying
    its children); every leaf notifies its parent and outputs 1 unless its
    parent is the root (then 0).  Even rounds: every notified node
    outputs 0.  A monochromatic path component of ``h`` nodes loses from
    both ends, finishing in about ``h/2`` rounds.
    """

    ROOT = "root"
    LEAF = "leaf"

    def __init__(self) -> None:
        self._is_root = False
        self._is_leaf = False
        self._dominated = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round % 2 == 1:
            self._is_root = _active_parent(ctx) is None
            children = _active_children(ctx)
            self._is_leaf = not self._is_root and not children
            if self._is_root:
                return {other: self.ROOT for other in children}
            if self._is_leaf:
                parent = _active_parent(ctx)
                return {parent: self.LEAF} if parent is not None else {}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round % 2 == 1:
            if self._is_root:
                ctx.set_output(1)
                ctx.terminate()
            elif self._is_leaf:
                parent = _parent(ctx)
                if inbox.get(parent) == self.ROOT:
                    ctx.set_output(0)
                else:
                    ctx.set_output(1)
                ctx.terminate()
            elif inbox:
                # A root parent or a leaf child joined the set.
                self._dominated = True
        else:
            if self._dominated:
                ctx.set_output(0)
                ctx.terminate()


class RootsAndLeavesMISAlgorithm(DistributedAlgorithm):
    """Algorithm 6: the measure-uniform MIS algorithm for rooted forests."""

    name = "roots-and-leaves-mis"
    safe_pause_interval = 2

    def build_program(self) -> NodeProgram:
        return RootsAndLeavesProgram()


# ----------------------------------------------------------------------
# Cole–Vishkin/GPS 3-coloring (Corollary 15's fault-tolerant part 1)
# ----------------------------------------------------------------------
def cole_vishkin_steps(d: int) -> int:
    """Number of bit-index steps until colors fit in 3 bits (log* d-ish).

    Every node derives the identical count from the shared ``d``.
    """
    bits = max(3, d.bit_length())
    steps = 0
    while bits > 3:
        bits = max(3, (2 * (bits - 1)).bit_length())
        steps += 1
    # Two extra steps guarantee colors settle below 6 even at the 3-bit
    # fixed point (one step maps 8 colors into {0..5}).
    return steps + 2


def tree_coloring_round_bound(d: int) -> int:
    """Total rounds of the 3-coloring: CV steps + 3×(shift+recolor) + output."""
    return cole_vishkin_steps(d) + 6 + 1


class TreeColoring3Program(NodeProgram):
    """Fault-tolerant 3-coloring of a rooted forest in O(log* d) rounds.

    Cole–Vishkin bit reduction against the parent's color (a node whose
    parent is gone — root, crashed, or terminated by a concurrently
    running algorithm — uses a fictitious parent differing in bit 0),
    followed by the standard shift-down-and-recolor elimination of colors
    6, 5 and 4 (0-based: 5, 4, 3), and a final round that outputs the
    color (1-based: {1, 2, 3}).
    """

    def __init__(self) -> None:
        self._color = 0
        self._steps = 0
        self._total = 0

    def setup(self, ctx: NodeContext) -> None:
        self._color = ctx.node_id
        self._steps = cole_vishkin_steps(ctx.d)
        self._total = tree_coloring_round_bound(ctx.d)

    def compose(self, ctx: NodeContext) -> Outbox:
        return {other: self._color for other in ctx.active_neighbors}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        round_index = ctx.round
        parent = _parent(ctx)
        parent_color = inbox.get(parent) if parent is not None else None

        if round_index <= self._steps:
            self._color = self._cv_step(self._color, parent_color)
        elif round_index <= self._steps + 6:
            stage = round_index - self._steps - 1  # 0..5
            target = 5 - (stage // 2)  # eliminate colors 5, 4, 3
            if stage % 2 == 0:
                # Shift down: adopt the parent's color; a root picks
                # (own + 1) mod 3 — different from its own color (which
                # its children adopt) and never a color that an earlier
                # stage already eliminated.
                if parent_color is not None:
                    self._color = parent_color
                else:
                    self._color = (self._color + 1) % 3
            else:
                if self._color == target:
                    blocked = set(inbox.values())
                    choice = 0
                    while choice in blocked:
                        choice += 1
                    assert choice <= 2, "shift-down left more than 2 colors"
                    self._color = choice

        if round_index >= self._total:
            ctx.set_output(self._color + 1)
            ctx.terminate()

    @staticmethod
    def _cv_step(own: int, parent_color: Optional[int]) -> int:
        reference = parent_color if parent_color is not None else own ^ 1
        differing = own ^ reference
        index = (differing & -differing).bit_length() - 1 if differing else 0
        bit = (own >> index) & 1
        return 2 * index + bit


class MISFrom3ColoringProgram(NodeProgram):
    """Part 2 of Corollary 15: MIS from a 3-coloring in 2 rounds.

    Round 1: color-1 nodes join; their neighbors leave.  Round 2: color-2
    nodes join (notifying color-3 neighbors); color-3 nodes join unless
    notified.
    """

    JOIN = "in"

    def __init__(self, color: Optional[int]) -> None:
        if color is None:
            raise ValueError("part 2 requires the color stored by part 1")
        self._color = int(color)
        self._neighbor_colors: Dict[int, int] = {}

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: self._color for other in ctx.active_neighbors}
        if ctx.round == 2 and self._color == 2:
            return {
                other: self.JOIN
                for other in ctx.active_neighbors
                if self._neighbor_colors.get(other) == 3
            }
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            self._neighbor_colors = {
                sender: int(color) for sender, color in inbox.items()
            }
            if self._color == 1:
                ctx.set_output(1)
                ctx.terminate()
            elif 1 in self._neighbor_colors.values():
                ctx.set_output(0)
                ctx.terminate()
        elif ctx.round == 2:
            if self._color == 2:
                ctx.set_output(1)
                ctx.terminate()
            elif self._color == 3:
                ctx.set_output(0 if self.JOIN in inbox.values() else 1)
                ctx.terminate()


class RootedTreeColoringMISReference(TwoPartReference):
    """Corollary 15's reference: O(log* d) 3-coloring, then the 2-round MIS."""

    name = "tree-coloring-mis-ref"
    part1_outputs_are_final = False

    def build_part1(self) -> NodeProgram:
        return TreeColoring3Program()

    def part1_bound(self, n: int, delta: int, d: int) -> int:
        return tree_coloring_round_bound(d)

    def build_part2(self, part1_result: Any) -> NodeProgram:
        return MISFrom3ColoringProgram(part1_result)

    def part2_bound(self, n: int, delta: int, d: int) -> int:
        return 2
