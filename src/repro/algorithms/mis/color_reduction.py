"""The two-part MIS reference of Corollary 12 (Section 7.4).

Part 1 is the fault-tolerant Linial-style (Δ+1)-vertex coloring (its
round bound depends only on Δ and d, not on n); part 2 turns the coloring
into a maximal independent set by considering color classes one at a
time, *augmented* with the paper's greedy rule so that a node joins the
independent set at least every other round in every component — the
property that makes the Parallel Template η₂-degrading:

    In round i, each active node with color i that has not seen a
    neighbor join outputs 1.  In addition, each active node with color
    greater than i that has not seen a neighbor join, has no active
    neighbor with color i, and whose identifier is larger than those of
    all its active neighbors also outputs 1.  A node with a neighbor that
    joined outputs 0.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.algorithms.coloring.linial import (
    LinialColoringProgram,
    linial_round_bound,
)
from repro.core.algorithm import DistributedAlgorithm, TwoPartReference
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class MISFromColoringProgram(NodeProgram):
    """Part 2: greedy-augmented color-class sweep producing an MIS.

    Round 1 exchanges colors among the remaining active nodes; from round
    2 on, color class ``i = round − 1`` is processed.  Joining is
    announced through the engine's termination notification (visible to
    neighbors one round later, the same timing as the paper's explicit
    messages).
    """

    def __init__(self, color: Optional[int]) -> None:
        if color is None:
            raise ValueError("part 2 requires the color stored by part 1")
        self._color = int(color)
        self._neighbor_colors: Dict[int, int] = {}

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: self._color for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            self._neighbor_colors = {
                sender: int(color) for sender, color in inbox.items()
            }
            return
        # A neighbor that joined the independent set is visible through
        # its announced output.
        if any(value == 1 for value in ctx.neighbor_outputs.values()):
            ctx.set_output(0)
            ctx.terminate()
            return
        class_index = ctx.round - 1
        if self._color == class_index:
            ctx.set_output(1)
            ctx.terminate()
            return
        # Greedy augmentation: a local identifier maximum with no active
        # neighbor in the current class may join early.
        has_class_neighbor = any(
            self._neighbor_colors.get(other) == class_index
            for other in ctx.active_neighbors
        )
        if (
            self._color > class_index
            and not has_class_neighbor
            and ctx.is_local_maximum()
        ):
            ctx.set_output(1)
            ctx.terminate()


class LinialMISAlgorithm(DistributedAlgorithm):
    """Prediction-free MIS in O(Δ² + log* d) rounds, as one algorithm.

    Runs the fault-tolerant coloring (its colors held locally) and then
    the greedy-augmented sweep — the standalone composition of Corollary
    12's two reference parts.  Its worst-case round bound depends only on
    Δ and d, which makes it the natural reference ``R`` whenever a
    template needs a bound *independent of n* (e.g. the trade-off study
    of the E20 benchmark).
    """

    name = "linial-mis"

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return linial_round_bound(d, delta) + delta + 3

    def build_program(self) -> NodeProgram:
        from repro.core.composition import Slice, SlicedProgram
        from repro.simulator.program import NodeProgram as IdleBase

        def schedule(ctx):
            bound = linial_round_bound(ctx.d, ctx.delta or 0)
            yield Slice(
                "color",
                bound,
                lambda host: IdleBase(),
                parallel_builder=lambda host: LinialColoringProgram(
                    respect_neighbor_outputs=False
                ),
            )
            yield Slice(
                "sweep",
                None,
                lambda host: MISFromColoringProgram(host.last_parallel_result),
            )

        return SlicedProgram(schedule)


class ColoringMISReference(TwoPartReference):
    """Corollary 12's reference: fault-tolerant coloring, then the sweep.

    The substituted part-1 bound is ``O(Δ² + log* d)`` (see DESIGN.md);
    part 2 takes at most ``Δ + 3`` rounds on the remaining graph.
    """

    name = "coloring-mis-ref"
    part1_outputs_are_final = False

    def build_part1(self) -> NodeProgram:
        # Terminated neighbors carry MIS bits, not colors, so the coloring
        # must ignore neighbor outputs.
        return LinialColoringProgram(respect_neighbor_outputs=False)

    def part1_bound(self, n: int, delta: int, d: int) -> int:
        return linial_round_bound(d, delta)

    def build_part2(self, part1_result: Any) -> NodeProgram:
        return MISFromColoringProgram(part1_result)

    def part2_bound(self, n: int, delta: int, d: int) -> int:
        return delta + 3
