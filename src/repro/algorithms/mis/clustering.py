"""The phased clustering MIS reference (Corollary 10; substituted).

The paper's reference is the Ghaffari–Grunau–Haeupler–Ilchi–Rozhoň
deterministic clustering: each phase clusters at least half of the
remaining nodes into non-adjacent low-diameter clusters, computes an MIS
inside each cluster, and cleans up.  We substitute a seeded
Miller–Peng–Xu-style decomposition (see DESIGN.md): every phase,

1. each active node draws a truncated exponential shift and the shifted
   BFS race partitions the active nodes into clusters of radius ≤ T;
2. the *interiors* (nodes all of whose active neighbors share their
   cluster) of different clusters are non-adjacent;
3. each connected interior component gathers its topology by flooding for
   the (shared) diameter bound and every member locally computes the same
   greedy MIS of the component, so all interior nodes output;
4. a clean-up round retires the remaining neighbors of new 1-outputs.

Each phase is expected to retire at least half of the remaining nodes
(checked empirically in the benchmarks), each phase ends in an extendable
partial solution, and every node computes the identical phase bound
``r_i(n, Δ, d)`` from shared knowledge — the three properties the
Interleaved Template (Lemma 9) requires.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.algorithm import PhasedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


def _phase_estimate(phase_index: int, n: int) -> int:
    """Shared estimate of the remaining node count in a given phase."""
    return max(2, math.ceil(n / (2 ** (phase_index - 1))))


def _race_rounds(n_estimate: int, delta: int) -> int:
    """Shift truncation bound T: radius budget of the BFS race."""
    beta = 1.0 / (2.0 * (delta + 1))
    return max(2, math.ceil(math.log(n_estimate) / beta) + 1)


def clustering_phase_bound(phase_index: int, n: int, delta: int) -> int:
    """Node-computable round bound of one clustering phase."""
    estimate = _phase_estimate(phase_index, n)
    race = _race_rounds(estimate, max(1, delta))
    gather = 2 * race + 4
    # race + interior exchange + gather + decide + clean-up
    return race + 1 + gather + 1 + 1


class ClusteringPhaseProgram(NodeProgram):
    """One phase of the clustering MIS (LOCAL model: gather messages)."""

    def __init__(self, phase_index: int) -> None:
        self._phase_index = phase_index
        self._race = 0
        self._gather = 0
        self._shift = 0
        self._cluster: Optional[Tuple[int, int]] = None  # (priority, center)
        self._claimed_round: Optional[int] = None
        self._interior = False
        self._neighbor_clusters: Dict[int, int] = {}
        # Flood knowledge: node -> frozenset of its interior neighbors.
        self._topology: Dict[int, FrozenSet[int]] = {}
        self._decided = False

    # -- shared schedule -------------------------------------------------
    def setup(self, ctx: NodeContext) -> None:
        estimate = _phase_estimate(self._phase_index, ctx.n)
        delta = max(1, ctx.delta or 1)
        self._race = _race_rounds(estimate, delta)
        self._gather = 2 * self._race + 4
        beta = 1.0 / (2.0 * (delta + 1))
        self._shift = min(int(ctx.rng.expovariate(beta)), self._race - 1)

    # -- round dispatch ----------------------------------------------------
    def _stage(self, round_index: int) -> Tuple[str, int]:
        if round_index <= self._race:
            return "race", round_index
        if round_index == self._race + 1:
            return "interior", 0
        gather_start = self._race + 2
        if round_index < gather_start + self._gather:
            return "gather", round_index - gather_start
        if round_index == gather_start + self._gather:
            return "decide", 0
        return "cleanup", 0

    def compose(self, ctx: NodeContext) -> Outbox:
        stage, step = self._stage(ctx.round)
        if stage == "race":
            start = self._race - self._shift
            if self._cluster is None and ctx.round == start:
                # Become a cluster center.
                self._cluster = (self._shift, ctx.node_id)
                self._claimed_round = ctx.round - 1
            if (
                self._cluster is not None
                and self._claimed_round is not None
                and self._claimed_round == ctx.round - 1
            ):
                payload = ("claim", self._cluster)
                return {other: payload for other in ctx.active_neighbors}
            return {}
        if stage == "interior":
            center = self._cluster[1] if self._cluster else ctx.node_id
            return {other: ("cluster", center) for other in ctx.active_neighbors}
        if stage == "gather" and self._interior:
            payload = (
                "topo",
                tuple(sorted(self._topology)),
                tuple(
                    (node, tuple(sorted(neighbors)))
                    for node, neighbors in sorted(self._topology.items())
                ),
            )
            return {
                other: payload
                for other in ctx.active_neighbors
                if self._neighbor_clusters.get(other) == self._my_center(ctx)
                and other in self._interior_neighbors(ctx)
            }
        return {}

    def _my_center(self, ctx: NodeContext) -> int:
        return self._cluster[1] if self._cluster else ctx.node_id

    def _interior_neighbors(self, ctx: NodeContext) -> Set[int]:
        return set(self._topology.get(ctx.node_id, frozenset())) & set(
            ctx.active_neighbors
        )

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        stage, step = self._stage(ctx.round)
        if stage == "race":
            if self._cluster is None:
                claims = [
                    payload[1]
                    for payload in inbox.values()
                    if isinstance(payload, tuple) and payload[0] == "claim"
                ]
                if claims:
                    # Adopt the strongest claim: larger shift first (it
                    # started earlier relative to its center), then id.
                    self._cluster = max(
                        (tuple(claim) for claim in claims),
                        key=lambda claim: (claim[0], claim[1]),
                    )
                    self._claimed_round = ctx.round
        elif stage == "interior":
            self._neighbor_clusters = {
                sender: payload[1]
                for sender, payload in inbox.items()
                if isinstance(payload, tuple) and payload[0] == "cluster"
            }
            mine = self._my_center(ctx)
            self._interior = all(
                self._neighbor_clusters.get(other) == mine
                for other in ctx.active_neighbors
            )
            if self._interior:
                interior_neighbors = frozenset(
                    other
                    for other in ctx.active_neighbors
                    if self._neighbor_clusters.get(other) == mine
                )
                # Neighbors sharing the cluster may still be non-interior;
                # that is discovered during the gather (non-interior nodes
                # never send topology, so edges to them are pruned).
                self._topology = {ctx.node_id: interior_neighbors}
        elif stage == "gather" and self._interior:
            confirmed: Set[int] = set()
            for sender, payload in inbox.items():
                if isinstance(payload, tuple) and payload[0] == "topo":
                    confirmed.add(sender)
                    for node, neighbors in payload[2]:
                        known = self._topology.get(node, frozenset())
                        self._topology[node] = known | frozenset(neighbors)
            if step == 0:
                # First gather round: prune same-cluster neighbors that
                # turned out to be non-interior (they sent nothing).
                mine = self._topology[ctx.node_id]
                silent = {
                    other
                    for other in mine
                    if other not in confirmed
                }
                self._topology[ctx.node_id] = mine - silent
        elif stage == "decide":
            if self._interior:
                self._decide(ctx)
        elif stage == "cleanup":
            if not self._decided and any(
                value == 1 for value in ctx.neighbor_outputs.values()
            ):
                ctx.set_output(0)
                ctx.terminate()

    def _decide(self, ctx: NodeContext) -> None:
        # Restrict to my connected interior component and compute the
        # same deterministic greedy MIS everywhere.
        component = self._component_of(ctx.node_id)
        chosen: Set[int] = set()
        for node in sorted(component):
            neighbors = self._true_neighbors(node, component)
            if not any(other in chosen for other in neighbors):
                chosen.add(node)
        self._decided = True
        ctx.set_output(1 if ctx.node_id in chosen else 0)
        ctx.terminate()

    def _true_neighbors(self, node: int, component: Set[int]) -> Set[int]:
        # An edge is real only if both endpoints confirm it (pruning
        # removed edges to non-interior nodes on one side only).
        return {
            other
            for other in self._topology.get(node, frozenset())
            if other in component and node in self._topology.get(other, frozenset())
        }

    def _component_of(self, start: int) -> Set[int]:
        members = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for other in self._topology.get(node, frozenset()):
                if other in members or node not in self._topology.get(
                    other, frozenset()
                ):
                    continue
                members.add(other)
                frontier.append(other)
        return members


class ClusteringMISReference(PhasedAlgorithm):
    """The phased clustering MIS reference (LOCAL; Corollary 10's R)."""

    name = "clustering-mis"

    def phase_bound(self, phase_index: int, n: int, delta: int, d: int) -> int:
        return clustering_phase_bound(phase_index, n, delta)

    def num_phases(self, n: int, delta: int, d: int) -> int:
        return max(1, math.ceil(math.log2(max(2, n))) + 1)

    def build_phase_program(self, phase_index: int) -> NodeProgram:
        return ClusteringPhaseProgram(phase_index)
