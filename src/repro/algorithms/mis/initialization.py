"""The MIS Initialization Algorithm (Section 4).

A reasonable (but non-pruning) initialization algorithm: the independent
set ``I`` consists of the nodes with prediction 1 whose neighbors with
prediction 1 (if any) all have smaller identifiers.  The extendable
partial solution it produces always contains the one produced by the MIS
Base Algorithm, and it has the same 3-round complexity, so any algorithm
with predictions that starts with it is consistent.
"""

from __future__ import annotations

from repro.core.algorithm import DistributedAlgorithm
from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox


class MISInitializationProgram(NodeProgram):
    """Per-node program of the MIS Initialization Algorithm."""

    JOIN = "in"

    def __init__(self) -> None:
        self._in_independent_set = False
        self._dominated = False

    def compose(self, ctx: NodeContext) -> Outbox:
        if ctx.round == 1:
            return {other: ctx.prediction for other in ctx.active_neighbors}
        if ctx.round == 2 and self._in_independent_set:
            return {other: self.JOIN for other in ctx.active_neighbors}
        return {}

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            self._in_independent_set = ctx.prediction == 1 and all(
                other < ctx.node_id
                for other in ctx.neighbors
                if inbox.get(other) == 1
            )
        elif ctx.round == 2:
            if self._in_independent_set:
                ctx.set_output(1)
                ctx.terminate()
            elif self.JOIN in inbox.values():
                self._dominated = True
        elif ctx.round == 3 and self._dominated:
            ctx.set_output(0)
            ctx.terminate()


class MISInitializationAlgorithm(DistributedAlgorithm):
    """The MIS Initialization Algorithm (reasonable, 3 rounds)."""

    name = "mis-init"
    uses_predictions = True

    def build_program(self) -> NodeProgram:
        return MISInitializationProgram()

    def round_bound(self, n: int, delta: int, d: int) -> int:
        return 3
