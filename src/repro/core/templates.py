"""The four templates of Section 7.

Each template combines a reasonable initialization algorithm ``B`` (for
consistency), a measure-uniform algorithm ``U`` (for degradation), an
optional clean-up algorithm ``C``, and a reference algorithm ``R`` (for
robustness), producing a :class:`~repro.core.algorithm.
DistributedAlgorithm` with predictions:

* :class:`SimpleTemplate` — Algorithm 2: ``B`` then ``R``.
* :class:`ConsecutiveTemplate` — Algorithm 3: ``B``, then ``U`` for
  ``r(n,Δ,d) + c'(n)`` rounds, then ``C``, then ``R``.
* :class:`InterleavedTemplate` — Algorithm 4: ``B``, then phases of ``U``
  and ``R`` alternating with shared per-phase bounds.
* :class:`ParallelTemplate` — Algorithm 5: ``B``, then ``U`` in parallel
  with the fault-tolerant part 1 of ``R`` (outputs stored locally), then
  ``C``, then part 2 of ``R``.

All switching rounds are computed per node from the shared knowledge
``(n, Δ, d)``, so every active node is always in the same slice.  Slice
lengths are rounded up to the component's ``safe_pause_interval`` so that
a component is only ever paused or cut at an extendable partial solution
(the paper chooses its bounds even for the same reason, e.g. Corollaries
10 and 12).

Every template builds a :class:`~repro.core.composition.SlicedProgram`,
which participates in quiescence-aware scheduling
(``run(..., schedule="quiescent")``, see ``docs/PERFORMANCE.md``): the
sliced host is idle-skippable exactly while its current component is,
arms a timed wakeup for the slice boundary when its component sleeps,
and catches its slice clock up over any skipped rounds — so a template
whose components are quiescent (e.g. the greedy algorithms) gets the
same frontier speedups as the components run bare.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.algorithm import (
    DistributedAlgorithm,
    PhasedAlgorithm,
    TwoPartReference,
)
from repro.core.composition import Slice, SlicedProgram
from repro.simulator.context import NodeContext
from repro.simulator.models import LOCAL
from repro.simulator.program import NodeProgram


def _roundup(value: int, interval: int) -> int:
    """Round ``value`` up to a positive multiple of ``interval``."""
    value = max(value, 1)
    if interval <= 1:
        return value
    return -(-value // interval) * interval


def _stretch(ctx: NodeContext) -> int:
    """Slice-duration stretch factor under the asynchronous model.

    A message sent in tick t arrives by tick ``t + phi`` under the async
    schedule's delay adversary, so a component that needs r synchronous
    rounds completes within ``(1 + phi) * r`` ticks.  Every node computes
    the same factor from the shared knowledge ``phi``, so slice boundaries
    stay aligned.  Under every synchronous schedule ``phi == 0`` and the
    factor is 1 — bounds are bit-identical to before.
    """
    return 1 + max(0, getattr(ctx, "phi", 0))


def _required_bound(algorithm: DistributedAlgorithm, ctx: NodeContext) -> int:
    bound = algorithm.round_bound(ctx.n, ctx.delta or 0, ctx.d)
    if bound is None:
        raise ValueError(
            f"{algorithm.name or type(algorithm).__name__} declares no round "
            "bound; templates need node-computable bounds to schedule around it"
        )
    return bound * _stretch(ctx)


class _EmitStoredProgram(NodeProgram):
    """Outputs a Parallel-Template part-1 result as the real output.

    Used when the reference algorithm is entirely fault tolerant
    (``part1_outputs_are_final``): the paper's "output any locally stored
    outputs" step, realized as a single round.
    """

    def __init__(self, stored: Any) -> None:
        self._stored = stored

    def process(self, ctx, inbox) -> None:
        if isinstance(self._stored, dict):
            for key, value in self._stored.items():
                ctx.set_output_part(key, value)
        else:
            ctx.set_output(self._stored)
        ctx.terminate()


class _TemplateBase(DistributedAlgorithm):
    """Shared metadata handling for the four templates."""

    uses_predictions = True

    def __init__(self, name: str, *components: Any) -> None:
        self.name = name
        models = [
            component.model
            for component in components
            if isinstance(component, DistributedAlgorithm)
        ]
        self.model = (
            LOCAL
            if any(model.bandwidth_factor is None for model in models)
            else models[0]
        )

    def consistency_bound(self, n: int, delta: int, d: int) -> int:
        """c(n): rounds within which the algorithm ends when η = 0.

        All four templates inherit their consistency from the
        initialization algorithm ``B`` (Section 4).
        """
        bound = self.initialization.round_bound(n, delta, d)
        assert bound is not None
        return bound


class SimpleTemplate(_TemplateBase):
    """Algorithm 2: initialization, then the reference algorithm.

    Per Observation 7, with ``B`` of round complexity ``c(n)`` and ``R``
    uniform with respect to μ with bound ``r(μ)``, the result has
    consistency ``c(n)`` and round complexity ``c(n) + r(η)``.
    """

    def __init__(
        self,
        initialization: DistributedAlgorithm,
        reference: DistributedAlgorithm,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            name or f"simple({initialization.name},{reference.name})",
            initialization,
            reference,
        )
        self.initialization = initialization
        self.reference = reference

    def build_program(self) -> NodeProgram:
        initialization = self.initialization
        reference = self.reference

        def schedule(ctx: NodeContext) -> Iterator[Slice]:
            yield Slice(
                "B",
                _required_bound(initialization, ctx),
                lambda host: initialization.build_program(),
            )
            yield Slice("R", None, lambda host: reference.build_program())

        return SlicedProgram(schedule)


class ConsecutiveTemplate(_TemplateBase):
    """Algorithm 3: B, then U for ``r + c'`` rounds, then C, then R.

    Per Lemma 8 the result has consistency ``c(n)``, is 2f(η)-degrading
    (f the round bound of U as a function of the measure) and is robust
    with respect to R.
    """

    def __init__(
        self,
        initialization: DistributedAlgorithm,
        measure_uniform: DistributedAlgorithm,
        cleanup: DistributedAlgorithm,
        reference: DistributedAlgorithm,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            name
            or (
                f"consecutive({initialization.name},{measure_uniform.name},"
                f"{cleanup.name},{reference.name})"
            ),
            initialization,
            measure_uniform,
            cleanup,
            reference,
        )
        self.initialization = initialization
        self.measure_uniform = measure_uniform
        self.cleanup = cleanup
        self.reference = reference

    def build_program(self) -> NodeProgram:
        initialization = self.initialization
        measure_uniform = self.measure_uniform
        cleanup = self.cleanup
        reference = self.reference

        def schedule(ctx: NodeContext) -> Iterator[Slice]:
            reference_bound = _required_bound(reference, ctx)
            cleanup_bound = _required_bound(cleanup, ctx)
            yield Slice(
                "B",
                _required_bound(initialization, ctx),
                lambda host: initialization.build_program(),
            )
            yield Slice(
                "U",
                _roundup(
                    reference_bound + cleanup_bound,
                    measure_uniform.safe_pause_interval,
                ),
                lambda host: measure_uniform.build_program(),
            )
            yield Slice("C", cleanup_bound, lambda host: cleanup.build_program())
            yield Slice("R", None, lambda host: reference.build_program())

        return SlicedProgram(schedule)


class InterleavedTemplate(_TemplateBase):
    """Algorithm 4: B, then phases of U and R interleaved.

    Per Lemma 9 the result has consistency ``c(n)``, is 2f(η)-degrading,
    and is robust with respect to R.  The reference must be a
    :class:`~repro.core.algorithm.PhasedAlgorithm`; each phase ``i`` runs
    for ``r_i(n, Δ, d)`` rounds (rounded up so U pauses at an extendable
    partial solution), preceded by U for the same number of rounds.

    The schedule is an infinite alternation — once the reference's phases
    have exhausted the graph nothing remains to run — so termination never
    depends on a priori phase-count guarantees.
    """

    def __init__(
        self,
        initialization: DistributedAlgorithm,
        measure_uniform: DistributedAlgorithm,
        reference: PhasedAlgorithm,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            name
            or (
                f"interleaved({initialization.name},{measure_uniform.name},"
                f"{reference.name})"
            ),
            initialization,
            measure_uniform,
            reference,
        )
        self.initialization = initialization
        self.measure_uniform = measure_uniform
        self.reference = reference

    def build_program(self) -> NodeProgram:
        initialization = self.initialization
        measure_uniform = self.measure_uniform
        reference = self.reference

        def schedule(ctx: NodeContext) -> Iterator[Slice]:
            yield Slice(
                "B",
                _required_bound(initialization, ctx),
                lambda host: initialization.build_program(),
            )
            phase = 0
            while True:
                phase += 1
                bound = _roundup(
                    reference.phase_bound(phase, ctx.n, ctx.delta or 0, ctx.d)
                    * _stretch(ctx),
                    measure_uniform.safe_pause_interval,
                )
                yield Slice(
                    "U",
                    bound,
                    lambda host: measure_uniform.build_program(),
                    resume="U",
                )
                yield Slice(
                    f"R{phase}",
                    bound,
                    lambda host, i=phase: reference.build_phase_program(i),
                )

        return SlicedProgram(schedule)


class HedgedConsecutiveTemplate(_TemplateBase):
    """A consistency–robustness trade-off knob (Section 10, explored).

    The paper's open problems ask whether the trade-offs known from online
    algorithms with predictions (Kumar–Purohit–Svitkina style: a trust
    parameter λ interpolating between following the predictions and
    falling back) exist for distributed graph algorithms.  This template
    is the natural candidate: run the measure-uniform algorithm for
    ``λ · r(n, Δ, d)`` rounds before switching to the reference.

    * λ → large recovers the Consecutive Template (full degradation
      window, worst case ≈ (1 + λ) · r);
    * λ = 0 degenerates to initialization + reference (optimal worst
      case, no benefit from medium-quality predictions).

    Consistency is unaffected (the initialization handles η = 0); the
    degradation guarantee ``rounds ≤ f(η) + c`` holds only while
    ``f(η) ≤ λ·r``, and the worst case is ``c + λ·r + c' + r``.  The E20
    benchmark sweeps λ and measures both ends of the trade.
    """

    def __init__(
        self,
        initialization: DistributedAlgorithm,
        measure_uniform: DistributedAlgorithm,
        cleanup: DistributedAlgorithm,
        reference: DistributedAlgorithm,
        trust: float,
        name: Optional[str] = None,
    ) -> None:
        if trust < 0:
            raise ValueError(f"trust must be non-negative, got {trust}")
        super().__init__(
            name
            or (
                f"hedged({initialization.name},{measure_uniform.name},"
                f"{reference.name},lambda={trust})"
            ),
            initialization,
            measure_uniform,
            cleanup,
            reference,
        )
        self.initialization = initialization
        self.measure_uniform = measure_uniform
        self.cleanup = cleanup
        self.reference = reference
        self.trust = trust

    def build_program(self) -> NodeProgram:
        initialization = self.initialization
        measure_uniform = self.measure_uniform
        cleanup = self.cleanup
        reference = self.reference
        trust = self.trust

        def schedule(ctx: NodeContext) -> Iterator[Slice]:
            reference_bound = _required_bound(reference, ctx)
            cleanup_bound = _required_bound(cleanup, ctx)
            yield Slice(
                "B",
                _required_bound(initialization, ctx),
                lambda host: initialization.build_program(),
            )
            budget = int(round(trust * reference_bound))
            if budget > 0:
                yield Slice(
                    "U",
                    _roundup(budget, measure_uniform.safe_pause_interval),
                    lambda host: measure_uniform.build_program(),
                )
            yield Slice("C", cleanup_bound, lambda host: cleanup.build_program())
            yield Slice("R", None, lambda host: reference.build_program())

        return SlicedProgram(schedule)


class ParallelTemplate(_TemplateBase):
    """Algorithm 5: B, then U alongside R's fault-tolerant part 1.

    Per Lemma 11 the result has consistency ``c(n)``, is robust with
    respect to R, and is f(η)-degrading when U makes steady progress (or
    when C plus part 2 is constant-round).

    Part 1's outputs are intercepted and stored locally; nodes that U
    terminates are treated by part 1 as crashed.  After part 1's bound
    elapses, the optional clean-up runs, then either the stored outputs
    are emitted (``part1_outputs_are_final``) or part 2 runs with the
    stored result.
    """

    def __init__(
        self,
        initialization: DistributedAlgorithm,
        measure_uniform: DistributedAlgorithm,
        reference: TwoPartReference,
        cleanup: Optional[DistributedAlgorithm] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            name
            or (
                f"parallel({initialization.name},{measure_uniform.name},"
                f"{reference.name})"
            ),
            initialization,
            measure_uniform,
            *([cleanup] if cleanup else []),
        )
        self.initialization = initialization
        self.measure_uniform = measure_uniform
        self.reference = reference
        self.cleanup = cleanup

    def build_program(self) -> NodeProgram:
        initialization = self.initialization
        measure_uniform = self.measure_uniform
        reference = self.reference
        cleanup = self.cleanup

        def schedule(ctx: NodeContext) -> Iterator[Slice]:
            yield Slice(
                "B",
                _required_bound(initialization, ctx),
                lambda host: initialization.build_program(),
            )
            part1_bound = _roundup(
                reference.part1_bound(ctx.n, ctx.delta or 0, ctx.d)
                * _stretch(ctx),
                measure_uniform.safe_pause_interval,
            )
            yield Slice(
                "U||R1",
                part1_bound,
                lambda host: measure_uniform.build_program(),
                parallel_builder=lambda host: reference.build_part1(),
            )
            if cleanup is not None:
                yield Slice(
                    "C",
                    _required_bound(cleanup, ctx),
                    lambda host: cleanup.build_program(),
                )
            if reference.part1_outputs_are_final:
                yield Slice(
                    "emit",
                    None,
                    lambda host: _EmitStoredProgram(host.last_parallel_result),
                )
            else:
                yield Slice(
                    "R2",
                    None,
                    lambda host: reference.build_part2(host.last_parallel_result),
                )

        return SlicedProgram(schedule)
