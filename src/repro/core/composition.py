"""Composition machinery: sub-contexts and time-sliced programs.

The templates of Section 7 combine component algorithms by *time
slicing*: because every node knows ``n``, ``d`` and ``Δ``, all nodes
compute the same switching rounds, so during any given round every active
node is executing the same component (the paper: a node "should wait until
the number of rounds that has elapsed in a phase is the known upper bound
for that phase, before starting the next phase").  The Parallel Template
additionally runs two components in the *same* rounds, with tagged
messages.

A :class:`SubContext` is the window a component program gets onto the real
node context: it keeps a private round counter (so a component paused and
resumed by the Interleaved Template sees consecutive rounds) and can
intercept outputs (so the Parallel Template's part-1 reference stores its
results locally instead of producing real outputs — Algorithm 5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.simulator.context import NodeContext
from repro.simulator.program import Inbox, NodeProgram, Outbox

_UNSET = object()


class SubContext:
    """A component algorithm's view of its node's context.

    Read-only knowledge (identifier, neighbors, ``n``, ``d``, ``Δ``,
    prediction, attributes, active neighbors, neighbor outputs) is
    delegated to the underlying :class:`NodeContext`; the round counter is
    private to the component, and output calls are either passed through
    (the component's outputs are the node's outputs) or intercepted and
    stored locally (Parallel Template part 1).
    """

    def __init__(
        self,
        base: NodeContext,
        intercept_outputs: bool = False,
        neighbor_filter: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self._base = base
        self._intercept = intercept_outputs
        self._neighbor_filter = neighbor_filter
        self.round = 0
        self.finished = False
        self._stored: Any = _UNSET
        self._stored_parts: Dict[Any, Any] = {}

    # -- delegated knowledge ------------------------------------------
    @property
    def node_id(self) -> int:
        return self._base.node_id

    @property
    def neighbors(self):
        return self._base.neighbors

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def d(self) -> int:
        return self._base.d

    @property
    def delta(self):
        return self._base.delta

    @property
    def prediction(self):
        return self._base.prediction

    @property
    def attrs(self):
        return self._base.attrs

    @property
    def rng(self):
        return self._base.rng

    @property
    def degree(self) -> int:
        return self._base.degree

    @property
    def active_neighbors(self):
        """Active neighbors, restricted by the component's filter.

        A filter realizes "run U on the subgraph induced by ..." (e.g. the
        black nodes, Section 9.1): the component only ever sees — and can
        only message — the neighbors the filter admits.
        """
        if self._neighbor_filter is None:
            return self._base.active_neighbors
        return {
            other
            for other in self._base.active_neighbors
            if self._neighbor_filter(other)
        }

    @property
    def neighbor_outputs(self):
        return self._base.neighbor_outputs

    @property
    def crashed_neighbors(self):
        return self._base.crashed_neighbors

    def is_local_maximum(self) -> bool:
        return all(other < self.node_id for other in self.active_neighbors)

    # -- quiescence scheduling ----------------------------------------
    def wake_at(self, round_index: int) -> None:
        """Timed wakeup in the component's *private* round numbering.

        The offset from the component's current round is what matters, so
        the request is translated into the base context's round numbering
        (which may itself be another component's private numbering — the
        translation composes).
        """
        self._base.wake_at(self._base.round + (round_index - self.round))

    def request_wakeup(self, delay: int = 1) -> None:
        """Ask to run ``delay`` rounds from now (see :meth:`wake_at`)."""
        if delay < 1:
            raise ValueError(
                f"node {self.node_id}: request_wakeup delay must be >= 1, "
                f"got {delay}"
            )
        self._base.wake_at(self._base.round + delay)

    # -- outputs -------------------------------------------------------
    @property
    def has_output(self) -> bool:
        if self._intercept:
            return self._stored is not _UNSET or bool(self._stored_parts)
        return self._base.has_output

    @property
    def output(self) -> Any:
        if self._intercept:
            if self._stored is not _UNSET:
                return self._stored
            return dict(self._stored_parts) if self._stored_parts else None
        return self._base.output

    def set_output(self, value: Any) -> None:
        if self._intercept:
            self._stored = value
        else:
            self._base.set_output(value)

    def set_output_part(self, key: Any, value: Any) -> None:
        if self._intercept:
            self._stored_parts[key] = value
        else:
            self._base.set_output_part(key, value)

    def output_part(self, key: Any, default: Any = None) -> Any:
        if self._intercept:
            return self._stored_parts.get(key, default)
        return self._base.output_part(key, default)

    def terminate(self) -> None:
        self.finished = True
        if not self._intercept:
            self._base.terminate()

    @property
    def terminate_requested(self) -> bool:
        """Whether this component's node is stopping (nested drivers).

        Allows a :class:`SlicedProgram` to run as a component of another
        one: passthrough components reflect the real node's state, while
        intercepted components reflect their own ``finished`` flag.
        """
        if self._intercept:
            return self.finished
        return self._base.terminate_requested

    @property
    def stored_result(self) -> Any:
        """Locally stored result of an intercepted component."""
        if self._stored is not _UNSET:
            return self._stored
        return dict(self._stored_parts) if self._stored_parts else None


class Slice:
    """One entry of a template's time-slice schedule.

    Attributes:
        key: Label (``"B"``, ``"U"``, ``"C"``, ``"R"``, ...) used in
            traces and error messages.
        duration: Number of rounds, or ``None`` for a final unbounded
            slice.
        builder: Callable producing the slice's fresh program; called
            lazily when the slice starts with the hosting
            :class:`SlicedProgram` as its argument (so part 2 of a
            Parallel reference can consume part 1's stored result via
            ``host.last_parallel_result``).
        parallel_builder: When present, a second program run in the same
            rounds with tagged messages, its outputs intercepted
            (Parallel Template part 1).
        resume: Component identity for pause/resume: slices sharing a
            ``resume`` key reuse one program and one sub-context, whose
            private round counter keeps advancing across slices (the
            Interleaved Template's measure-uniform component).
    """

    def __init__(
        self,
        key: str,
        duration: Optional[int],
        builder: Callable[["SlicedProgram"], NodeProgram],
        parallel_builder: Optional[Callable[["SlicedProgram"], NodeProgram]] = None,
        resume: Optional[str] = None,
    ) -> None:
        self.key = key
        self.duration = duration
        self.builder = builder
        self.parallel_builder = parallel_builder
        self.resume = resume


class SlicedProgram(NodeProgram):
    """Drives component programs according to a slice schedule.

    The schedule is produced per node from the context (all nodes compute
    identical schedules because they compute them from the shared values
    ``n``, ``Δ``, ``d``), and may be an infinite generator; the program
    materializes slices on demand.
    """

    #: Message tag used for the primary component in a parallel slice.
    PRIMARY = "u"
    #: Message tag used for the intercepted component in a parallel slice.
    SECONDARY = "r"

    def __init__(self, schedule_factory: Callable[[NodeContext], Any]) -> None:
        self._schedule_factory = schedule_factory
        self._iterator = None
        self._slice: Optional[Slice] = None
        self._rounds_left: Optional[int] = None
        self._program: Optional[NodeProgram] = None
        self._subctx: Optional[SubContext] = None
        self._parallel_program: Optional[NodeProgram] = None
        self._parallel_subctx: Optional[SubContext] = None
        self._resumable: Dict[str, Any] = {}
        self.last_parallel_result: Any = None
        #: Last engine round this program ran in; the gap to ``ctx.round``
        #: is how many rounds the quiescence scheduler let the node sleep,
        #: which :meth:`_sync` credits to the slice clock on wake-up.
        #: ``None`` until the first executed round: a fresh program —
        #: round 1, or a crash recovery in *any* later round — starts
        #: its slice clock at its own first round, never owing back-gap.
        self._last_round: Optional[int] = None
        #: A sliced program is schedulable quiescently: while its current
        #: component is not, it simply re-arms a next-round wakeup every
        #: round (so it never actually sleeps), and it never sleeps past a
        #: slice boundary thanks to the boundary wakeup in :meth:`process`.
        self.quiescent_when_idle = True

    # ------------------------------------------------------------------
    def setup(self, ctx: NodeContext) -> None:
        self._iterator = iter(self._schedule_factory(ctx))
        self._advance(ctx)
        # The first slice's component may terminate during setup (a
        # "0-round" action), which SubContext passes through to the engine.

    def _advance(self, ctx: NodeContext) -> None:
        """Move to the next slice and instantiate its program(s)."""
        try:
            next_slice = next(self._iterator)
        except StopIteration:
            raise RuntimeError(
                f"node {ctx.node_id}: slice schedule exhausted while active"
            )
        self._slice = next_slice
        self._rounds_left = next_slice.duration
        if next_slice.resume is not None and next_slice.resume in self._resumable:
            self._program, self._subctx = self._resumable[next_slice.resume]
            needs_setup = False
        else:
            self._program = next_slice.builder(self)
            self._subctx = SubContext(ctx)
            needs_setup = True
            if next_slice.resume is not None:
                self._resumable[next_slice.resume] = (self._program, self._subctx)
        if needs_setup:
            self._program.setup(self._subctx)
        if next_slice.parallel_builder is not None:
            self._parallel_program = next_slice.parallel_builder(self)
            self._parallel_subctx = SubContext(ctx, intercept_outputs=True)
            self._parallel_program.setup(self._parallel_subctx)
        else:
            self._parallel_program = None
            self._parallel_subctx = None
        # Degenerate zero-duration slices skip straight ahead.
        if self._rounds_left == 0:
            self._finish_slice(ctx)
            if not ctx.terminate_requested:
                self._advance(ctx)

    def _finish_slice(self, ctx: NodeContext) -> None:
        if self._parallel_subctx is not None:
            self.last_parallel_result = self._parallel_subctx.stored_result

    # ------------------------------------------------------------------
    def _sync(self, ctx: NodeContext) -> None:
        """Advance the private clocks to ``ctx.round``.

        Called at the top of both :meth:`compose` and :meth:`process`
        (whichever runs first this round does the work), because under
        quiescent scheduling a sleeping node may be pulled straight into
        the process phase by a message delivery, without a compose call.
        A gap larger than one round means the scheduler skipped idle
        rounds; those are credited to the slice countdown in one step —
        legal precisely because an idle sliced round is a no-op for every
        component (the idle contract) and the boundary wakeup guarantees
        the node never sleeps *past* a switching round.
        """
        # First executed round of this program instance (round 1, or the
        # recovery round of a crash-recovered node): the slice clock
        # starts here, there is no earlier round to catch up on.
        delta = 1 if self._last_round is None else ctx.round - self._last_round
        if delta <= 0:
            return
        self._last_round = ctx.round
        if self._subctx is not None and not self._subctx.finished:
            self._subctx.round += delta
        if self._parallel_subctx is not None and not self._parallel_subctx.finished:
            self._parallel_subctx.round += delta
        if delta > 1 and self._rounds_left is not None:
            skipped = delta - 1
            if skipped >= self._rounds_left:
                raise RuntimeError(
                    f"node {ctx.node_id}: slept past the end of slice "
                    f"{self._slice.key!r} ({skipped} rounds skipped with "
                    f"{self._rounds_left} left) — scheduler bug"
                )
            self._rounds_left -= skipped

    def compose(self, ctx: NodeContext) -> Outbox:
        if self._slice is None:
            return {}
        self._sync(ctx)
        outbox: Outbox = {}
        primary_out: Outbox = {}
        if not self._subctx.finished:
            primary_out = self._program.compose(self._subctx) or {}
        if self._parallel_program is None:
            return primary_out
        secondary_out: Outbox = {}
        if not self._parallel_subctx.finished:
            secondary_out = self._parallel_program.compose(self._parallel_subctx) or {}
        for receiver in set(primary_out) | set(secondary_out):
            payload: Dict[str, Any] = {}
            if receiver in primary_out:
                payload[self.PRIMARY] = primary_out[receiver]
            if receiver in secondary_out:
                payload[self.SECONDARY] = secondary_out[receiver]
            outbox[receiver] = payload
        return outbox

    def process(self, ctx: NodeContext, inbox: Inbox) -> None:
        if self._slice is None:
            return
        self._sync(ctx)
        if self._parallel_program is None:
            if not self._subctx.finished:
                self._program.process(self._subctx, inbox)
        else:
            primary_in = {
                sender: payload[self.PRIMARY]
                for sender, payload in inbox.items()
                if isinstance(payload, dict) and self.PRIMARY in payload
            }
            secondary_in = {
                sender: payload[self.SECONDARY]
                for sender, payload in inbox.items()
                if isinstance(payload, dict) and self.SECONDARY in payload
            }
            if not self._subctx.finished:
                self._program.process(self._subctx, primary_in)
            if not self._parallel_subctx.finished:
                self._parallel_program.process(self._parallel_subctx, secondary_in)
        if ctx.terminate_requested:
            return
        if self._rounds_left is not None:
            self._rounds_left -= 1
            if self._rounds_left == 0:
                self._finish_slice(ctx)
                self._advance(ctx)
                if not ctx.terminate_requested:
                    # A fresh slice always runs its first round: waking is
                    # harmless if the new components turn out idle, while
                    # sleeping could miss their first acting round.
                    ctx.request_wakeup(1)
                return
        self._arm_wakeup(ctx)

    def _arm_wakeup(self, ctx: NodeContext) -> None:
        """Keep the node schedulable under ``schedule="quiescent"``.

        A live component that has not opted into quiescence may act in any
        round, so the node re-arms a next-round wakeup (it never actually
        sleeps).  With only quiescent components the node may sleep, but
        at most until the slice boundary, where the switching round must
        execute.  Under the eager schedule these requests are cheap
        no-ops.
        """
        quiescent = True
        if self._subctx is not None and not self._subctx.finished:
            quiescent = getattr(self._program, "quiescent_when_idle", False)
        if (
            quiescent
            and self._parallel_subctx is not None
            and not self._parallel_subctx.finished
        ):
            quiescent = getattr(
                self._parallel_program, "quiescent_when_idle", False
            )
        if not quiescent:
            ctx.request_wakeup(1)
        elif self._rounds_left is not None:
            ctx.request_wakeup(self._rounds_left)
