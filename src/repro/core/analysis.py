"""Empirical evaluation of the framework's quality notions (Section 1.2).

The paper defines how an algorithm with predictions is judged:

* **consistency** c(n) — rounds when η = 0;
* **f(η)-degradation** — rounds ≤ f(η) + c(n) + O(1);
* **robustness w.r.t. R** — rounds ∈ O(round complexity of R);
* **smoothness** — all three with f not growing too quickly.

These helpers run an algorithm over instance/prediction sweeps, record
``(η, rounds)`` pairs, and check the paper's inequalities
instance-by-instance, so each benchmark can assert the bound it
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.algorithm import DistributedAlgorithm
from repro.core.runner import run
from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs

#: An error measure: (graph, predictions) -> non-negative int.
ErrorMeasure = Callable[[DistGraph, Mapping[int, Any]], int]


@dataclass
class SweepPoint:
    """One executed instance of a sweep."""

    label: str
    error: int
    rounds: int
    valid: bool
    n: int
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All points of a degradation/robustness sweep."""

    points: List[SweepPoint] = field(default_factory=list)

    @property
    def all_valid(self) -> bool:
        """Whether every run produced a correct solution."""
        return all(point.valid for point in self.points)

    def max_rounds(self) -> int:
        """Largest observed round count."""
        return max((point.rounds for point in self.points), default=0)

    def violations(
        self, bound: Callable[[SweepPoint], int]
    ) -> List[Tuple[SweepPoint, int]]:
        """Points whose rounds exceed a per-point bound."""
        result = []
        for point in self.points:
            limit = bound(point)
            if point.rounds > limit:
                result.append((point, limit))
        return result

    def rounds_by_error(self) -> List[Tuple[int, int]]:
        """Sorted (error, max rounds at that error) series — the
        degradation curve a learning-augmented plot shows."""
        by_error: Dict[int, int] = {}
        for point in self.points:
            by_error[point.error] = max(by_error.get(point.error, 0), point.rounds)
        return sorted(by_error.items())

    def to_csv(self, path: str) -> None:
        """Write the sweep as CSV (label, n, error, rounds, valid)."""
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["label", "n", "error", "rounds", "valid"])
            for point in self.points:
                writer.writerow(
                    [point.label, point.n, point.error, point.rounds, point.valid]
                )


def sweep(
    algorithm: DistributedAlgorithm,
    problem: GraphProblem,
    instances: Iterable[Tuple[str, DistGraph, Mapping[int, Any]]],
    error_measure: ErrorMeasure,
    *,
    max_rounds: Optional[int] = None,
    seed: int = 0,
) -> SweepResult:
    """Run ``algorithm`` over labelled (graph, predictions) instances.

    Each run is verified against the problem definition; the realized
    error is computed by ``error_measure``.
    """
    result = SweepResult()
    for label, graph, predictions in instances:
        outcome = run(
            algorithm, graph, predictions, max_rounds=max_rounds, seed=seed
        )
        result.points.append(
            SweepPoint(
                label=label,
                error=error_measure(graph, predictions),
                rounds=outcome.rounds,
                valid=problem.is_solution(graph, outcome.outputs),
                n=graph.n,
            )
        )
    return result


def check_consistency(
    algorithm: DistributedAlgorithm,
    problem: GraphProblem,
    graph: DistGraph,
    perfect: Outputs,
    consistency_bound: int,
    *,
    seed: int = 0,
) -> Tuple[bool, int]:
    """Whether the algorithm meets its consistency bound on η = 0 input.

    Returns ``(ok, rounds)`` where ok requires both a correct solution and
    ``rounds <= consistency_bound``.
    """
    outcome = run(algorithm, graph, perfect, seed=seed)
    ok = (
        problem.is_solution(graph, outcome.outputs)
        and outcome.rounds <= consistency_bound
    )
    return ok, outcome.rounds


def check_robustness(
    sweep_result: SweepResult,
    reference_bound: Callable[[int], int],
    factor: float = 1.0,
) -> List[SweepPoint]:
    """Points violating robustness: rounds > factor · reference_bound(n).

    ``reference_bound`` maps the instance size to the reference
    algorithm's worst-case rounds; robustness w.r.t. R allows a constant
    factor on top.
    """
    return [
        point
        for point in sweep_result.points
        if point.rounds > factor * reference_bound(point.n)
    ]


def degradation_slope(sweep_result: SweepResult) -> float:
    """Least-squares slope of rounds vs error (the empirical f(η) rate).

    A linearly-degrading algorithm shows a slope ≤ its degradation
    constant (1 for η₁-degrading, 2 for 2η₁-degrading, ...).
    """
    points = [(p.error, p.rounds) for p in sweep_result.points if p.error > 0]
    if len(points) < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    denominator = sum((x - mean_x) ** 2 for x, y in points)
    if denominator == 0:
        return 0.0
    return numerator / denominator
