"""The algorithms-with-predictions framework (Sections 4, 6 and 7).

This package turns the paper's framework into code:

* :mod:`repro.core.algorithm` — the algorithm interfaces: plain
  :class:`~repro.core.algorithm.DistributedAlgorithm`,
  :class:`~repro.core.algorithm.PhasedAlgorithm` (Interleaved Template),
  and :class:`~repro.core.algorithm.TwoPartReference` (Parallel Template).
* :mod:`repro.core.templates` — the four templates of Section 7 as generic
  combinators over an initialization algorithm B, a measure-uniform
  algorithm U, a clean-up algorithm C and a reference algorithm R.
* :mod:`repro.core.runner` — the high-level ``run()`` entry point.
* :mod:`repro.core.analysis` — empirical evaluation of consistency,
  degradation, robustness and smoothness (Section 1.2).
"""

from repro.core.algorithm import (
    DistributedAlgorithm,
    FunctionalAlgorithm,
    PhasedAlgorithm,
    TwoPartReference,
)
from repro.core.runner import ExecutionPolicy, RunConfig, run, run_with_trace
from repro.core.templates import (
    ConsecutiveTemplate,
    HedgedConsecutiveTemplate,
    InterleavedTemplate,
    ParallelTemplate,
    SimpleTemplate,
)

__all__ = [
    "ConsecutiveTemplate",
    "DistributedAlgorithm",
    "ExecutionPolicy",
    "FunctionalAlgorithm",
    "HedgedConsecutiveTemplate",
    "InterleavedTemplate",
    "ParallelTemplate",
    "PhasedAlgorithm",
    "RunConfig",
    "SimpleTemplate",
    "TwoPartReference",
    "run",
    "run_with_trace",
]
