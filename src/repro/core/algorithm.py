"""Algorithm interfaces.

A :class:`DistributedAlgorithm` is a factory of per-node programs plus the
metadata the templates of Section 7 need:

* ``round_bound(n, delta, d)`` — a worst-case round bound that every node
  can compute from its common knowledge (used by the Consecutive and
  Parallel Templates to schedule switches);
* ``safe_pause_interval`` — the phase granularity after which the
  algorithm's partial solution is guaranteed extendable, so a template may
  pause or stop it (the Greedy MIS Algorithm is safe every 2 rounds);
* ``uses_predictions`` — whether programs read ``ctx.prediction``.

:class:`PhasedAlgorithm` adds per-phase bounds for the Interleaved
Template; :class:`TwoPartReference` models the Parallel Template's
reference algorithm with a fault-tolerant first part.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simulator.models import LOCAL, ExecutionModel
from repro.simulator.program import NodeProgram


class DistributedAlgorithm:
    """A distributed algorithm: program factory plus template metadata."""

    #: Human-readable algorithm name.
    name: str = ""

    #: Execution model the algorithm is declared for (LOCAL or CONGEST).
    model: ExecutionModel = LOCAL

    #: Whether node programs read their prediction.
    uses_predictions: bool = False

    #: Pausing/stopping the algorithm is safe (the partial solution is
    #: extendable) whenever the number of executed rounds is a multiple of
    #: this interval.
    safe_pause_interval: int = 1

    def build_program(self) -> NodeProgram:
        """A fresh per-node program instance."""
        raise NotImplementedError

    def round_bound(self, n: int, delta: int, d: int) -> Optional[int]:
        """Worst-case round bound computable by every node, or ``None``.

        Templates may only schedule around algorithms that declare a
        bound; measure-uniform algorithms typically return ``None`` (their
        complexity depends on the measure, which nodes do not know).
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionalAlgorithm(DistributedAlgorithm):
    """An algorithm defined by a program-factory callable.

    Convenient for tests and small experiments::

        alg = FunctionalAlgorithm("probe", lambda: MyProgram())
    """

    def __init__(
        self,
        name: str,
        factory: Callable[[], NodeProgram],
        *,
        uses_predictions: bool = False,
        safe_pause_interval: int = 1,
        round_bound: Optional[Callable[[int, int, int], Optional[int]]] = None,
        model: ExecutionModel = LOCAL,
    ) -> None:
        self.name = name
        self._factory = factory
        self.uses_predictions = uses_predictions
        self.safe_pause_interval = safe_pause_interval
        self._round_bound = round_bound
        self.model = model

    def build_program(self) -> NodeProgram:
        return self._factory()

    def round_bound(self, n: int, delta: int, d: int) -> Optional[int]:
        if self._round_bound is None:
            return None
        return self._round_bound(n, delta, d)


class PhasedAlgorithm(DistributedAlgorithm):
    """An algorithm divided into phases with node-computable bounds.

    The Interleaved Template (Section 7.3) requires a reference algorithm
    divisible into phases whose round bounds ``r_i(n, Δ, d)`` every node
    can compute, with an extendable partial solution at the end of each
    phase.  Programs of a phased algorithm must *pad* each phase to its
    declared bound (the paper: a node "should wait until the number of
    rounds that has elapsed in a phase is the known upper bound for that
    phase"), so that phase boundaries land at globally known rounds.
    """

    def phase_bound(self, phase_index: int, n: int, delta: int, d: int) -> int:
        """Round bound of phase ``phase_index`` (1-based)."""
        raise NotImplementedError

    def num_phases(self, n: int, delta: int, d: int) -> int:
        """Number of phases after which the algorithm is expected done."""
        raise NotImplementedError

    def build_phase_program(self, phase_index: int) -> NodeProgram:
        """A fresh per-node program for one phase.

        A phase program runs on the current remaining graph, leaves an
        extendable partial solution, and goes quiet when its work is done
        (it may be padded by the driver up to ``phase_bound``).
        """
        raise NotImplementedError

    def round_bound(self, n: int, delta: int, d: int) -> Optional[int]:
        return sum(
            self.phase_bound(i, n, delta, d)
            for i in range(1, self.num_phases(n, delta, d) + 1)
        )

    def build_program(self) -> NodeProgram:
        """Default standalone driver: run phases back to back.

        The schedule is an infinite sequence of phase slices (progress per
        phase guarantees termination; extra slices beyond ``num_phases``
        are a safety net that never executes when the declared phase count
        is honest).
        """
        from repro.core.composition import Slice, SlicedProgram

        algorithm = self

        def schedule(ctx):
            phase = 0
            while True:
                phase += 1
                yield Slice(
                    f"phase{phase}",
                    max(1, algorithm.phase_bound(phase, ctx.n, ctx.delta or 0, ctx.d)),
                    lambda host, i=phase: algorithm.build_phase_program(i),
                )

        return SlicedProgram(schedule)


class TwoPartReference:
    """A reference algorithm with a fault-tolerant first part (Section 7.4).

    The Parallel Template runs part 1 alongside the measure-uniform
    algorithm; nodes that terminate early are treated by part 1 as
    crashed.  Part 1 must not assign real outputs — whatever it "outputs"
    is intercepted by the template, stored locally, and handed to part 2's
    program factory (or emitted as the real output when
    ``part1_outputs_are_final``).
    """

    #: Human-readable name.
    name: str = ""

    #: When true, part 1's stored output *is* the node's problem output
    #: (the case of an entirely fault-tolerant reference; part 2 empty).
    part1_outputs_are_final: bool = False

    def build_part1(self) -> NodeProgram:
        """A fresh per-node program for the fault-tolerant first part."""
        raise NotImplementedError

    def part1_bound(self, n: int, delta: int, d: int) -> int:
        """Node-computable round bound of part 1."""
        raise NotImplementedError

    def build_part2(self, part1_result: Any) -> Optional[NodeProgram]:
        """A fresh per-node program for part 2, given part 1's local result.

        Return ``None`` when there is no part 2.
        """
        return None

    def part2_bound(self, n: int, delta: int, d: int) -> Optional[int]:
        """Optional round bound of part 2 (informational)."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
