"""High-level execution entry points.

``run(algorithm, graph, predictions)`` is the one-call API most examples
and benchmarks use: it builds one program per node, executes the
synchronous engine, and returns the :class:`~repro.simulator.metrics.
RunResult` whose ``rounds`` field is the paper's performance measure.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Tuple

from repro.core.algorithm import DistributedAlgorithm
from repro.graphs.graph import DistGraph
from repro.simulator.engine import SyncEngine
from repro.simulator.metrics import RunResult
from repro.simulator.models import ExecutionModel
from repro.simulator.trace import TraceRecorder


def run(
    algorithm: DistributedAlgorithm,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    model: Optional[ExecutionModel] = None,
    max_rounds: Optional[int] = None,
    seed: int = 0,
    crash_rounds: Optional[Mapping[int, int]] = None,
    faults: Optional[Any] = None,
    on_round_limit: str = "raise",
) -> RunResult:
    """Run ``algorithm`` on ``graph`` and return the execution record.

    Args:
        algorithm: Any :class:`DistributedAlgorithm` (including templates).
        graph: The instance.
        predictions: Per-node predictions; required when the algorithm
            declares ``uses_predictions``.
        model: Execution model override (defaults to the algorithm's).
        max_rounds: Round budget override.
        seed: Seed for per-node random streams (randomized algorithms).
        crash_rounds: Back-compat crash-stop fault injection.
        faults: A :class:`~repro.faults.plan.FaultPlan` describing
            crashes, crash-recovery, message adversaries and prediction
            corruption.
        on_round_limit: ``"raise"`` or ``"partial"`` (graceful
            degradation; the result carries a ``stuck`` report).
    """
    if algorithm.uses_predictions and predictions is None:
        raise ValueError(
            f"{algorithm.name or type(algorithm).__name__} requires predictions"
        )
    engine = SyncEngine(
        graph,
        lambda node: algorithm.build_program(),
        predictions=predictions,
        model=model or algorithm.model,
        max_rounds=max_rounds,
        seed=seed,
        crash_rounds=crash_rounds,
        faults=faults,
        on_round_limit=on_round_limit,
    )
    return engine.run()


def run_with_trace(
    algorithm: DistributedAlgorithm,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    model: Optional[ExecutionModel] = None,
    max_rounds: Optional[int] = None,
    seed: int = 0,
    faults: Optional[Any] = None,
    on_round_limit: str = "raise",
) -> Tuple[RunResult, TraceRecorder]:
    """Like :func:`run` but also return the full event trace."""
    if algorithm.uses_predictions and predictions is None:
        raise ValueError(
            f"{algorithm.name or type(algorithm).__name__} requires predictions"
        )
    trace = TraceRecorder()
    engine = SyncEngine(
        graph,
        lambda node: algorithm.build_program(),
        predictions=predictions,
        model=model or algorithm.model,
        max_rounds=max_rounds,
        seed=seed,
        trace=trace,
        faults=faults,
        on_round_limit=on_round_limit,
    )
    return engine.run(), trace
