"""High-level execution entry points.

``run(algorithm, graph, predictions, config=RunConfig(...))`` is the one
call every example, benchmark and sweep uses: it builds one program per
node, executes the synchronous engine, and returns the
:class:`~repro.simulator.metrics.RunResult` whose ``rounds`` field is the
paper's performance measure.

:class:`RunConfig` is the single, frozen description of *how* to execute
— model, round budget, seed, fault plan, round-limit policy, tracing and
the engine's ``fast`` mode — so that a configuration can be hashed,
compared, stored in a sweep cell and shipped to a worker process.  The
keyword arguments of :func:`run` are conveniences that build (or
override) a :class:`RunConfig`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Tuple

from repro.core.algorithm import DistributedAlgorithm
from repro.graphs.graph import DistGraph
from repro.simulator.engine import SyncEngine
from repro.simulator.metrics import RunResult
from repro.simulator.models import ExecutionModel
from repro.simulator.trace import TraceRecorder

#: Sentinel distinguishing "not passed" from an explicit ``None``/value.
_UNSET: Any = object()


@dataclass(frozen=True)
class RunConfig:
    """Frozen description of one engine execution.

    Attributes:
        model: Execution model override; ``None`` uses the algorithm's.
        max_rounds: Round budget; ``None`` uses the engine default
            (``8 * n + 64``).
        seed: Seed for the per-node random streams.  ``None`` means
            *unset*: single runs fall back to seed 0, while sweep cells
            derive a deterministic per-cell seed.  An explicit ``0`` is
            honored everywhere (it is a real seed, not "unset").
        faults: A :class:`~repro.faults.plan.FaultPlan` (or controller)
            describing crashes, message adversaries and prediction
            corruption; ``None`` runs fault-free.
        on_round_limit: ``"raise"`` or ``"partial"`` (graceful
            degradation; the result carries a ``stuck`` report).
        trace: Record every event; the :class:`TraceRecorder` is attached
            to the result as ``result.trace``.
        fast: Engine fast mode — skip per-message bit-size estimation
            (identical outputs and round counts, no bandwidth columns).
        profile: Record per-round compose/deliver/process/finalize phase
            timings; the :class:`~repro.obs.profile.RoundProfile` is
            attached to the result as ``result.profile``.
        schedule: Round scheduling policy — ``"eager"`` (every live node
            every round), ``"quiescent"`` (skip nodes that declare
            ``quiescent_when_idle`` and cannot observably act this
            round; observationally identical, much faster on frontier
            workloads), ``"quiescent-debug"`` (run eagerly but raise
            :class:`~repro.simulator.engine.QuiescenceViolation` if a
            node the quiescent schedule would have skipped acts), or
            ``"async"`` (the asynchronous model: adversarial delivery
            delays up to ``phi`` ticks, fire-on-receipt scheduling,
            send timeouts and stabilization detection).
        phi: Delay bound for the ``"async"`` schedule's adversary
            (``0`` = synchronous delivery; requires
            ``schedule="async"`` when nonzero).
        send_timeout: Async sender-side retransmission timeout (ticks);
            ``None`` disables retries.  Requires ``schedule="async"``.
        max_retries: Retransmission budget per lost send.
        deadline_s: Wall-clock budget (seconds) per run; exceeding it
            returns a partial result with a ``stuck`` report
            (``reason="deadline"``) instead of hanging.
    """

    model: Optional[ExecutionModel] = None
    max_rounds: Optional[int] = None
    seed: Optional[int] = None
    faults: Optional[Any] = None
    on_round_limit: str = "raise"
    trace: bool = False
    fast: bool = False
    profile: bool = False
    schedule: str = "eager"
    phi: int = 0
    send_timeout: Optional[int] = None
    max_retries: int = 2
    deadline_s: Optional[float] = None

    @property
    def effective_seed(self) -> int:
        """The seed a single run uses: the configured one, else 0."""
        return 0 if self.seed is None else self.seed

    def __post_init__(self) -> None:
        if self.on_round_limit not in ("raise", "partial"):
            raise ValueError(
                "on_round_limit must be 'raise' or 'partial', "
                f"got {self.on_round_limit!r}"
            )
        if self.schedule not in ("eager", "quiescent", "quiescent-debug", "async"):
            raise ValueError(
                "schedule must be 'eager', 'quiescent', 'quiescent-debug' "
                f"or 'async', got {self.schedule!r}"
            )
        if self.phi < 0:
            raise ValueError(f"phi must be non-negative, got {self.phi}")
        if (self.phi or self.send_timeout is not None) and self.schedule != "async":
            raise ValueError(
                "phi= and send_timeout= belong to the asynchronous model; "
                f"pass schedule='async' (got schedule={self.schedule!r})"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def with_overrides(self, **overrides: Any) -> "RunConfig":
        """A copy with the given (non-``_UNSET``) fields replaced."""
        changes = {
            key: value for key, value in overrides.items() if value is not _UNSET
        }
        return replace(self, **changes) if changes else self


def _deprecated_crash_rounds(
    crash_rounds: Optional[Mapping[int, int]], faults: Optional[Any]
) -> Optional[Any]:
    """Fold the legacy ``crash_rounds`` mapping into a fault plan."""
    warnings.warn(
        "crash_rounds= is deprecated; pass "
        "faults=FaultPlan.crash_stop({node: round, ...}) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    from repro.faults.plan import FaultPlan

    if faults is None:
        return FaultPlan.crash_stop(crash_rounds)
    if isinstance(faults, FaultPlan):
        return faults.with_crash_rounds(crash_rounds)
    faults.add_crash_rounds(crash_rounds)
    return faults


def run(
    algorithm: DistributedAlgorithm,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    config: Optional[RunConfig] = None,
    model: Optional[ExecutionModel] = _UNSET,
    max_rounds: Optional[int] = _UNSET,
    seed: Optional[int] = _UNSET,
    crash_rounds: Optional[Mapping[int, int]] = None,
    faults: Optional[Any] = _UNSET,
    on_round_limit: str = _UNSET,
    trace: bool = _UNSET,
    fast: bool = _UNSET,
    profile: bool = _UNSET,
    schedule: str = _UNSET,
    phi: int = _UNSET,
    send_timeout: Optional[int] = _UNSET,
    max_retries: int = _UNSET,
    deadline_s: Optional[float] = _UNSET,
    sinks: Optional[Any] = None,
) -> RunResult:
    """Run ``algorithm`` on ``graph`` and return the execution record.

    The execution is described by ``config``; any keyword argument passed
    alongside it overrides the corresponding field.  Calls without a
    ``config`` build one from the keywords, so
    ``run(alg, g, p, seed=3)`` and
    ``run(alg, g, p, config=RunConfig(seed=3))`` are identical.

    Args:
        algorithm: Any :class:`DistributedAlgorithm` (including templates).
        graph: The instance.
        predictions: Per-node predictions; required when the algorithm
            declares ``uses_predictions``.
        config: A :class:`RunConfig`; defaults to ``RunConfig()``.
        model, max_rounds, seed, faults, on_round_limit, trace, fast,
            profile, schedule, phi, send_timeout, max_retries,
            deadline_s: Field-level overrides of ``config`` (see
            :class:`RunConfig`).
        sinks: Extra :class:`~repro.obs.events.EventSink` objects
            attached to the engine for this call (not part of the
            frozen config: sinks hold live resources such as open
            files).
        crash_rounds: Deprecated — use
            ``faults=FaultPlan.crash_stop({node: round, ...})``.

    Returns:
        The :class:`RunResult`; when tracing was requested its ``trace``
        attribute holds the :class:`TraceRecorder`.
    """
    if algorithm.uses_predictions and predictions is None:
        raise ValueError(
            f"{algorithm.name or type(algorithm).__name__} requires predictions"
        )
    config = (config or RunConfig()).with_overrides(
        model=model,
        max_rounds=max_rounds,
        seed=seed,
        faults=faults,
        on_round_limit=on_round_limit,
        trace=trace,
        fast=fast,
        profile=profile,
        schedule=schedule,
        phi=phi,
        send_timeout=send_timeout,
        max_retries=max_retries,
        deadline_s=deadline_s,
    )
    if crash_rounds:
        config = replace(
            config, faults=_deprecated_crash_rounds(crash_rounds, config.faults)
        )
    recorder = TraceRecorder() if config.trace else None
    engine = SyncEngine(
        graph,
        lambda node: algorithm.build_program(),
        predictions=predictions,
        model=config.model or algorithm.model,
        max_rounds=config.max_rounds,
        seed=config.effective_seed,
        trace=recorder,
        sinks=sinks,
        profile=config.profile,
        faults=config.faults,
        on_round_limit=config.on_round_limit,
        fast=config.fast,
        schedule=config.schedule,
        phi=config.phi,
        send_timeout=config.send_timeout,
        max_retries=config.max_retries,
        deadline_s=config.deadline_s,
    )
    result = engine.run()
    result.trace = recorder
    return result


def run_with_trace(
    algorithm: DistributedAlgorithm,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    model: Optional[ExecutionModel] = _UNSET,
    max_rounds: Optional[int] = _UNSET,
    seed: int = _UNSET,
    faults: Optional[Any] = _UNSET,
    on_round_limit: str = _UNSET,
) -> Tuple[RunResult, TraceRecorder]:
    """Deprecated: use ``run(..., trace=True)`` and ``result.trace``."""
    warnings.warn(
        "run_with_trace() is deprecated; use run(..., trace=True) and "
        "read the recorder from result.trace",
        DeprecationWarning,
        stacklevel=2,
    )
    result = run(
        algorithm,
        graph,
        predictions,
        model=model,
        max_rounds=max_rounds,
        seed=seed,
        faults=faults,
        on_round_limit=on_round_limit,
        trace=True,
    )
    return result, result.trace
