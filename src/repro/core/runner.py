"""High-level execution entry points.

``run(algorithm, graph, predictions, config=RunConfig(...))`` is the one
call every example, benchmark and sweep uses: it builds one program per
node, executes the synchronous engine, and returns the
:class:`~repro.simulator.metrics.RunResult` whose ``rounds`` field is the
paper's performance measure.

:class:`RunConfig` is the single, frozen description of *how* to execute
— model, round budget, seed, fault plan, round-limit policy, tracing,
the engine's ``fast`` mode and the :class:`ExecutionPolicy` (scheduling
and asynchrony knobs) — so that a configuration can be hashed, compared,
stored in a sweep cell and shipped to a worker process.  The keyword
arguments of :func:`run` are conveniences that build (or override) a
:class:`RunConfig`.

The execution knobs (``schedule``/``phi``/``send_timeout``/
``max_retries``/``deadline_s``/``fallback``) live in
:class:`ExecutionPolicy`; passing them flat to :func:`run` or
:class:`RunConfig` still works but emits a :class:`DeprecationWarning`
(docs/API.md documents the policy surface).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Tuple

from repro.core.algorithm import DistributedAlgorithm
from repro.graphs.graph import DistGraph
from repro.simulator.engine import SyncEngine
from repro.simulator.metrics import RunResult
from repro.simulator.models import ExecutionModel
from repro.simulator.scheduling import SCHEDULERS
from repro.simulator.trace import TraceRecorder

#: Sentinel distinguishing "not passed" from an explicit ``None``/value.
_UNSET: Any = object()


@dataclass(frozen=True)
class ExecutionPolicy:
    """How rounds are driven: schedule choice plus its tuning knobs.

    The one structured home for every knob that selects or parameterizes
    a :class:`~repro.simulator.scheduling.Scheduler` — what used to be
    five-and-growing flat keywords on :func:`run`.  Frozen and hashable,
    so policies can be shared across sweep cells and compared;
    :func:`repro.schedules` lists the valid ``schedule`` names with
    their capabilities.

    Attributes:
        schedule: Round scheduling policy — ``"eager"`` (every live node
            every round), ``"quiescent"`` (skip nodes that declare
            ``quiescent_when_idle`` and cannot observably act this
            round; observationally identical, much faster on frontier
            workloads), ``"quiescent-debug"`` (run eagerly but raise
            :class:`~repro.simulator.engine.QuiescenceViolation` if a
            node the quiescent schedule would have skipped acts),
            ``"async"`` (the asynchronous model: adversarial delivery
            delays up to ``phi`` ticks, fire-on-receipt scheduling,
            send timeouts and stabilization detection), or
            ``"vectorized"`` (compiled whole-frontier NumPy kernels
            over the CSR buffers — bit-identical to the interpreted
            engine for the registered greedy families, an order of
            magnitude faster at scale; see docs/PERFORMANCE.md).
        phi: Delay bound for the ``"async"`` schedule's adversary
            (``0`` = synchronous delivery; requires
            ``schedule="async"`` when nonzero).
        send_timeout: Async sender-side retransmission timeout (ticks);
            ``None`` disables retries.  Requires ``schedule="async"``.
        max_retries: Retransmission budget per lost send.
        deadline_s: Wall-clock budget (seconds) per run; exceeding it
            returns a partial result with a ``stuck`` report
            (``reason="deadline"``) instead of hanging.
        fallback: For ``schedule="vectorized"`` runs the kernels cannot
            execute: ``None`` (default) raises
            :class:`~repro.kernels.UnsupportedScheduleError`;
            ``"interpret"`` warns and runs the interpreted
            ``"quiescent"`` schedule instead.
        share_graph: Sweep-level zero-copy flag — the process-pool
            backend activates a :class:`~repro.shard.store.SharedCSRStore`
            when any cell requests it, so CSR buffers cross the pool
            boundary once as shared segments instead of per-chunk
            pickles.  A no-op for single runs and the serial backend
            (nothing ships).
        shard: ``"components"`` splits the cell's graph by connected
            components across pool workers and merges the shard results
            into one bit-identical row (see :mod:`repro.shard`).
            ``"edgecut"`` block-partitions the identifier space of a
            (possibly connected) graph and runs one engine per block,
            exchanging boundary messages at a per-round barrier
            (see :mod:`repro.shard.edgecut`) — also bit-identical.
            ``None`` (default) runs unsharded.  Incompatible with
            ``schedule="async"``: the delay adversary draws from
            tick-global streams, so isolation does not hold.
    """

    schedule: str = "eager"
    phi: int = 0
    send_timeout: Optional[int] = None
    max_retries: int = 2
    deadline_s: Optional[float] = None
    fallback: Optional[str] = None
    share_graph: bool = False
    shard: Optional[str] = None

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULERS:
            known = ", ".join(repr(name) for name in SCHEDULERS)
            raise ValueError(
                f"schedule must be one of {known}, got {self.schedule!r}"
            )
        if self.phi < 0:
            raise ValueError(f"phi must be non-negative, got {self.phi}")
        if (self.phi or self.send_timeout is not None) and self.schedule != "async":
            raise ValueError(
                "phi= and send_timeout= belong to the asynchronous model; "
                f"pass schedule='async' (got schedule={self.schedule!r})"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.fallback not in (None, "interpret"):
            raise ValueError(
                f"fallback must be None or 'interpret', got {self.fallback!r}"
            )
        if self.fallback is not None and self.schedule != "vectorized":
            raise ValueError(
                "fallback= only applies to schedule='vectorized' "
                f"(got schedule={self.schedule!r})"
            )
        if self.shard not in (None, "components", "edgecut"):
            raise ValueError(
                "shard must be None, 'components' or 'edgecut', "
                f"got {self.shard!r}"
            )
        if self.shard is not None and self.schedule == "async":
            raise ValueError(
                f"shard={self.shard!r} cannot run under schedule='async': "
                "the asynchronous delay adversary draws from tick-global "
                "streams, so sharded and unsharded runs would diverge"
            )


#: RunConfig keywords that live on the nested :class:`ExecutionPolicy`.
_POLICY_FIELDS: Tuple[str, ...] = (
    "schedule",
    "phi",
    "send_timeout",
    "max_retries",
    "deadline_s",
    "fallback",
    "share_graph",
    "shard",
)

_FLAT_POLICY_MESSAGE = (
    "flat execution keywords (schedule=/phi=/send_timeout=/max_retries=/"
    "deadline_s=/fallback=) are deprecated; pass "
    "policy=ExecutionPolicy(...) instead"
)


@dataclass(frozen=True, init=False)
class RunConfig:
    """Frozen description of one engine execution.

    Attributes:
        model: Execution model override; ``None`` uses the algorithm's.
        max_rounds: Round budget; ``None`` uses the engine default
            (``8 * n + 64``).
        seed: Seed for the per-node random streams.  ``None`` means
            *unset*: single runs fall back to seed 0, while sweep cells
            derive a deterministic per-cell seed.  An explicit ``0`` is
            honored everywhere (it is a real seed, not "unset").
        faults: A :class:`~repro.faults.plan.FaultPlan` (or controller)
            describing crashes, message adversaries and prediction
            corruption; ``None`` runs fault-free.
        on_round_limit: ``"raise"`` or ``"partial"`` (graceful
            degradation; the result carries a ``stuck`` report).
        trace: Record every event; the :class:`TraceRecorder` is attached
            to the result as ``result.trace``.
        fast: Engine fast mode — skip per-message bit-size estimation
            (identical outputs and round counts, no bandwidth columns).
        profile: Record per-round phase timings (compose/deliver/
            process/finalize, plus ``kernel`` under
            ``schedule="vectorized"``); the
            :class:`~repro.obs.profile.RoundProfile` is attached to the
            result as ``result.profile``.
        policy: The :class:`ExecutionPolicy` — schedule choice and its
            asynchrony/fallback knobs.  The policy's fields are also
            readable directly on the config (``config.schedule`` etc.);
            passing them flat to the constructor still works but is
            deprecated.
    """

    model: Optional[ExecutionModel] = None
    max_rounds: Optional[int] = None
    seed: Optional[int] = None
    faults: Optional[Any] = None
    on_round_limit: str = "raise"
    trace: bool = False
    fast: bool = False
    profile: bool = False
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    def __init__(
        self,
        model: Optional[ExecutionModel] = None,
        max_rounds: Optional[int] = None,
        seed: Optional[int] = None,
        faults: Optional[Any] = None,
        on_round_limit: str = "raise",
        trace: bool = False,
        fast: bool = False,
        profile: bool = False,
        policy: Optional[ExecutionPolicy] = None,
        *,
        schedule: Any = _UNSET,
        phi: Any = _UNSET,
        send_timeout: Any = _UNSET,
        max_retries: Any = _UNSET,
        deadline_s: Any = _UNSET,
        fallback: Any = _UNSET,
    ) -> None:
        flat = {
            name: value
            for name, value in (
                ("schedule", schedule),
                ("phi", phi),
                ("send_timeout", send_timeout),
                ("max_retries", max_retries),
                ("deadline_s", deadline_s),
                ("fallback", fallback),
            )
            if value is not _UNSET
        }
        if flat:
            warnings.warn(
                _FLAT_POLICY_MESSAGE, DeprecationWarning, stacklevel=2
            )
            policy = replace(policy or ExecutionPolicy(), **flat)
        if on_round_limit not in ("raise", "partial"):
            raise ValueError(
                "on_round_limit must be 'raise' or 'partial', "
                f"got {on_round_limit!r}"
            )
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "max_rounds", max_rounds)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "faults", faults)
        object.__setattr__(self, "on_round_limit", on_round_limit)
        object.__setattr__(self, "trace", trace)
        object.__setattr__(self, "fast", fast)
        object.__setattr__(self, "profile", profile)
        object.__setattr__(
            self, "policy", policy if policy is not None else ExecutionPolicy()
        )

    # -- policy field pass-throughs (the documented read surface) -------
    @property
    def schedule(self) -> str:
        return self.policy.schedule

    @property
    def phi(self) -> int:
        return self.policy.phi

    @property
    def send_timeout(self) -> Optional[int]:
        return self.policy.send_timeout

    @property
    def max_retries(self) -> int:
        return self.policy.max_retries

    @property
    def deadline_s(self) -> Optional[float]:
        return self.policy.deadline_s

    @property
    def fallback(self) -> Optional[str]:
        return self.policy.fallback

    @property
    def effective_seed(self) -> int:
        """The seed a single run uses: the configured one, else 0."""
        return 0 if self.seed is None else self.seed

    def with_overrides(self, **overrides: Any) -> "RunConfig":
        """A copy with the given (non-``_UNSET``) fields replaced.

        Accepts both config fields (including ``policy=``) and the
        policy's own field names — the latter are folded into a copy of
        the effective policy, so internal callers (the :func:`run`
        shim, sweep backends) can keep passing flat names without
        duplicating the routing logic.
        """
        changes = {
            key: value for key, value in overrides.items() if value is not _UNSET
        }
        policy = changes.pop("policy", None)
        policy_changes = {
            key: changes.pop(key)
            for key in _POLICY_FIELDS
            if key in changes
        }
        if policy is not None or policy_changes:
            base = policy if policy is not None else self.policy
            if policy_changes:
                base = replace(base, **policy_changes)
            changes["policy"] = base
        return replace(self, **changes) if changes else self


def _deprecated_crash_rounds(
    crash_rounds: Optional[Mapping[int, int]], faults: Optional[Any]
) -> Optional[Any]:
    """Fold the legacy ``crash_rounds`` mapping into a fault plan."""
    warnings.warn(
        "crash_rounds= is deprecated; pass "
        "faults=FaultPlan.crash_stop({node: round, ...}) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    from repro.faults.plan import FaultPlan

    if faults is None:
        return FaultPlan.crash_stop(crash_rounds)
    if isinstance(faults, FaultPlan):
        return faults.with_crash_rounds(crash_rounds)
    faults.add_crash_rounds(crash_rounds)
    return faults


def run(
    algorithm: DistributedAlgorithm,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    config: Optional[RunConfig] = None,
    model: Optional[ExecutionModel] = _UNSET,
    max_rounds: Optional[int] = _UNSET,
    seed: Optional[int] = _UNSET,
    crash_rounds: Optional[Mapping[int, int]] = None,
    faults: Optional[Any] = _UNSET,
    on_round_limit: str = _UNSET,
    trace: bool = _UNSET,
    fast: bool = _UNSET,
    profile: bool = _UNSET,
    policy: Optional[ExecutionPolicy] = None,
    schedule: str = _UNSET,
    phi: int = _UNSET,
    send_timeout: Optional[int] = _UNSET,
    max_retries: int = _UNSET,
    deadline_s: Optional[float] = _UNSET,
    fallback: Optional[str] = _UNSET,
    sinks: Optional[Any] = None,
) -> RunResult:
    """Run ``algorithm`` on ``graph`` and return the execution record.

    The execution is described by ``config``; any keyword argument passed
    alongside it overrides the corresponding field.  Calls without a
    ``config`` build one from the keywords, so
    ``run(alg, g, p, seed=3)`` and
    ``run(alg, g, p, config=RunConfig(seed=3))`` are identical.

    Args:
        algorithm: Any :class:`DistributedAlgorithm` (including templates).
        graph: The instance.
        predictions: Per-node predictions; required when the algorithm
            declares ``uses_predictions``.
        config: A :class:`RunConfig`; defaults to ``RunConfig()``.
        model, max_rounds, seed, faults, on_round_limit, trace, fast,
            profile: Field-level overrides of ``config`` (see
            :class:`RunConfig`).
        policy: An :class:`ExecutionPolicy` override — the documented
            way to choose a schedule and its asynchrony/fallback knobs:
            ``run(alg, g, policy=ExecutionPolicy(schedule="vectorized"))``.
        schedule, phi, send_timeout, max_retries, deadline_s, fallback:
            Deprecated flat spellings of the :class:`ExecutionPolicy`
            fields; they still work (folded into the effective policy)
            but emit a :class:`DeprecationWarning`.
        sinks: Extra :class:`~repro.obs.events.EventSink` objects
            attached to the engine for this call (not part of the
            frozen config: sinks hold live resources such as open
            files).
        crash_rounds: Deprecated — use
            ``faults=FaultPlan.crash_stop({node: round, ...})``.

    Returns:
        The :class:`RunResult`; when tracing was requested its ``trace``
        attribute holds the :class:`TraceRecorder`.
    """
    if algorithm.uses_predictions and predictions is None:
        raise ValueError(
            f"{algorithm.name or type(algorithm).__name__} requires predictions"
        )
    flat_policy = {
        name: value
        for name, value in (
            ("schedule", schedule),
            ("phi", phi),
            ("send_timeout", send_timeout),
            ("max_retries", max_retries),
            ("deadline_s", deadline_s),
            ("fallback", fallback),
        )
        if value is not _UNSET
    }
    if flat_policy:
        warnings.warn(_FLAT_POLICY_MESSAGE, DeprecationWarning, stacklevel=2)
    config = (config or RunConfig()).with_overrides(
        model=model,
        max_rounds=max_rounds,
        seed=seed,
        faults=faults,
        on_round_limit=on_round_limit,
        trace=trace,
        fast=fast,
        profile=profile,
        policy=policy,
        **flat_policy,
    )
    if crash_rounds:
        config = replace(
            config, faults=_deprecated_crash_rounds(crash_rounds, config.faults)
        )
    recorder = TraceRecorder() if config.trace else None
    engine = SyncEngine(
        graph,
        lambda node: algorithm.build_program(),
        predictions=predictions,
        model=config.model or algorithm.model,
        max_rounds=config.max_rounds,
        seed=config.effective_seed,
        trace=recorder,
        sinks=sinks,
        profile=config.profile,
        faults=config.faults,
        on_round_limit=config.on_round_limit,
        fast=config.fast,
        schedule=config.schedule,
        phi=config.phi,
        send_timeout=config.send_timeout,
        max_retries=config.max_retries,
        deadline_s=config.deadline_s,
        fallback=config.fallback,
    )
    result = engine.run()
    result.trace = recorder
    return result


def run_with_trace(
    algorithm: DistributedAlgorithm,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    model: Optional[ExecutionModel] = _UNSET,
    max_rounds: Optional[int] = _UNSET,
    seed: int = _UNSET,
    faults: Optional[Any] = _UNSET,
    on_round_limit: str = _UNSET,
) -> Tuple[RunResult, TraceRecorder]:
    """Deprecated: use ``run(..., trace=True)`` and ``result.trace``."""
    warnings.warn(
        "run_with_trace() is deprecated; use run(..., trace=True) and "
        "read the recorder from result.trace",
        DeprecationWarning,
        stacklevel=2,
    )
    result = run(
        algorithm,
        graph,
        predictions,
        model=model,
        max_rounds=max_rounds,
        seed=seed,
        faults=faults,
        on_round_limit=on_round_limit,
        trace=True,
    )
    return result, result.trace
