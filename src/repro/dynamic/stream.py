"""Epoch streams: per-epoch insert/delete batches over a DistGraph.

The dynamic model (docs/MODEL.md, "Dynamic model") sees a graph as a
sequence of *epochs*: an initial instance followed by batches of edge
insertions/deletions and node arrivals/departures.  Within an epoch the
graph is static and an algorithm-with-predictions runs to completion on
it; between epochs the previous outputs are carried forward as the next
epoch's predictions (:func:`repro.predictions.carry_predictions`).

Two stream sources implement the protocol: :class:`SyntheticChurnStream`
here (seeded churn schedules built on the same samplers as
``graphs/churn.py``) and the temporal-dataset loader in
:mod:`repro.dynamic.datasets`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.graphs.churn import sample_non_edges
from repro.graphs.graph import DistGraph

Edge = Tuple[int, int]


def _canonical(edges) -> Tuple[Edge, ...]:
    return tuple(sorted((min(u, v), max(u, v)) for u, v in edges))


@dataclass(frozen=True)
class EpochBatch:
    """One epoch's worth of graph updates.

    Edges are canonical ``(min, max)`` pairs.  New nodes arrive in
    ``add_nodes`` with their attachment edges included in
    ``insert_edges``; departing nodes in ``remove_nodes`` take all their
    incident edges with them implicitly (listing those edges in
    ``delete_edges`` is allowed but not required).
    """

    insert_edges: Tuple[Edge, ...] = ()
    delete_edges: Tuple[Edge, ...] = ()
    add_nodes: Tuple[int, ...] = ()
    remove_nodes: Tuple[int, ...] = ()

    @property
    def size(self) -> int:
        """Total number of updates in the batch."""
        return (
            len(self.insert_edges)
            + len(self.delete_edges)
            + len(self.add_nodes)
            + len(self.remove_nodes)
        )


def apply_batch(graph: DistGraph, batch: EpochBatch, name: str = "") -> DistGraph:
    """The graph after one epoch's updates (a fresh :class:`DistGraph`).

    Order of application: node removals (dropping incident edges), edge
    deletions, node additions, edge insertions.  Inserted edges that
    reference a removed or unknown endpoint, and deletions of absent
    edges, are ignored rather than raised — a temporal event stream is
    allowed to be sloppy; the resulting instance is always well formed.
    ``d`` grows to cover added identifiers and never shrinks, so carried
    predictions stay inside the identifier bound.
    """
    removed = set(batch.remove_nodes)
    adjacency: Dict[int, Set[int]] = {
        node: {other for other in graph.neighbors(node) if other not in removed}
        for node in graph.nodes
        if node not in removed
    }
    for u, v in batch.delete_edges:
        if u in adjacency and v in adjacency:
            adjacency[u].discard(v)
            adjacency[v].discard(u)
    for node in batch.add_nodes:
        adjacency.setdefault(node, set())
    for u, v in batch.insert_edges:
        if u in adjacency and v in adjacency and u != v:
            adjacency[u].add(v)
            adjacency[v].add(u)
    top = max(adjacency, default=0)
    attrs = {
        node: dict(graph.node_attrs(node))
        for node in adjacency
        if node in graph and graph.node_attrs(node)
    }
    return DistGraph(
        {node: sorted(others) for node, others in adjacency.items()},
        d=max(graph.d, top),
        attrs=attrs,
        name=name or graph.name,
    )


class EpochStream:
    """Protocol for epoch sources: an initial graph plus update batches.

    Subclasses set :attr:`initial_graph` and :attr:`epochs` and
    implement :meth:`batches`, yielding exactly ``epochs``
    :class:`EpochBatch` objects.  Streams are replayable: every call to
    :meth:`batches` yields the same sequence (all randomness is drawn
    from string-keyed seeds fixed at construction).
    """

    initial_graph: DistGraph
    epochs: int
    name: str = "stream"

    def batches(self) -> Iterator[EpochBatch]:
        raise NotImplementedError


class SyntheticChurnStream(EpochStream):
    """A seeded churn schedule: every epoch applies the same expected
    churn (``add``/``remove`` edges, ``add_nodes``/``remove_nodes``
    nodes) to the evolving graph.

    Each epoch ``t`` draws from ``random.Random(f"{seed}:epoch:{t}")`` —
    the same string-keyed scheme as ``perturb_edges``/``perturb_nodes``,
    so streams reproduce cross-process and cross-version.  Edge
    additions use :func:`repro.graphs.churn.sample_non_edges` and
    therefore deliver exactly the requested count whenever the evolving
    graph has that many non-edges.  Node removal keeps at least one
    survivor (the ``perturb_nodes`` clamp); new nodes attach to
    ``attach_degree`` random survivors.
    """

    def __init__(
        self,
        base_graph: DistGraph,
        epochs: int,
        *,
        add: int = 0,
        remove: int = 0,
        add_nodes: int = 0,
        remove_nodes: int = 0,
        attach_degree: int = 2,
        seed: int = 0,
    ) -> None:
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        self.initial_graph = base_graph
        self.epochs = epochs
        self.add = add
        self.remove = remove
        self.add_nodes = add_nodes
        self.remove_nodes = remove_nodes
        self.attach_degree = attach_degree
        self.seed = seed
        self.name = f"churn[{base_graph.name}+{add}-{remove}e/{add_nodes}-{remove_nodes}n]"

    def batches(self) -> Iterator[EpochBatch]:
        nodes: List[int] = list(self.initial_graph.nodes)
        edges: Set[Edge] = set(self.initial_graph.edges())
        next_id = (max(nodes) if nodes else 0) + 1
        for t in range(1, self.epochs + 1):
            rng = random.Random(f"{self.seed}:epoch:{t}")

            clamp = max(0, len(nodes) - 1)
            departing = sorted(rng.sample(nodes, min(self.remove_nodes, clamp)))
            survivors = [node for node in nodes if node not in set(departing)]
            surviving_edges = {
                (u, v) for u, v in edges
                if u not in set(departing) and v not in set(departing)
            }

            deletions = sorted(
                rng.sample(sorted(surviving_edges), min(self.remove, len(surviving_edges)))
            )
            remaining = surviving_edges - set(deletions)

            arrivals = list(range(next_id, next_id + self.add_nodes))
            next_id += self.add_nodes
            attach: List[Edge] = []
            pool = list(survivors)
            for node in arrivals:
                targets = (
                    rng.sample(pool, min(self.attach_degree, len(pool)))
                    if pool
                    else []
                )
                attach.extend((min(node, v), max(node, v)) for v in targets)
                pool.append(node)

            # Additions sample non-edges of the *surviving* node set so
            # the batch never references a departing endpoint; removed
            # edges (this epoch's deletions) are eligible for re-insertion
            # in later epochs but not this one.
            additions = sample_non_edges(
                survivors, remaining | set(deletions), self.add, rng
            )

            yield EpochBatch(
                insert_edges=_canonical(additions + attach),
                delete_edges=_canonical(deletions),
                add_nodes=tuple(arrivals),
                remove_nodes=tuple(departing),
            )

            nodes = survivors + arrivals
            edges = remaining | set(additions) | set(attach)
