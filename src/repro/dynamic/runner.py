"""Replay an epoch stream through ``run()``, warm-started by predictions.

Per epoch the runner executes the algorithm on the epoch's graph with the
*previous epoch's outputs* carried forward as predictions
(:func:`repro.predictions.carry_predictions` — the paper's Section 1.1
scenario made iterative), and optionally a solve-from-scratch comparison
run (default predictions, same instance and seed).  Three dynamic
quantities are recorded per epoch alongside the usual cell columns:

* **recourse** — the number of nodes present in both epoch ``t-1`` and
  epoch ``t`` whose output changed;
* **rounds-to-repair vs. solve-from-scratch** — the warm run's
  ``rounds`` next to the cold run's ``scratch_rounds``;
* **prediction error** — η₁ of the carried predictions on the new graph
  (the standard ``error`` column).

Rows are ordinary :class:`~repro.exec.results.CellResult` objects inside
a :class:`DynamicResult` (a :class:`~repro.exec.results.SweepResult`), so
CSV export, telemetry, and the ``repro.obs.bench`` baseline/gate
machinery all apply unchanged.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.runner import ExecutionPolicy, RunConfig, run
from repro.dynamic.stream import EpochBatch, EpochStream, apply_batch
from repro.errors import eta1
from repro.exec.plan import derive_cell_seed
from repro.exec.results import CellResult, SweepResult
from repro.graphs.graph import DistGraph
from repro.predictions import carry_predictions, default_predictions
from repro.problems import solution_size
from repro.problems.base import GraphProblem, Outputs


def recourse_between(
    old_graph: DistGraph,
    old_outputs: Outputs,
    new_graph: DistGraph,
    new_outputs: Outputs,
) -> int:
    """Nodes present in both epochs whose output changed.

    Newly arrived and departed nodes are excluded — their output did not
    *flip*, it appeared or vanished with them; recourse measures how
    much of the standing solution had to move.
    """
    flips = 0
    for node in new_graph.nodes:
        if node not in old_graph:
            continue
        if old_outputs.get(node) != new_outputs.get(node):
            flips += 1
    return flips


class DynamicResult(SweepResult):
    """A :class:`SweepResult` whose rows are consecutive epochs."""

    def recourse_curve(self) -> List[Tuple[int, int]]:
        """``(epoch, recourse)`` for every epoch that has a predecessor."""
        return [
            (row.epoch, row.recourse)
            for row in self.rows
            if row.recourse is not None
        ]

    def repair_curve(self) -> List[Tuple[int, int, Optional[int]]]:
        """``(epoch, warm rounds, scratch rounds)`` per epoch."""
        return [(row.epoch, row.rounds, row.scratch_rounds) for row in self.rows]

    def error_curve(self) -> List[Tuple[int, Optional[int]]]:
        """``(epoch, eta1 of carried predictions)`` per epoch."""
        return [(row.epoch, row.error) for row in self.rows]


class DynamicRunner:
    """Replay an :class:`~repro.dynamic.stream.EpochStream`.

    Args:
        algorithm_factory: Zero-argument callable returning a *fresh*
            algorithm instance per execution (algorithm objects are
            single-use, exactly as in sweep cells).
        problem: The :class:`~repro.problems.base.GraphProblem` the
            algorithm solves (drives defaults, carry rule, validation,
            η₁).
        stream: The epoch source.
        config: Base :class:`RunConfig` for every execution (the per-
            epoch seed overrides its ``seed``).
        policy: :class:`ExecutionPolicy` for every execution.
        scratch: When true (default) each epoch also runs solve-from-
            scratch — same graph, same seed, default predictions — and
            records its rounds in ``scratch_rounds``.
        seed: Base seed; epoch ``t`` runs with
            ``derive_cell_seed(seed, t, label)``, the sweep executor's
            scheme, so dynamic rows reproduce bit-for-bit on any
            backend.
        name: Result/sweep name (defaults to the stream's).
    """

    def __init__(
        self,
        algorithm_factory: Callable[[], Any],
        problem: GraphProblem,
        stream: EpochStream,
        *,
        config: Optional[RunConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        scratch: bool = True,
        seed: int = 0,
        name: str = "",
    ) -> None:
        self.algorithm_factory = algorithm_factory
        self.problem = problem
        self.stream = stream
        self.config = config
        self.policy = policy
        self.scratch = scratch
        self.seed = seed
        self.name = name or getattr(stream, "name", "dynamic")

    # ------------------------------------------------------------------
    def _execute_epoch(
        self,
        epoch: int,
        graph: DistGraph,
        predictions: Outputs,
        batch: Optional[EpochBatch],
        previous: Optional[Tuple[DistGraph, Outputs]],
    ) -> Tuple[CellResult, Outputs]:
        label = f"epoch={epoch}"
        cell_seed = derive_cell_seed(self.seed, epoch, label)
        started = time.perf_counter()
        error = eta1(graph, predictions, self.problem.name)
        result = run(
            self.algorithm_factory(),
            graph,
            predictions,
            config=self.config,
            policy=self.policy,
            seed=cell_seed,
        )
        scratch_rounds: Optional[int] = None
        if self.scratch:
            if epoch == 0:
                # Epoch 0 *is* the cold start: its warm run already uses
                # default predictions, so re-running would be identical.
                scratch_rounds = result.rounds
            else:
                cold = run(
                    self.algorithm_factory(),
                    graph,
                    default_predictions(self.problem, graph),
                    config=self.config,
                    policy=self.policy,
                    seed=cell_seed,
                )
                scratch_rounds = cold.rounds
        recourse: Optional[int] = None
        if previous is not None:
            old_graph, old_outputs = previous
            recourse = recourse_between(
                old_graph, old_outputs, graph, result.outputs
            )
        metrics: Dict[str, Any] = {}
        if batch is not None:
            metrics = {
                "inserted_edges": len(batch.insert_edges),
                "deleted_edges": len(batch.delete_edges),
                "added_nodes": len(batch.add_nodes),
                "removed_nodes": len(batch.remove_nodes),
            }
        row = CellResult(
            index=epoch,
            label=label,
            graph_name=graph.name,
            n=graph.n,
            seed=cell_seed,
            rounds=result.rounds,
            rounds_executed=result.rounds_executed,
            valid=self.problem.is_solution(graph, result.outputs),
            error=error,
            message_count=result.message_count,
            dropped_messages=result.dropped_messages,
            delayed_messages=result.delayed_messages,
            retried_messages=result.retried_messages,
            kernel=getattr(result, "kernel", None),
            epoch=epoch,
            recourse=recourse,
            scratch_rounds=scratch_rounds,
            stuck=result.stuck is not None,
            solution_size=solution_size(result.outputs, self.problem.name),
            metrics=metrics,
            elapsed=time.perf_counter() - started,
        )
        return row, result.outputs

    def run(self) -> DynamicResult:
        """Replay the whole stream; one row per epoch (epoch 0 included)."""
        started = time.perf_counter()
        graph = self.stream.initial_graph
        predictions = default_predictions(self.problem, graph)
        row, outputs = self._execute_epoch(0, graph, predictions, None, None)
        rows = [row]
        for epoch, batch in enumerate(self.stream.batches(), start=1):
            new_graph = apply_batch(
                graph, batch, name=f"{self.name}@{epoch}"
            )
            predictions = carry_predictions(self.problem, outputs, new_graph)
            row, new_outputs = self._execute_epoch(
                epoch, new_graph, predictions, batch, (graph, outputs)
            )
            rows.append(row)
            graph, outputs = new_graph, new_outputs
        return DynamicResult(
            name=self.name,
            rows=rows,
            backend="serial",
            elapsed=time.perf_counter() - started,
        )
