"""Temporal-dataset epoch streams (CollegeMsg and friends).

SNAP temporal networks ship as whitespace-separated ``src dst timestamp``
lines; the Learned-Topological-Order line of work drives its dynamic
experiments from exactly these files (CollegeMsg, email-Eu-core-temporal,
sx-mathoverflow).  :func:`temporal_stream` turns such a file into an
:class:`~repro.dynamic.stream.EpochStream`: events are sorted by
timestamp, the earliest slice builds the initial graph, and the rest are
bucketed into equal-count insertion epochs.  An optional sliding
``window`` ages edges out again — the batch for epoch ``t`` deletes the
edges inserted at epoch ``t - window`` — which is what produces genuine
deletions (the raw datasets only ever add).

Loading never touches the network: if the file is absent, a
deterministic seeded synthetic event stream with the same shape
(timestamped pair events, duplicates included) is generated and fed
through the *same* bucketing path, with a warning.  CI and offline runs
therefore exercise every code path without network access.  To run the
genuine datasets, :func:`fetch_dataset` (the ``repro datasets fetch``
subcommand) downloads the SNAP dumps into ``data_dir``, decompresses
them, and verifies a pinned sha256 before anything is written — it is
the only function here that opens a socket, and nothing calls it
implicitly.

Raw ids are 0-based in the SNAP dumps; the repo's instances are 1-based
(Section 2: identifiers from ``{1, ..., d}``), so ids are shifted by +1.
All nodes ever seen in the event stream are present from epoch 0 (as
isolated nodes at first, matching how these loaders pre-scan for the max
id) — temporal streams exercise edge churn; node churn is the synthetic
stream's job.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import random
import warnings
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.dynamic.stream import EpochBatch, EpochStream
from repro.graphs.graph import DistGraph

Edge = Tuple[int, int]
Event = Tuple[int, int, int]  # (u, v, timestamp), 1-based ids

#: Known dataset name -> expected file name in ``data_dir``.
TEMPORAL_DATASETS = {
    "collegemsg": "CollegeMsg.txt",
    "email-eu-core": "email-Eu-core-temporal.txt",
    "mathoverflow": "sx-mathoverflow-a2q.txt",
}

#: Dataset name -> canonical SNAP download URL (gzipped text).
DATASET_URLS = {
    "collegemsg": "https://snap.stanford.edu/data/CollegeMsg.txt.gz",
    "email-eu-core": (
        "https://snap.stanford.edu/data/email-Eu-core-temporal.txt.gz"
    ),
    "mathoverflow": "https://snap.stanford.edu/data/sx-mathoverflow-a2q.txt.gz",
}

#: Dataset name -> pinned sha256 of the *decompressed* text file.  SNAP
#: re-gzips its dumps from time to time, so digests over the ``.gz``
#: payload are not stable; the text payload is.  ``None`` means no digest
#: has been pinned yet: :func:`fetch_dataset` then records and reports
#: the observed digest instead of verifying (pass ``sha256=`` or edit
#: this table to pin it).
DATASET_SHA256: dict = {
    "collegemsg": None,
    "email-eu-core": None,
    "mathoverflow": None,
}


class DatasetFetchError(RuntimeError):
    """A dataset download failed or its checksum did not match."""


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one :func:`fetch_dataset` call."""

    name: str
    path: str
    sha256: str
    downloaded: bool  #: False when a verified local copy already existed.


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def fetch_dataset(
    name: str,
    *,
    data_dir: str = "data",
    sha256: Optional[str] = None,
    force: bool = False,
    opener: Optional[Callable[[str], bytes]] = None,
) -> FetchResult:
    """Download one temporal dataset into ``data_dir``, checksum-verified.

    ``name`` is a key of :data:`TEMPORAL_DATASETS`.  The expected digest
    is the ``sha256`` argument if given, else the pinned entry in
    :data:`DATASET_SHA256`.  On mismatch a :class:`DatasetFetchError` is
    raised and **nothing is written** — the file lands atomically (temp
    file + rename) only after verification, so a failed fetch can never
    poison the loader's offline fallback.  An existing file is re-verified
    and kept unless ``force`` is set.

    ``opener`` maps a URL to raw response bytes; it defaults to
    :mod:`urllib.request` and exists so tests (and mirrors) can inject a
    fetcher without patching the network stack.
    """
    key = name.lower()
    if key not in TEMPORAL_DATASETS:
        raise DatasetFetchError(
            f"unknown dataset {name!r} (choose from {sorted(TEMPORAL_DATASETS)})"
        )
    url = DATASET_URLS[key]
    expected = sha256 if sha256 is not None else DATASET_SHA256[key]
    path = os.path.join(data_dir, TEMPORAL_DATASETS[key])

    if os.path.exists(path) and not force:
        digest = _sha256(open(path, "rb").read())
        if expected is not None and digest != expected:
            raise DatasetFetchError(
                f"existing {path!r} has sha256 {digest}, expected {expected} "
                "(pass force=True / --force to re-download)"
            )
        return FetchResult(key, path, digest, downloaded=False)

    if opener is None:
        def opener(target: str) -> bytes:
            from urllib.request import urlopen

            with urlopen(target) as response:  # noqa: S310 — pinned https
                return response.read()

    try:
        payload = opener(url)
    except DatasetFetchError:
        raise
    except Exception as exc:
        raise DatasetFetchError(f"download of {url} failed: {exc}") from exc
    if url.endswith(".gz"):
        try:
            payload = gzip.decompress(payload)
        except OSError as exc:
            raise DatasetFetchError(
                f"response from {url} is not valid gzip: {exc}"
            ) from exc
    digest = _sha256(payload)
    if expected is not None and digest != expected:
        raise DatasetFetchError(
            f"{url} decompressed to sha256 {digest}, expected {expected} — "
            "refusing to write a corrupt or tampered file"
        )
    if expected is None:
        warnings.warn(
            f"no pinned sha256 for dataset {key!r}; observed {digest} — "
            "pin it via DATASET_SHA256 or --sha256 to verify future fetches",
            stacklevel=2,
        )
    os.makedirs(data_dir, exist_ok=True)
    tmp_path = f"{path}.part"
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
    os.replace(tmp_path, path)
    return FetchResult(key, path, digest, downloaded=True)


def parse_temporal_events(path: str) -> List[Event]:
    """``src dst timestamp`` lines -> sorted 1-based ``(u, v, ts)`` events.

    Comment lines (``#``/``%``) and self-loops are skipped; events are
    stably sorted by timestamp so equal-timestamp order follows file
    order, keeping the bucketing deterministic.
    """
    events: List[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 3:
                continue
            u, v, ts = int(parts[0]) + 1, int(parts[1]) + 1, int(float(parts[2]))
            if u == v:
                continue
            events.append((u, v, ts))
    events.sort(key=lambda event: event[2])
    return events


def synthetic_temporal_events(
    name: str,
    *,
    nodes: int = 60,
    count: int = 600,
    seed: int = 0,
) -> List[Event]:
    """A deterministic stand-in for a missing dataset file.

    Seeded per ``(seed, name)`` with the repo's string-keyed scheme, so
    the fallback reproduces cross-process/cross-version.  Like the real
    datasets it contains duplicate pair events and a mild recency skew
    (later events prefer recently active nodes), so dedup and windowing
    are exercised.
    """
    rng = random.Random(f"{seed}:temporal:{name}")
    events: List[Event] = []
    recent: List[int] = []
    ts = 0
    for _ in range(count):
        ts += rng.randint(1, 5)
        if recent and rng.random() < 0.4:
            u = rng.choice(recent)
        else:
            u = rng.randint(1, nodes)
        v = rng.randint(1, nodes)
        while v == u:
            v = rng.randint(1, nodes)
        events.append((u, v, ts))
        recent.append(u)
        recent = recent[-16:]
    return events


class TemporalStream(EpochStream):
    """An epoch stream replaying timestamped pair events.

    Built by :func:`temporal_stream`; see the module docstring for the
    bucketing and windowing semantics.
    """

    def __init__(
        self,
        events: List[Event],
        *,
        epochs: int,
        window: Optional[int] = None,
        name: str = "temporal",
    ) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if not events:
            raise ValueError("temporal stream needs at least one event")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.epochs = epochs
        self.window = window
        self.name = name

        top = max(max(u, v) for u, v, _ in events)
        # epochs + 1 equal-count slices: slice 0 is the initial graph,
        # slices 1..epochs are the insertion batches.
        slices: List[List[Edge]] = [[] for _ in range(epochs + 1)]
        per_slice = max(1, (len(events) + epochs) // (epochs + 1))
        for position, (u, v, _) in enumerate(events):
            index = min(position // per_slice, epochs)
            slices[index].append((min(u, v), max(u, v)))

        present = {edge for edge in slices[0]}
        adjacency = {node: [] for node in range(1, top + 1)}
        for u, v in sorted(present):
            adjacency[u].append(v)
        self.initial_graph = DistGraph(adjacency, d=top, name=f"{name}@0")

        # Pre-compute per-epoch inserts (dedup against the live edge set)
        # and window deletions, replaying once at construction so
        # batches() is a cheap replay of frozen batches.
        live = set(present)
        inserted_at: List[List[Edge]] = [sorted(present)]
        batches: List[EpochBatch] = []
        for t in range(1, epochs + 1):
            fresh: List[Edge] = []
            for edge in slices[t]:
                if edge not in live:
                    live.add(edge)
                    fresh.append(edge)
            expiring: List[Edge] = []
            if window is not None and t - window >= 0:
                for edge in inserted_at[t - window]:
                    if edge in live:
                        live.discard(edge)
                        expiring.append(edge)
            inserted_at.append(fresh)
            batches.append(
                EpochBatch(
                    insert_edges=tuple(sorted(fresh)),
                    delete_edges=tuple(sorted(expiring)),
                )
            )
        self._batches = tuple(batches)

    def batches(self) -> Iterator[EpochBatch]:
        return iter(self._batches)


def temporal_stream(
    name: str,
    *,
    epochs: int = 8,
    data_dir: str = "data",
    window: Optional[int] = None,
    limit: Optional[int] = None,
    seed: int = 0,
    fallback_nodes: int = 60,
    fallback_events: int = 600,
) -> TemporalStream:
    """Build a :class:`TemporalStream` for a named dataset.

    ``name`` is a key of :data:`TEMPORAL_DATASETS` (or any file name,
    looked up verbatim under ``data_dir``).  When the file is missing a
    deterministic synthetic event stream is substituted with a warning —
    runs stay offline-reproducible.  ``limit`` truncates the (sorted)
    event list, ``window`` ages insertions out after that many epochs.
    """
    key = name.lower()
    filename = TEMPORAL_DATASETS.get(key, name)
    path = os.path.join(data_dir, filename)
    if os.path.exists(path):
        events = parse_temporal_events(path)
        source = filename
    else:
        warnings.warn(
            f"temporal dataset {filename!r} not found under {data_dir!r}; "
            f"using the deterministic synthetic fallback (seed={seed})",
            stacklevel=2,
        )
        events = synthetic_temporal_events(
            key, nodes=fallback_nodes, count=fallback_events, seed=seed
        )
        source = f"{key}-synthetic"
    if limit is not None:
        events = events[:limit]
    return TemporalStream(
        events, epochs=epochs, window=window, name=source.rsplit(".", 1)[0]
    )
