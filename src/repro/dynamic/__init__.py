"""Dynamic-graph workloads: epoch streams, warm starts, recourse.

The paper's motivating scenario (Section 1.1) — a solution computed on
one network reused as a prediction on a related one — iterated into a
pipeline: an :class:`EpochStream` yields per-epoch insert/delete
batches, and a :class:`DynamicRunner` replays them through ``run()``,
feeding epoch ``t``'s outputs into epoch ``t+1`` as predictions and
recording recourse, rounds-to-repair vs. solve-from-scratch, and η₁ per
epoch.  See docs/MODEL.md ("Dynamic model") and EXPERIMENTS.md (E29).
"""

from repro.dynamic.datasets import (
    DATASET_SHA256,
    DATASET_URLS,
    DatasetFetchError,
    FetchResult,
    TEMPORAL_DATASETS,
    TemporalStream,
    fetch_dataset,
    parse_temporal_events,
    synthetic_temporal_events,
    temporal_stream,
)
from repro.dynamic.runner import DynamicResult, DynamicRunner, recourse_between
from repro.dynamic.stream import (
    EpochBatch,
    EpochStream,
    SyntheticChurnStream,
    apply_batch,
)

__all__ = [
    "DATASET_SHA256",
    "DATASET_URLS",
    "DatasetFetchError",
    "DynamicResult",
    "DynamicRunner",
    "EpochBatch",
    "EpochStream",
    "FetchResult",
    "SyntheticChurnStream",
    "TEMPORAL_DATASETS",
    "TemporalStream",
    "apply_batch",
    "fetch_dataset",
    "parse_temporal_events",
    "recourse_between",
    "synthetic_temporal_events",
    "temporal_stream",
]
