"""Stale predictions: the paper's motivating scenario (Section 1.1).

    "a maximal independent set has been computed on one network, but now
    a related network is being used."

Solve the problem on the *old* network, perturb the network (see
:mod:`repro.graphs.churn`), and hand the old solution to the new
instance as its predictions.  Nodes that did not exist in the old network
receive a problem-appropriate default.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs
from repro.problems.matching import UNMATCHED


def _default_prediction(problem: GraphProblem, graph: DistGraph, node: int):
    if problem.name == "mis":
        return 0
    if problem.name == "matching":
        return UNMATCHED
    if problem.name == "vertex-coloring":
        return 1
    if problem.name == "edge-coloring":
        return {}
    raise ValueError(f"no default prediction for problem {problem.name!r}")


def stale_predictions(
    problem: GraphProblem,
    old_graph: DistGraph,
    new_graph: DistGraph,
    seed: Optional[int] = None,
) -> Outputs:
    """Solve on ``old_graph`` and reuse the solution on ``new_graph``.

    For edge coloring, only entries for edges that still exist survive;
    for matching, a stale partner that is no longer a neighbor is kept
    verbatim (the initialization algorithms tolerate illegal predictions,
    and a vanished partner is precisely the kind of error churn causes).
    """
    from repro.predictions.generators import perfect_predictions

    old_solution = perfect_predictions(problem, old_graph, seed=seed)
    predictions: Outputs = {}
    for node in new_graph.nodes:
        if node not in old_solution:
            predictions[node] = _default_prediction(problem, new_graph, node)
            continue
        value = old_solution[node]
        if problem.name == "edge-coloring":
            value = {
                other: color
                for other, color in (value or {}).items()
                if other in new_graph.neighbors(node)
            }
        predictions[node] = value
    return predictions
