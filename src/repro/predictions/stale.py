"""Stale predictions: the paper's motivating scenario (Section 1.1).

    "a maximal independent set has been computed on one network, but now
    a related network is being used."

Solve the problem on the *old* network, perturb the network (see
:mod:`repro.graphs.churn`), and hand the old solution to the new
instance as its predictions.  Nodes that did not exist in the old network
receive a problem-appropriate default.

The carry rule lives in :func:`carry_predictions` so the dynamic
epoch-stream runner (:mod:`repro.dynamic`) can reuse it directly on a
previous epoch's *computed outputs* instead of re-solving the old graph.

Out-of-universe audit (node churn).  After ``perturb_nodes`` a stale
value can reference an identifier that is not merely a non-neighbor but
absent from the new graph entirely (removed, or above the new ``d``).
All four families were audited under combined edge+node churn:

* **mis / vertex-coloring** carry scalars, so no foreign id can appear.
* **edge-coloring** filters its per-edge map to surviving neighbors,
  which removes out-of-universe keys as a side effect.
* **matching** carries the partner id itself.  A partner that survives
  but is no longer a neighbor is kept verbatim — that is precisely the
  prediction error churn causes, and every initializer guards with
  ``predicted in ctx.neighbors``.  A partner that left the universe
  altogether is *not* a plausible prediction (no oracle can nominate a
  node that does not exist), so it is mapped to the UNMATCHED default
  here rather than leaking ghost ids into runs, CSVs, and telemetry.

The tolerated behavior is pinned by tests in
``tests/test_predictions.py`` (``TestStaleUniverse``).
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs
from repro.problems.matching import UNMATCHED


def _default_prediction(problem: GraphProblem, graph: DistGraph, node: int):
    if problem.name == "mis":
        return 0
    if problem.name == "matching":
        return UNMATCHED
    if problem.name == "vertex-coloring":
        return 1
    if problem.name == "edge-coloring":
        return {}
    raise ValueError(f"no default prediction for problem {problem.name!r}")


def default_predictions(problem: GraphProblem, graph: DistGraph) -> Outputs:
    """A cold start: every node gets the problem's default prediction.

    This is what a node "knows" with no oracle at all — the baseline the
    dynamic runner uses for epoch 0 and for its solve-from-scratch
    comparison runs.
    """
    return {
        node: _default_prediction(problem, graph, node) for node in graph.nodes
    }


def carry_predictions(
    problem: GraphProblem,
    old_solution: Outputs,
    new_graph: DistGraph,
) -> Outputs:
    """Reuse ``old_solution`` as predictions on ``new_graph``.

    The carry rule, per family:

    * nodes absent from ``old_solution`` (newly added) get the default;
    * **edge-coloring** maps are filtered to edges that still exist;
    * **matching** partners that left the new graph's universe entirely
      (removed by node churn) become UNMATCHED; surviving partners are
      kept verbatim even when no longer neighbors — that stale pointer
      is the prediction error the paper studies;
    * **mis** / **vertex-coloring** scalars are kept verbatim (a color
      may exceed the new palette; initializers tolerate and repair it).
    """
    universe = set(new_graph.nodes)
    predictions: Outputs = {}
    for node in new_graph.nodes:
        if node not in old_solution:
            predictions[node] = _default_prediction(problem, new_graph, node)
            continue
        value = old_solution[node]
        if problem.name == "edge-coloring":
            value = {
                other: color
                for other, color in (value or {}).items()
                if other in new_graph.neighbors(node)
            }
        elif problem.name == "matching":
            if value != UNMATCHED and value not in universe:
                value = UNMATCHED
        predictions[node] = value
    return predictions


def stale_predictions(
    problem: GraphProblem,
    old_graph: DistGraph,
    new_graph: DistGraph,
    seed: Optional[int] = None,
) -> Outputs:
    """Solve on ``old_graph`` and reuse the solution on ``new_graph``.

    Equivalent to :func:`carry_predictions` applied to a perfect
    solution of the old graph; see that function for the per-family
    carry rule (edge-coloring filtered to surviving edges, matching
    partners kept verbatim while in-universe, out-of-universe partners
    mapped to UNMATCHED).
    """
    from repro.predictions.generators import perfect_predictions

    old_solution = perfect_predictions(problem, old_graph, seed=seed)
    return carry_predictions(problem, old_solution, new_graph)
