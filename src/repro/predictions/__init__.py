"""Prediction generators.

The paper treats the predictor as a black box (a machine-learning oracle
"or some other source"); what matters to an algorithm with predictions is
the realized prediction error.  These generators produce per-node
predictions across the whole quality spectrum: perfect (η = 0),
noise-corrupted at a tunable rate, adversarial patterns (including the
Figure 2 grid pattern and the Section 9.2 directed-line pattern), and
*stale* predictions obtained by solving a related network and reusing the
old solution — the paper's own motivating scenario.
"""

from repro.predictions.generators import (
    all_ones_mis,
    all_zeros_mis,
    directed_line_pattern,
    grid_blackwhite_predictions,
    noisy_predictions,
    perfect_predictions,
)
from repro.predictions.learned import ensemble_predictions
from repro.predictions.stale import (
    carry_predictions,
    default_predictions,
    stale_predictions,
)

__all__ = [
    "all_ones_mis",
    "all_zeros_mis",
    "carry_predictions",
    "default_predictions",
    "directed_line_pattern",
    "ensemble_predictions",
    "grid_blackwhite_predictions",
    "noisy_predictions",
    "perfect_predictions",
    "stale_predictions",
]
