"""Synthetic prediction generators (perfect, noisy, adversarial)."""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs
from repro.problems.matching import UNMATCHED


def perfect_predictions(
    problem: GraphProblem, graph: DistGraph, seed: Optional[int] = None
) -> Outputs:
    """A correct solution used verbatim as the prediction (η = 0).

    With a ``seed``, the sequential solver processes nodes in a random
    order, sampling different correct solutions; without one it uses
    increasing identifiers.
    """
    if seed is None:
        return problem.solve_sequential(graph)
    rng = random.Random(f"{seed}:perfect")
    order = list(graph.nodes)
    rng.shuffle(order)
    return problem.solve_sequential(graph, order=order)


def noisy_predictions(
    problem: GraphProblem,
    graph: DistGraph,
    rate: float,
    seed: int = 0,
    base: Optional[Outputs] = None,
) -> Outputs:
    """Corrupt a correct solution independently per node at ``rate``.

    The corruption model per problem:

    * MIS — flip the bit;
    * Maximal Matching — replace the partner with a uniformly random
      neighbor (or ⊥ for an isolated node);
    * (Δ+1)-Vertex Coloring — replace with a uniformly random color;
    * (2Δ−1)-Edge Coloring — independently per edge side, replace with a
      uniformly random color.

    ``rate = 0`` returns the solution unchanged; ``rate = 1`` corrupts
    every entry.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"noise rate must be in [0, 1], got {rate}")
    rng = random.Random(f"{seed}:noise")
    solution = dict(base) if base is not None else perfect_predictions(problem, graph)

    corrupted: Dict[int, Any] = {}
    for node in graph.nodes:
        value = solution[node]
        if problem.name == "edge-coloring":
            entry = dict(value or {})
            palette_size = max(1, 2 * graph.delta - 1)
            for other in list(entry):
                if rng.random() < rate:
                    entry[other] = rng.randint(1, palette_size)
            corrupted[node] = entry
            continue
        if rng.random() >= rate:
            corrupted[node] = value
            continue
        if problem.name == "mis":
            corrupted[node] = 1 - value
        elif problem.name == "matching":
            neighbors = sorted(graph.neighbors(node))
            choices = [UNMATCHED] + neighbors
            choices = [choice for choice in choices if choice != value]
            corrupted[node] = rng.choice(choices) if choices else value
        elif problem.name == "vertex-coloring":
            palette_size = graph.delta + 1
            corrupted[node] = rng.randint(1, palette_size)
        else:
            raise ValueError(f"no noise model for problem {problem.name!r}")
    return corrupted


def all_ones_mis(graph: DistGraph) -> Outputs:
    """Adversarial MIS predictions: every node claims membership.

    On any graph with edges the base algorithm outputs nothing, so the
    whole graph is one big error component per connected component
    (η₁ maximal), while η₂ = 2·min(α, τ) can be far smaller (Section 5).
    """
    return {node: 1 for node in graph.nodes}


def all_zeros_mis(graph: DistGraph) -> Outputs:
    """Adversarial MIS predictions: every node claims non-membership."""
    return {node: 0 for node in graph.nodes}


def grid_blackwhite_predictions(graph: DistGraph) -> Outputs:
    """The Figure 2 grid pattern.

    Nodes with coordinates ``(i, j)`` where ``i, j mod 4 ∈ {0, 1}`` or
    ``i, j mod 4 ∈ {2, 3}`` are black (prediction 1); the rest are white.
    For this instance η₁ = n while η_bw = 4.  Requires a grid instance
    (``pos`` node attributes from :func:`repro.graphs.generators.grid2d`).
    """
    predictions: Outputs = {}
    for node in graph.nodes:
        pos = graph.node_attrs(node).get("pos")
        if pos is None:
            raise ValueError("grid_blackwhite_predictions needs grid 'pos' attrs")
        i, j = pos
        black = (i % 4 in (0, 1) and j % 4 in (0, 1)) or (
            i % 4 in (2, 3) and j % 4 in (2, 3)
        )
        predictions[node] = 1 if black else 0
    return predictions


def directed_line_pattern(graph: DistGraph) -> Outputs:
    """The Section 9.2 directed-line pattern.

    White (prediction 0) at depth ≡ 0 (mod 3) from the root, black
    (prediction 1) elsewhere: the MIS Base Algorithm outputs nothing
    (η₁ = n) but the rooted-tree initialization finishes by round 2 and
    η_t = 2.  Works on any rooted forest (depth = parent-pointer depth).
    """
    depth: Dict[int, int] = {}

    def node_depth(node: int) -> int:
        if node in depth:
            return depth[node]
        chain = []
        current = node
        while current not in depth:
            chain.append(current)
            parent = graph.node_attrs(current).get("parent")
            if parent is None:
                depth[current] = 0
                break
            current = parent
        for item in reversed(chain):
            parent = graph.node_attrs(item).get("parent")
            if item not in depth:
                depth[item] = depth[parent] + 1
        return depth[node]

    return {
        node: (0 if node_depth(node) % 3 == 0 else 1) for node in graph.nodes
    }
