"""A simulated learning-based predictor.

The paper's predictions "may come from a machine learning oracle or some
other source that is treated as a black box" (Section 1).  This module
provides a plausible such black box without any ML dependency: an
*ensemble predictor* that has seen solutions to ``k`` perturbed versions
of the instance (yesterday's networks, staging environments, simulation
runs, ...) and predicts by per-node majority vote.

The knob ``k`` plays the role of training data volume: more samples give
predictions closer to a solution of the actual instance, so the realized
error η decreases — which is exactly the regime the framework's
consistency/degradation guarantees reward.  For value problems
(matching, colorings) the majority is taken per node over the sampled
values, falling back to the problem default on ties.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.graphs.churn import perturb_edges
from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs
from repro.problems.matching import UNMATCHED


def _majority(values, default):
    counter = Counter(
        value if not isinstance(value, dict) else tuple(sorted(value.items()))
        for value in values
    )
    if not counter:
        return default
    (winner, count), *rest = counter.most_common(2)
    if rest and rest[0][1] == count:
        return default  # tie: abstain to the default
    if isinstance(winner, tuple) and winner and isinstance(winner[0], tuple):
        return dict(winner)
    return winner


def _default(problem: GraphProblem) -> Any:
    return {
        "mis": 0,
        "matching": UNMATCHED,
        "vertex-coloring": 1,
        "edge-coloring": {},
    }[problem.name]


def ensemble_predictions(
    problem: GraphProblem,
    graph: DistGraph,
    samples: int,
    churn: int = 3,
    seed: int = 0,
    consistent_order: bool = True,
) -> Outputs:
    """Predict by majority vote over solutions of perturbed instances.

    Args:
        problem: The target problem.
        graph: The actual instance being predicted for.
        samples: Ensemble size k (0 returns all-default predictions — an
            untrained predictor).
        churn: Edges added *and* removed per sampled instance; larger
            churn means noisier training data.
        seed: Base seed; each sample perturbs and solves with its own
            derived seed.
        consistent_order: When true (default), every sample is solved in
            the same canonical node order, so the ensemble converges to
            one solution and more samples mean smaller error.  When
            false, each sample uses a random order — and because correct
            predictions are *not unique* (the paper's Section 5 point),
            the majority over many different valid solutions is usually
            not close to any solution: diversity hurts.  The
            ``learned_predictor.py`` example measures both regimes.
    """
    if samples < 0:
        raise ValueError(f"samples must be non-negative, got {samples}")
    votes = {node: [] for node in graph.nodes}
    for index in range(samples):
        sample_graph = perturb_edges(
            graph, add=churn, remove=churn, seed=seed * 1009 + index
        )
        order = (
            None
            if consistent_order
            else _sample_order(sample_graph, seed * 2003 + index)
        )
        solution = problem.solve_sequential(sample_graph, order=order)
        for node in graph.nodes:
            if node in solution:
                value = solution[node]
                if problem.name == "edge-coloring":
                    value = {
                        other: color
                        for other, color in (value or {}).items()
                        if other in graph.neighbors(node)
                    }
                elif problem.name == "matching" and value != UNMATCHED:
                    if value not in graph.neighbors(node):
                        value = UNMATCHED
                votes[node].append(value)
    default = _default(problem)
    return {
        node: _majority(values, default) for node, values in votes.items()
    }


def _sample_order(graph: DistGraph, seed: int):
    import random

    order = list(graph.nodes)
    random.Random(f"{seed}:order").shuffle(order)
    return order
