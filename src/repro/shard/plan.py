"""Component-sharded cell execution: split, run, merge bit-identically.

The embarrassingly-shardable case from ROADMAP item 4: nodes in different
connected components never exchange messages, so a cell whose graph has
many components can run as independent sub-cells — one per worker — and
merge back into a single :class:`~repro.exec.results.CellResult` that is
**bit-identical** to the unsharded run.  Identity holds because every
ambient quantity a node observes is pinned to the parent graph's value:

* per-node randomness is keyed ``Random(f"{seed}:{node_id}")`` — the
  stream never sees the shard;
* a :func:`shard_view` reports the *parent's* ``n`` and ``Δ``, so round
  budgets (``8n + 64``), CONGEST bandwidth (``O(log n)`` bits), palette
  sizes (``Δ+1`` / ``2Δ−1``) and template slice bounds all match;
* predictions are built from the full graph's spec (same factory, same
  seed) and restricted to the shard's nodes;
* the merge rules are exactly the component decompositions of the
  engine's aggregates — ``rounds``/``rounds_executed`` are maxima,
  message/solution counts are sums, validity is a conjunction, and η₁ is
  a maximum (error components are sub-component by definition).

What shards: cells without fault plans, custom metrics, profiling or
event capture, on any schedule except ``"async"`` (the delay adversary
draws from tick-global streams, so component isolation does not hold;
:class:`~repro.core.runner.ExecutionPolicy` rejects the combination).
:func:`shard_mode` is the single gate both backends consult.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.runner import run
from repro.graphs.graph import DistGraph

if TYPE_CHECKING:  # imported lazily at runtime: repro.exec imports this
    # module (via the backends), so a module-level import would cycle.
    from repro.exec.cache import ArtifactCache
    from repro.exec.plan import Cell
    from repro.exec.results import CellResult


@dataclass
class ShardPartial:
    """One shard's contribution to a sharded cell (picklable row shard).

    ``shard``/``shard_count`` locate it; everything else mirrors the
    :class:`~repro.exec.results.CellResult` fields its merge feeds.
    """

    index: int
    shard: int
    shard_count: int
    graph_name: str
    n: int
    shard_nodes: int
    rounds: int
    rounds_executed: int
    message_count: int
    dropped_messages: int
    delayed_messages: int
    retried_messages: int
    valid: Optional[bool]
    error: Optional[int]
    solution_size: int
    stuck: bool
    kernel: Optional[str]
    elapsed: float


def shard_mode(
    cell: "Cell", *, profile: bool = False, events: bool = False
) -> Optional[str]:
    """The cell's effective shard mode, or ``None`` when it must run
    unsharded (no shard requested, or a feature that needs the whole
    graph in one engine — faults, custom metrics, profiling, events)."""
    mode = cell.config.policy.shard
    if mode is None:
        return None
    if (
        cell.faults is not None
        or cell.config.faults is not None
        or cell.metrics is not None
        or profile
        or events
    ):
        return None
    return mode


def shard_view(parent: DistGraph, nodes: Sequence[int]) -> DistGraph:
    """The induced subgraph with the parent's ambient ``n``/``Δ`` pinned.

    The view's node set and edges are the shard's own (freshly built
    topology, per the subgraph-freshness contract), but ``graph.n`` and
    ``graph.delta`` report the parent's values — the quantities a node in
    the unsharded run would know.
    """
    view = parent.subgraph(nodes)
    view.n = parent.n
    view._delta_override = parent.delta
    return view


def shard_node_ids(graph: DistGraph, shard: int, shard_count: int) -> List[int]:
    """Identifiers of the components assigned to ``shard`` (round-robin
    over the topology's min-id-ordered component list)."""
    csr = graph.csr
    ids = csr.ids
    parts = csr.components()
    return [
        ids[index]
        for part_index in range(shard, len(parts), shard_count)
        for index in parts[part_index]
    ]


def edgecut_bounds(n_nodes: int, shard_count: int) -> List[int]:
    """Block boundaries of the edge-cut partition: ``shard_count + 1``
    positions into the sorted identifier sequence.

    Shard ``s`` owns the contiguous slice ``[bounds[s], bounds[s+1])`` of
    the ascending node ids — a BFS/DFS-block partition for generators that
    number locality-contiguously (preorder trees, rings, grids), and a
    balanced ±1 split for any graph.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    return [(n_nodes * s) // shard_count for s in range(shard_count + 1)]


def edgecut_node_ids(
    graph: DistGraph, shard: int, shard_count: int
) -> List[int]:
    """Identifiers owned by ``shard`` under the edge-cut block partition."""
    nodes = graph.nodes
    bounds = edgecut_bounds(len(nodes), shard_count)
    return list(nodes[bounds[shard] : bounds[shard + 1]])


class EdgecutView:
    """One edge-cut shard's window onto the *full* parent graph.

    Unlike :func:`shard_view` (components), no subgraph is built: an
    owned node keeps its complete adjacency — including neighbors whose
    mailboxes live on other shards — because the paper's algorithms act
    on full local views and only the *delivery* of cut messages moves to
    the :class:`~repro.simulator.transport.BoundaryTransport`.  ``nodes``
    is the owned contiguous block; every ambient quantity (``n``, ``d``,
    ``Δ``, attrs) delegates to the parent, so round budgets, CONGEST
    bandwidth and palette sizes match the unsharded run exactly.
    """

    __slots__ = ("parent", "shard", "shard_count", "nodes")

    #: Marker the kernel resolver checks: compiled whole-frontier kernels
    #: index dense per-node arrays and have no halo exchange, so they
    #: reject edge-cut views loudly (``UnsupportedScheduleError``).
    is_edgecut = True

    def __init__(
        self, parent: DistGraph, shard: int, shard_count: int
    ) -> None:
        if not 0 <= shard < shard_count:
            raise ValueError(
                f"shard must be in [0, {shard_count}), got {shard}"
            )
        self.parent = parent
        self.shard = shard
        self.shard_count = shard_count
        self.nodes = tuple(edgecut_node_ids(parent, shard, shard_count))

    def __reduce__(self) -> tuple:
        # Rebuild from the parent (which ships zero-copy under an active
        # SharedCSRStore) instead of pickling the owned-id tuple.
        return (type(self), (self.parent, self.shard, self.shard_count))

    @property
    def n(self) -> int:
        return self.parent.n

    @property
    def d(self) -> int:
        return self.parent.d

    @property
    def delta(self) -> Optional[int]:
        return self.parent.delta

    @property
    def name(self) -> str:
        return (
            f"{self.parent.name}[edgecut {self.shard}/{self.shard_count}]"
        )

    def neighbors(self, node: int):
        return self.parent.neighbors(node)

    def node_attrs(self, node: int):
        return self.parent.node_attrs(node)


def execute_shard(
    index: int,
    cell: "Cell",
    seed: int,
    shard: int,
    shard_count: int,
    cache: "ArtifactCache",
) -> ShardPartial:
    """Run one shard of a cell (worker-side) and return its partial.

    The parent graph is attached/built through the worker's artifact
    cache (zero-copy when a :class:`~repro.shard.store.SharedCSRStore`
    shipped it); the shard's induced view is cached per
    ``(graph, shard, shard_count)`` so grid cells sharing a graph reuse
    it.
    """
    start = time.perf_counter()
    graph = cache.get_or_build(cell.graph.key, cell.graph.build)
    view = cache.get_or_build(
        f"shard:{shard}/{shard_count}@{cell.graph.key}",
        lambda: shard_view(graph, shard_node_ids(graph, shard, shard_count)),
    )
    predictions = None
    if cell.predictions is not None:
        spec = cell.predictions
        full = cache.get_or_build(
            f"{spec.key}@{cell.graph.key}", lambda: spec.build(graph)
        )
        predictions = {
            node: full[node] for node in view.nodes if node in full
        }
    algorithm = cell.algorithm.build()
    config = cell.config.with_overrides(seed=seed)
    result = run(algorithm, view, predictions, config=config)

    problem = None
    valid = None
    error = None
    if cell.problem is not None:
        from repro.problems import get_problem

        problem = get_problem(cell.problem)
        valid = problem.is_solution(view, result.outputs)
        if predictions is not None:
            from repro.errors import eta1

            error = eta1(view, predictions, problem.name)
    from repro.problems import solution_size as _solution_size

    return ShardPartial(
        index=index,
        shard=shard,
        shard_count=shard_count,
        graph_name=graph.name,
        n=graph.n,
        shard_nodes=len(view.nodes),
        rounds=result.rounds,
        rounds_executed=result.rounds_executed,
        message_count=result.message_count,
        dropped_messages=result.dropped_messages,
        delayed_messages=result.delayed_messages,
        retried_messages=result.retried_messages,
        valid=valid,
        error=error,
        solution_size=_solution_size(
            result.outputs, problem.name if problem is not None else None
        ),
        stuck=result.stuck is not None,
        kernel=getattr(result, "kernel", None),
        elapsed=time.perf_counter() - start,
    )


def merge_partials(
    index: int, cell: "Cell", seed: int, partials: Sequence[ShardPartial]
) -> "CellResult":
    """Fold a cell's shard partials into the unsharded-identical row.

    Maxima for round counts and η₁ (component-wise maxima compose),
    sums for message/solution counters, conjunction for validity.
    """
    from repro.exec.results import CellResult

    if not partials:
        raise ValueError(f"cell {cell.label!r} produced no shard partials")
    parts = sorted(partials, key=lambda partial: partial.shard)
    valids = [partial.valid for partial in parts if partial.valid is not None]
    errors = [partial.error for partial in parts if partial.error is not None]
    kernels = [
        partial.kernel for partial in parts if partial.kernel is not None
    ]
    return CellResult(
        index=index,
        label=cell.label,
        graph_name=parts[0].graph_name,
        n=parts[0].n,
        seed=seed,
        rounds=max(partial.rounds for partial in parts),
        rounds_executed=max(partial.rounds_executed for partial in parts),
        valid=all(valids) if cell.problem is not None else None,
        error=max(errors) if errors else None,
        message_count=sum(partial.message_count for partial in parts),
        dropped_messages=sum(partial.dropped_messages for partial in parts),
        delayed_messages=sum(partial.delayed_messages for partial in parts),
        retried_messages=sum(partial.retried_messages for partial in parts),
        kernel=kernels[0] if kernels else None,
        stuck=any(partial.stuck for partial in parts),
        solution_size=sum(partial.solution_size for partial in parts),
        elapsed=sum(partial.elapsed for partial in parts),
        shards=len(parts),
    )
