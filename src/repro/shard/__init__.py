"""Zero-copy shared-memory graph store + component-sharded execution.

Two pieces, both serving sweeps whose graphs dwarf their cells:

* :class:`SharedCSRStore` — while active, pickling a
  :class:`~repro.graphs.csr.CSRTopology` publishes its buffers into a
  :mod:`multiprocessing.shared_memory` segment (mmap'd-file fallback)
  exactly once and ships a ~100-byte :class:`SharedCSRHandle`; workers
  attach zero-copy.  Activated by the process-pool backend when a cell's
  :class:`~repro.core.runner.ExecutionPolicy` sets ``share_graph=True``.
* Component sharding (:func:`execute_shard` / :func:`merge_partials`) —
  cells whose policy sets ``shard="components"`` split by connected
  components across workers and merge back into one
  :class:`~repro.exec.results.CellResult` bit-identical to the unsharded
  run.

See docs/PERFORMANCE.md ("Sharded execution") and docs/ARCHITECTURE.md.
"""

from repro.shard.plan import (
    ShardPartial,
    execute_shard,
    merge_partials,
    shard_mode,
    shard_node_ids,
    shard_view,
)
from repro.shard.store import (
    SharedCSRHandle,
    SharedCSRStore,
    SharedCSRStoreError,
    attach_csr,
    detach_all,
    reset_worker_state,
)

__all__ = [
    "ShardPartial",
    "SharedCSRHandle",
    "SharedCSRStore",
    "SharedCSRStoreError",
    "attach_csr",
    "detach_all",
    "execute_shard",
    "merge_partials",
    "reset_worker_state",
    "shard_mode",
    "shard_node_ids",
    "shard_view",
]
