"""Zero-copy shared-memory graph store + sharded execution.

Three pieces, all serving sweeps whose graphs dwarf their cells:

* :class:`SharedCSRStore` — while active, pickling a
  :class:`~repro.graphs.csr.CSRTopology` publishes its buffers into a
  :mod:`multiprocessing.shared_memory` segment (mmap'd-file fallback)
  exactly once and ships a ~100-byte :class:`SharedCSRHandle`; workers
  attach zero-copy.  Activated by the process-pool backend when a cell's
  :class:`~repro.core.runner.ExecutionPolicy` sets ``share_graph=True``.
* Component sharding (:func:`execute_shard` / :func:`merge_partials`) —
  cells whose policy sets ``shard="components"`` split by connected
  components across workers and merge back into one
  :class:`~repro.exec.results.CellResult` bit-identical to the unsharded
  run.
* Edge-cut sharding (:func:`run_edgecut` / :func:`execute_edgecut_cell`)
  — cells whose policy sets ``shard="edgecut"`` block-partition the
  identifier space of a *connected* graph; one engine per block runs in
  lockstep, exchanging cut-crossing messages through a per-round barrier
  (:class:`~repro.simulator.transport.BoundaryTransport`), still
  bit-identical to the unsharded run.

See docs/PERFORMANCE.md ("Sharded execution") and docs/ARCHITECTURE.md.
"""

from repro.shard.edgecut import (
    EdgecutPlan,
    execute_edgecut_cell,
    run_edgecut,
)
from repro.shard.plan import (
    EdgecutView,
    ShardPartial,
    edgecut_bounds,
    edgecut_node_ids,
    execute_shard,
    merge_partials,
    shard_mode,
    shard_node_ids,
    shard_view,
)
from repro.shard.store import (
    SharedCSRHandle,
    SharedCSRStore,
    SharedCSRStoreError,
    attach_csr,
    detach_all,
    reset_worker_state,
)

__all__ = [
    "EdgecutPlan",
    "EdgecutView",
    "ShardPartial",
    "SharedCSRHandle",
    "SharedCSRStore",
    "SharedCSRStoreError",
    "attach_csr",
    "detach_all",
    "edgecut_bounds",
    "edgecut_node_ids",
    "execute_edgecut_cell",
    "execute_shard",
    "merge_partials",
    "reset_worker_state",
    "run_edgecut",
    "shard_mode",
    "shard_node_ids",
    "shard_view",
]
