"""Edge-cut sharded execution: connected graphs across round-lockstep shards.

Component sharding (:mod:`repro.shard.plan`) splits a cell only along
connected components; a single connected graph still runs in one engine.
This module shards *through* the edges: the identifier space is block
partitioned (:func:`~repro.shard.plan.edgecut_node_ids`), each shard runs
a full :class:`~repro.simulator.engine.SyncEngine` over an
:class:`~repro.shard.plan.EdgecutView` of its contiguous block, and the
messages that cross the cut travel through a per-round barrier owned by a
coordinator.  Two execution modes share every line of round logic:

* **threads** (``serial`` backend, :func:`run_edgecut`) — one thread per
  shard inside this process, meeting at a :class:`_Rendezvous`;
* **processes** (``process`` backend) — one dedicated
  :class:`multiprocessing.Process` per shard wired to the parent by a
  pipe; the parent routes batches and the graph ships zero-copy through
  an active :class:`~repro.shard.store.SharedCSRStore`.

Bit-identity with the unsharded run rests on the invariants documented in
:class:`~repro.simulator.transport.BoundaryTransport` (ascending-sender
inbox merges, deferred globally-ordered strict-CONGEST violations) plus
two driver-side rules:

* **Global event order** — terminations are never published shard-locally;
  every shard exports them and the coordinator broadcasts one globally
  sorted list per round, reproducing the unsharded per-round
  ``neighbor_outputs`` insertion order.
* **Global continuation** — the run continues while the *sum* of shard
  active counts is positive, and the violation / deadline /
  ``on_round_limit`` decisions are taken once, centrally, with the same
  precedence as :meth:`SyncEngine.run`.
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback
from bisect import bisect_right
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.graphs.graph import DistGraph
from repro.shard.plan import EdgecutView, edgecut_bounds
from repro.simulator.engine import RoundLimitExceeded, SyncEngine
from repro.simulator.metrics import RunResult, StuckReport
from repro.simulator.transport import BoundaryTransport, bandwidth_error

if TYPE_CHECKING:  # lazy at runtime: repro.exec imports this module.
    from repro.exec.plan import Cell
    from repro.exec.results import CellResult

_PICKLE = pickle.HIGHEST_PROTOCOL

#: Schedules whose round loops carry the boundary hooks.  ``vectorized``
#: reaches the kernel resolver, which rejects edge-cut views (or
#: downgrades via ``fallback="interpret"``); ``async`` is rejected by
#: :class:`~repro.core.runner.ExecutionPolicy` before a driver exists.
_SUPPORTED_SCHEDULES = ("eager", "quiescent", "quiescent-debug", "vectorized")


class _Aborted(Exception):
    """Internal: another shard failed; unwind quietly."""


class EdgecutPlan:
    """Shared routing + continuation policy for one edge-cut run.

    Both coordinators (thread rendezvous and process parent) delegate to
    one plan instance, so the two modes cannot drift: message routing,
    event ordering, violation adjudication and the continue/stop decision
    are single-sourced here.  The plan also owns the run's boundary
    telemetry — each shard's per-round outbound batch is serialized and
    its size accumulated into ``boundary_bytes``/``boundary_msgs`` (the
    thread mode serializes too, purely for the measurement, so the two
    backends report comparable numbers).
    """

    def __init__(
        self,
        graph: DistGraph,
        shard_count: int,
        *,
        max_rounds: int,
        on_round_limit: str,
        deadline_s: Optional[float],
        bandwidth_budget: int,
    ) -> None:
        self.graph = graph
        self.shard_count = shard_count
        bounds = edgecut_bounds(len(graph.nodes), shard_count)
        #: First owned identifier of each shard, for owner lookup.
        self._starts = [graph.nodes[b] for b in bounds[:-1]]
        self.max_rounds = max_rounds
        self.on_round_limit = on_round_limit
        self.deadline = (
            None if deadline_s is None else time.perf_counter() + deadline_s
        )
        self.bandwidth_budget = bandwidth_budget
        self.boundary_msgs = 0
        self.boundary_bytes = 0

    def owner(self, node: int) -> int:
        """The shard owning ``node``'s mailbox."""
        return bisect_right(self._starts, node) - 1

    # -- per-round message phase ---------------------------------------
    def route_messages(
        self, batches: Mapping[int, List[tuple]]
    ) -> Dict[int, List[tuple]]:
        """Route every shard's outbound batch to its receivers' shards.

        Each inbound list is sorted by ``(sender, seq)`` — ascending
        compose order — so delivery and accounting at the receiving shard
        walk the same order the unsharded compose loop would have.
        """
        routed: Dict[int, List[tuple]] = {
            shard: [] for shard in range(self.shard_count)
        }
        owner = self.owner
        for shard in sorted(batches):
            batch = batches[shard]
            if not batch:
                continue
            self.boundary_msgs += len(batch)
            self.boundary_bytes += len(pickle.dumps(batch, _PICKLE))
            for message in batch:
                routed[owner(message[2])].append(message)
        for inbound in routed.values():
            inbound.sort(key=lambda message: (message[0], message[1]))
        return routed

    # -- per-round event phase -----------------------------------------
    def decide(
        self, round_index: int, submissions: Mapping[int, tuple]
    ) -> Dict[int, tuple]:
        """Merge the round's events and pick the global continuation.

        ``submissions`` maps shard -> ``(events, active_count, preview,
        violations)`` as drained at the barrier after ``round_index``
        rounds have executed.  Returns per-shard ``(events, command,
        extra)`` replies; the events list is globally sorted
        (terminations before crashes, each ascending by node, matching
        the unsharded publication order) and routed only to shards
        owning at least one neighbor of the event node.  Decision
        precedence mirrors :meth:`SyncEngine.run`: a strict violation
        aborts first (it would have raised mid-round unsharded), then
        global quiescence stops the run, then the wall-clock deadline,
        then the round budget.
        """
        events: List[tuple] = []
        violations: List[tuple] = []
        total_active = 0
        preview: List[int] = []
        for shard in sorted(submissions):
            shard_events, active, shard_preview, shard_violations = (
                submissions[shard]
            )
            events.extend(shard_events)
            violations.extend(shard_violations)
            total_active += active
            preview.extend(shard_preview)
        events.sort(key=lambda event: (event[0] != "terminate", event[1]))

        command = "continue"
        extra: Any = None
        if violations:
            sender, seq, receiver, bits = min(violations)
            command = "violation"
            extra = (bits, self.bandwidth_budget, sender, receiver, round_index)
        elif total_active == 0:
            command = "stop"
        elif self.deadline is not None and time.perf_counter() >= self.deadline:
            command = "deadline"
        elif round_index >= self.max_rounds:
            if self.on_round_limit == "partial":
                command = "round-limit-partial"
            else:
                command = "round-limit"
                extra = (total_active, sorted(preview)[:10])

        owner = self.owner
        neighbors = self.graph.neighbors
        routed: Dict[int, List[tuple]] = {
            shard: [] for shard in range(self.shard_count)
        }
        for event in events:
            for shard in {owner(v) for v in neighbors(event[1])}:
                routed[shard].append(event)
        return {
            shard: (routed[shard], command, extra)
            for shard in range(self.shard_count)
        }

    def raise_for(self, command: str, extra: Any) -> None:
        """Re-raise the exception a stopping command stands for, if any."""
        if command == "violation":
            bits, budget, sender, receiver, round_index = extra
            raise bandwidth_error(bits, budget, sender, receiver, round_index)
        if command == "round-limit":
            total_active, preview = extra
            raise RoundLimitExceeded(
                f"{total_active} node(s) still active after "
                f"{self.max_rounds} rounds: {preview}"
            )


class _Rendezvous:
    """K-party barrier exchange for the in-process (thread) mode.

    Every shard submits a payload; the last arrival runs the route
    function once under the lock and all parties collect their slice.
    Phases strictly alternate in lockstep (messages, then events, every
    round on every shard), so a single instance serves the whole run.
    """

    def __init__(self, count: int) -> None:
        self.count = count
        self._cond = threading.Condition()
        self._inputs: Dict[int, Any] = {}
        self._outputs: Optional[Mapping[int, Any]] = None
        self._generation = 0
        self.failure: Optional[BaseException] = None

    def abort(self, exc: BaseException) -> None:
        """Record a shard failure and release every waiter."""
        with self._cond:
            if self.failure is None:
                self.failure = exc
            self._cond.notify_all()

    def exchange(self, shard: int, payload: Any, route: Any) -> Any:
        with self._cond:
            if self.failure is not None:
                raise _Aborted()
            generation = self._generation
            self._inputs[shard] = payload
            if len(self._inputs) == self.count:
                inputs, self._inputs = self._inputs, {}
                try:
                    self._outputs = route(inputs)
                except BaseException as exc:  # noqa: BLE001 - release peers
                    if self.failure is None:
                        self.failure = exc
                self._generation += 1
                self._cond.notify_all()
            else:
                while self._generation == generation and self.failure is None:
                    self._cond.wait(1.0)
            if self.failure is not None:
                raise _Aborted()
            return self._outputs[shard]


class _ThreadCoordinator:
    """Rendezvous-backed coordinator one shard thread talks to."""

    def __init__(self, plan: EdgecutPlan, rendezvous: _Rendezvous) -> None:
        self.plan = plan
        self.rendezvous = rendezvous

    def exchange_messages(
        self, shard: int, round_index: int, outbound: List[tuple]
    ) -> List[tuple]:
        return self.rendezvous.exchange(
            shard, outbound, self.plan.route_messages
        )

    def exchange_events(
        self, shard: int, round_index: int, submission: tuple
    ) -> tuple:
        return self.rendezvous.exchange(
            shard,
            submission,
            lambda inputs: self.plan.decide(round_index, inputs),
        )


class _PipeCoordinator:
    """Pipe-backed coordinator a shard *process* talks to (worker side)."""

    def __init__(self, conn: Any) -> None:
        self.conn = conn

    def _call(self, message: tuple) -> Any:
        self.conn.send(message)
        kind, payload = self.conn.recv()
        if kind != "ok":
            raise _Aborted()
        return payload

    def exchange_messages(
        self, shard: int, round_index: int, outbound: List[tuple]
    ) -> List[tuple]:
        return self._call(("msgs", round_index, outbound))

    def exchange_events(
        self, shard: int, round_index: int, submission: tuple
    ) -> tuple:
        return self._call(("events", round_index, submission))


# ----------------------------------------------------------------------
# Per-shard round loop (identical in both modes)
# ----------------------------------------------------------------------
def _build_shard_engine(
    graph: DistGraph,
    algorithm: Any,
    predictions: Optional[Mapping[int, Any]],
    config: Any,
    shard: int,
    shard_count: int,
    coordinator: Any,
) -> SyncEngine:
    """One shard's engine: an :class:`EdgecutView` plus a boundary
    transport, constructed exactly as :func:`repro.core.runner.run`
    builds the unsharded engine (same model/seed/budget resolution).
    ``deadline_s`` stays with the coordinator — a shard stopping on its
    own clock would desert the barrier.
    """
    view = EdgecutView(graph, shard, shard_count)
    restricted = None
    if predictions is not None:
        restricted = {
            node: predictions[node]
            for node in view.nodes
            if node in predictions
        }
    owned = frozenset(view.nodes)

    def transport_factory(nodes, result, model, n, fast):
        return BoundaryTransport(
            nodes,
            result,
            model,
            n,
            fast,
            owned=owned,
            shard=shard,
            coordinator=coordinator,
        )

    return SyncEngine(
        view,
        lambda node: algorithm.build_program(),
        predictions=restricted,
        model=config.model or algorithm.model,
        max_rounds=config.max_rounds,
        seed=config.effective_seed,
        on_round_limit=config.on_round_limit,
        fast=config.fast,
        schedule=config.schedule,
        fallback=config.fallback,
        transport=transport_factory,
    )


def _apply_remote_events(engine: SyncEngine, events: Sequence[tuple]) -> None:
    """Apply one round's globally ordered termination/crash events.

    The mirror of the publication loop in
    :meth:`~repro.simulator.lifecycle.NodeLifecycle.finalize_round`,
    restricted to the neighbors this shard owns.
    """
    if not events:
        return
    contexts = engine.contexts
    scheduler = engine._scheduler
    neighbors_of = engine.graph.neighbors
    for kind, node, output in events:
        owned = [v for v in neighbors_of(node) if v in contexts]
        if kind == "terminate":
            for neighbor in owned:
                ctx = contexts[neighbor]
                ctx.active_neighbors.discard(node)
                ctx.neighbor_outputs[node] = output
            scheduler.on_terminated(node, owned)
        else:
            for neighbor in owned:
                ctx = contexts[neighbor]
                ctx.active_neighbors.discard(node)
                ctx.crashed_neighbors.add(node)
            scheduler.on_crashed(node, owned)


def _drive(engine: SyncEngine, coordinator: Any) -> Tuple[str, Any, int]:
    """Run one shard to the global stop decision.

    Returns ``(command, extra, rounds_executed)``.  The loop shape
    matches :meth:`SyncEngine.run` with the control checks hoisted to
    the coordinator: setup, then — per round — an event barrier (apply
    the previous round's global events, learn whether to continue) and,
    inside ``run_round``, the message barrier.
    """
    transport = engine.transport
    scheduler = engine._scheduler
    result = engine.result
    engine._setup_phase()
    round_index = 0
    while True:
        events, command, extra = coordinator.exchange_events(
            transport.shard,
            round_index,
            (
                transport.take_events(),
                len(engine._active),
                engine._active_order[:10],
                transport.take_violations(),
            ),
        )
        _apply_remote_events(engine, events)
        if command != "continue":
            break
        round_index += 1
        scheduler.run_round(round_index)
    scheduler.finish()
    result.rounds_executed = round_index
    result.rounds = max(
        (
            record.termination_round
            for record in result.records.values()
            if record.termination_round is not None
        ),
        default=0,
    )
    if command == "deadline":
        result.stuck = engine._build_stuck_report(round_index, reason="deadline")
    elif command == "round-limit-partial":
        result.stuck = engine._build_stuck_report(round_index)
    return command, extra, round_index


def _merge_stuck(
    round_index: int, n: int, reports: Sequence[StuckReport]
) -> StuckReport:
    """Union the per-shard partial-run snapshots into one report."""
    live: List[int] = []
    snapshots: Dict[int, Any] = {}
    for report in reports:
        live.extend(report.live_nodes)
        snapshots.update(report.snapshots)
    return StuckReport(
        round=round_index,
        live_nodes=sorted(live),
        total_nodes=n,
        snapshots=dict(sorted(snapshots.items())),
        reason=reports[0].reason,
    )


def _resolved_max_rounds(config: Any, graph: DistGraph) -> int:
    """The engine's effective round budget (``8n + 64`` default)."""
    if config.max_rounds is not None:
        return config.max_rounds
    return 8 * graph.n + 64


def _check_shardable(config: Any, shard_count: int) -> None:
    if shard_count < 2:
        raise ValueError(
            f"edge-cut sharding needs >= 2 shards, got {shard_count}"
        )
    if config.faults is not None:
        raise ValueError("edge-cut sharding cannot run fault plans")
    if config.trace or config.profile:
        raise ValueError("edge-cut sharding cannot capture traces or profiles")
    if config.schedule not in _SUPPORTED_SCHEDULES:
        raise ValueError(
            f"edge-cut sharding does not support schedule={config.schedule!r}"
        )


def _make_plan(
    config: Any, graph: DistGraph, model: Any, shard_count: int
) -> EdgecutPlan:
    return EdgecutPlan(
        graph,
        shard_count,
        max_rounds=_resolved_max_rounds(config, graph),
        on_round_limit=config.on_round_limit,
        deadline_s=config.deadline_s,
        bandwidth_budget=model.bandwidth_bits(graph.n),
    )


# ----------------------------------------------------------------------
# Thread mode (serial backend / direct API)
# ----------------------------------------------------------------------
def run_edgecut(
    algorithm: Any,
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]] = None,
    *,
    config: Optional[Any] = None,
    shard_count: int = 2,
    plan_out: Optional[List[EdgecutPlan]] = None,
) -> RunResult:
    """Run ``algorithm`` on ``graph`` across ``shard_count`` edge-cut
    shards (one thread each) and return the merged :class:`RunResult`.

    The in-process counterpart of :func:`repro.core.runner.run` —
    outputs, records, round counts, message/bit counters, strict-CONGEST
    exceptions, round-limit behavior and stuck reports are bit-identical
    to the unsharded call.  ``plan_out``, when given, receives the
    :class:`EdgecutPlan` so callers can read the boundary telemetry.
    """
    from repro.core.runner import RunConfig

    config = config or RunConfig()
    _check_shardable(config, shard_count)
    if algorithm.uses_predictions and predictions is None:
        raise ValueError(
            f"{algorithm.name or type(algorithm).__name__} requires predictions"
        )
    model = config.model or algorithm.model
    plan = _make_plan(config, graph, model, shard_count)
    if plan_out is not None:
        plan_out.append(plan)
    rendezvous = _Rendezvous(shard_count)
    coordinator = _ThreadCoordinator(plan, rendezvous)
    engines = [
        _build_shard_engine(
            graph, algorithm, predictions, config, shard, shard_count,
            coordinator,
        )
        for shard in range(shard_count)
    ]

    outcomes: Dict[int, Tuple[str, Any, int]] = {}

    def body(shard: int) -> None:
        try:
            outcomes[shard] = _drive(engines[shard], coordinator)
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - released via abort
            rendezvous.abort(exc)

    threads = [
        threading.Thread(target=body, args=(shard,), name=f"edgecut-{shard}")
        for shard in range(shard_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if rendezvous.failure is not None:
        raise rendezvous.failure
    command, extra, round_index = outcomes[0]
    plan.raise_for(command, extra)

    merged = RunResult(model=model)
    stuck_reports: List[StuckReport] = []
    rounds = 0
    for engine in engines:
        result = engine.result
        merged.outputs.update(result.outputs)
        merged.records.update(result.records)
        merged.message_count += result.message_count
        merged.total_bits += result.total_bits
        merged.bandwidth_violations += result.bandwidth_violations
        if result.max_message_bits > merged.max_message_bits:
            merged.max_message_bits = result.max_message_bits
        if result.rounds > rounds:
            rounds = result.rounds
        if result.stuck is not None:
            stuck_reports.append(result.stuck)
    merged.rounds = rounds
    merged.rounds_executed = round_index
    if stuck_reports:
        merged.stuck = _merge_stuck(round_index, graph.n, stuck_reports)
    return merged


# ----------------------------------------------------------------------
# Process mode (process backend): parent routes, one worker per shard
# ----------------------------------------------------------------------
def _edgecut_worker(conn: Any) -> None:
    """Shard process entry: receive init, drive the round loop, report.

    The compact ``done`` payload is everything the parent's cell row
    needs (outputs for global validity, counters, stuck) — per-node
    records stay in the worker; at bench scale they would dominate the
    pipe traffic without informing any column.
    """
    from repro.shard.store import reset_worker_state

    try:
        reset_worker_state()
        kind, init = conn.recv()
        if kind != "init":  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected init message, got {kind!r}")
        shard, shard_count, graph, algorithm_spec, predictions_spec, config = (
            init
        )
        algorithm = algorithm_spec.build()
        predictions = (
            predictions_spec.build(graph)
            if predictions_spec is not None
            else None
        )
        coordinator = _PipeCoordinator(conn)
        engine = _build_shard_engine(
            graph, algorithm, predictions, config, shard, shard_count,
            coordinator,
        )
        _drive(engine, coordinator)
        result = engine.result
        conn.send(
            (
                "done",
                {
                    "outputs": result.outputs,
                    "rounds": result.rounds,
                    "rounds_executed": result.rounds_executed,
                    "message_count": result.message_count,
                    "total_bits": result.total_bits,
                    "max_message_bits": result.max_message_bits,
                    "bandwidth_violations": result.bandwidth_violations,
                    "stuck": result.stuck,
                },
            )
        )
    except _Aborted:
        pass
    except BaseException:  # noqa: BLE001 - ship the traceback to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _run_edgecut_process(
    cell: "Cell",
    config: Any,
    shard_count: int,
    graph: DistGraph,
    plan: EdgecutPlan,
) -> Dict[str, Any]:
    """Parent side of the process mode: spawn, route in lockstep, merge.

    The graph crosses each pipe once, zero-copy via an active
    :class:`~repro.shard.store.SharedCSRStore` (workers attach the one
    shared CSR segment instead of unpickling flat buffers).  The parent
    then serves as the coordinator: every shard is always in the same
    phase (``msgs`` / ``events`` alternate; after a stopping command the
    next message is ``done``), so one ``recv`` per shard per phase is
    the whole protocol.
    """
    import multiprocessing

    from repro.shard.store import SharedCSRStore

    store = SharedCSRStore()
    published = False
    try:
        store.publish(graph.csr)
        published = True
    except Exception:  # store unavailable: ship flat buffers instead
        pass
    workers: List[Any] = []
    conns: List[Any] = []
    try:
        # activate/deactivate, NOT ``with``: __exit__ would close the
        # store and unlink the segment before the workers attach.
        if published:
            store.activate()
        try:
            for shard in range(shard_count):
                parent_conn, child_conn = multiprocessing.Pipe()
                process = multiprocessing.Process(
                    target=_edgecut_worker, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                parent_conn.send(
                    (
                        "init",
                        (
                            shard,
                            shard_count,
                            graph,
                            cell.algorithm,
                            cell.predictions,
                            config,
                        ),
                    )
                )
                workers.append(process)
                conns.append(parent_conn)
        finally:
            store.deactivate()

        command = "continue"
        extra: Any = None
        payloads: Dict[int, Dict[str, Any]] = {}
        while len(payloads) < shard_count:
            messages: List[tuple] = []
            for shard in range(shard_count):
                try:
                    messages.append(conns[shard].recv())
                except EOFError:
                    raise RuntimeError(
                        f"edge-cut shard {shard} process died "
                        "without reporting an error"
                    ) from None
            for shard, message in enumerate(messages):
                if message[0] == "error":
                    raise RuntimeError(
                        f"edge-cut shard {shard} failed:\n{message[1]}"
                    )
            kind = messages[0][0]
            if kind == "msgs":
                routed = plan.route_messages(
                    {shard: messages[shard][2] for shard in range(shard_count)}
                )
                for shard in range(shard_count):
                    conns[shard].send(("ok", routed[shard]))
            elif kind == "events":
                round_index = messages[0][1]
                replies = plan.decide(
                    round_index,
                    {shard: messages[shard][2] for shard in range(shard_count)},
                )
                command, extra = replies[0][1], replies[0][2]
                for shard in range(shard_count):
                    conns[shard].send(("ok", replies[shard]))
            else:  # "done"
                for shard in range(shard_count):
                    payloads[shard] = messages[shard][1]
        for process in workers:
            process.join(timeout=30)
    except BaseException:
        for conn in conns:
            conn.close()
        for process in workers:
            if process.is_alive():
                process.terminate()
        for process in workers:
            process.join(timeout=5)
        raise
    finally:
        for conn in conns:
            conn.close()
        if published:
            store.release(graph.csr)
        store.close()

    plan.raise_for(command, extra)
    merged: Dict[str, Any] = {
        "outputs": {},
        "rounds": 0,
        "rounds_executed": 0,
        "message_count": 0,
        "total_bits": 0,
        "max_message_bits": 0,
        "bandwidth_violations": 0,
        "stuck": None,
    }
    stuck_reports: List[StuckReport] = []
    for shard in range(shard_count):
        payload = payloads[shard]
        merged["outputs"].update(payload["outputs"])
        merged["rounds"] = max(merged["rounds"], payload["rounds"])
        merged["rounds_executed"] = payload["rounds_executed"]
        merged["message_count"] += payload["message_count"]
        merged["total_bits"] += payload["total_bits"]
        merged["max_message_bits"] = max(
            merged["max_message_bits"], payload["max_message_bits"]
        )
        merged["bandwidth_violations"] += payload["bandwidth_violations"]
        if payload["stuck"] is not None:
            stuck_reports.append(payload["stuck"])
    if stuck_reports:
        merged["stuck"] = _merge_stuck(
            merged["rounds_executed"], graph.n, stuck_reports
        )
    return merged


# ----------------------------------------------------------------------
# Cell entry point (both backends)
# ----------------------------------------------------------------------
def execute_edgecut_cell(
    index: int,
    cell: "Cell",
    seed: int,
    shard_count: int,
    *,
    mode: str = "thread",
    cache: Optional[Any] = None,
) -> "CellResult":
    """Execute one ``shard="edgecut"`` sweep cell and return its row.

    ``mode="thread"`` (serial backend) runs :func:`run_edgecut` in this
    process; ``mode="process"`` (process backend) spawns one worker per
    shard with the parent routing the barriers.  Validity, η₁ and
    solution size are computed on the **full** graph — unlike component
    shards, an edge-cut shard's induced subgraph is not a closed world,
    so per-shard verdicts would miss every cut edge.
    """
    from repro.exec.results import CellResult

    start = time.perf_counter()
    if cache is not None:
        graph = cache.get_or_build(cell.graph.key, cell.graph.build)
    else:
        graph = cell.graph.build()
    config = cell.config.with_overrides(seed=seed)
    algorithm = cell.algorithm.build()
    predictions = None
    if cell.predictions is not None:
        spec = cell.predictions
        if cache is not None:
            predictions = cache.get_or_build(
                f"{spec.key}@{cell.graph.key}", lambda: spec.build(graph)
            )
        else:
            predictions = spec.build(graph)

    if mode == "process":
        _check_shardable(config, shard_count)
        if algorithm.uses_predictions and cell.predictions is None:
            raise ValueError(
                f"{algorithm.name or type(algorithm).__name__} "
                "requires predictions"
            )
        model = config.model or algorithm.model
        plan = _make_plan(config, graph, model, shard_count)
        merged = _run_edgecut_process(cell, config, shard_count, graph, plan)
        outputs = merged["outputs"]
        rounds = merged["rounds"]
        rounds_executed = merged["rounds_executed"]
        message_count = merged["message_count"]
        stuck = merged["stuck"]
    else:
        plans: List[EdgecutPlan] = []
        result = run_edgecut(
            algorithm,
            graph,
            predictions,
            config=config,
            shard_count=shard_count,
            plan_out=plans,
        )
        plan = plans[0]
        outputs = result.outputs
        rounds = result.rounds
        rounds_executed = result.rounds_executed
        message_count = result.message_count
        stuck = result.stuck

    valid = None
    error = None
    problem = None
    if cell.problem is not None:
        from repro.problems import get_problem

        problem = get_problem(cell.problem)
        valid = problem.is_solution(graph, outputs)
        if predictions is not None:
            from repro.errors import eta1

            error = eta1(graph, predictions, problem.name)
    from repro.problems import solution_size as _solution_size

    return CellResult(
        index=index,
        label=cell.label,
        graph_name=graph.name,
        n=graph.n,
        seed=seed,
        rounds=rounds,
        rounds_executed=rounds_executed,
        valid=valid,
        error=error,
        message_count=message_count,
        stuck=stuck is not None,
        solution_size=_solution_size(
            outputs, problem.name if problem is not None else None
        ),
        elapsed=time.perf_counter() - start,
        shards=shard_count,
        boundary_msgs=plan.boundary_msgs,
        boundary_bytes=plan.boundary_bytes,
    )
