"""Zero-copy shared-memory publication of CSR topologies.

The process-pool backend used to pickle a full graph copy into every
worker for every chunk — at n=10⁶–10⁷ the CSR buffers dominate the
pickle, and serializing them repeatedly dominates the sweep.  A
:class:`SharedCSRStore` breaks that: while a store is *active*, pickling
a :class:`~repro.graphs.csr.CSRTopology` publishes its ``indptr``/
``indices``/``ids`` buffers into one shared segment (once) and ships a
~100-byte :class:`SharedCSRHandle` instead; unpickling in a worker
attaches the segment and wraps zero-copy ``memoryview`` buffers — the
graph crosses the pool boundary exactly once, whatever the cell count.

Two segment backends:

* ``"shm"`` — :class:`multiprocessing.shared_memory.SharedMemory`, the
  zero-copy default.
* ``"file"`` — an mmap'd file under the store's directory (by
  convention the :class:`~repro.exec.cache.ArtifactCache` disk layer's
  ``cache_dir``, else a temp directory).  The automatic fallback where
  POSIX shared memory is unavailable (restricted sandboxes raise
  ``PermissionError``/``OSError`` on segment creation).

Lifecycle: the parent owns the segments.  ``activate()`` installs the
reduce hook (see :func:`repro.graphs.csr.set_shared_reducer`);
``close()`` — explicit, via the context manager, or the registered
``atexit`` hook — detaches and unlinks every segment the store created.
Segments are refcounted across publishes (:meth:`release` drops a pin;
the last release unlinks early), so long-lived callers can retire a
graph's segment before the sweep ends.  Workers attach lazily, cache the
attachment per process (every chunk referencing the same graph shares
one topology object *and* its cached components), and detach at
interpreter exit.
"""

from __future__ import annotations

import atexit
import errno
import mmap
import os
import tempfile
import uuid
from array import array
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.graphs.csr import CSRTopology, set_shared_reducer

_WORD = 8  # bytes per int64 buffer element


@dataclass(frozen=True)
class SharedCSRHandle:
    """What crosses the process boundary instead of the flat buffers.

    Attributes:
        kind: Segment backend — ``"shm"`` or ``"file"``.
        name: Shared-memory segment name, or the mmap'd file's path.
        n: Number of nodes (``len(ids)``; ``indptr`` has ``n + 1``).
        nnz: Length of ``indices`` (``2m``).
    """

    kind: str
    name: str
    n: int
    nnz: int

    @property
    def nbytes(self) -> int:
        """Total segment payload size in bytes."""
        return _WORD * (2 * self.n + 1 + self.nnz)


class SharedCSRStoreError(RuntimeError):
    """Lifecycle misuse of the shared CSR store (e.g. attach after unlink)."""


# ----------------------------------------------------------------------
# Worker-side attachment
# ----------------------------------------------------------------------
#: Per-process attachment cache: segment name -> (topology, closer).
#: Shared across chunks so every cell referencing the same graph gets the
#: same topology object (and its cached ``components()``/``max_degree``).
_ATTACHED: Dict[str, Tuple[CSRTopology, Any]] = {}
_ATEXIT_REGISTERED = False


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(detach_all)
        _ATEXIT_REGISTERED = True


def _topology_from_buffer(view: memoryview, n: int, nnz: int) -> CSRTopology:
    """Wrap a segment's payload as a topology without copying the rows.

    ``indptr``/``indices`` stay zero-copy int64 views over the segment;
    the identifier tuple is materialized once per process (tuples are
    what every interning consumer expects).
    """
    indptr_end = _WORD * (n + 1)
    indices_end = indptr_end + _WORD * nnz
    ids_end = indices_end + _WORD * n
    indptr = view[:indptr_end].cast("q")
    indices = view[indptr_end:indices_end].cast("q")
    ids = tuple(view[indices_end:ids_end].cast("q"))
    return CSRTopology(ids, indptr, indices)


def attach_csr(handle: SharedCSRHandle) -> CSRTopology:
    """Attach the segment behind ``handle`` (module-level: this is the
    unpickle path workers run, cached per process per segment)."""
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[0]
    if handle.kind == "shm":
        topology, closer = _attach_shm(handle)
    elif handle.kind == "file":
        topology, closer = _attach_file(handle)
    else:
        raise SharedCSRStoreError(
            f"unknown shared CSR segment kind {handle.kind!r}"
        )
    _ATTACHED[handle.name] = (topology, closer)
    _register_atexit()
    return topology


def _attach_shm(handle: SharedCSRHandle) -> Tuple[CSRTopology, Any]:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError:
        raise SharedCSRStoreError(
            f"shared CSR segment {handle.name!r} is gone — the owning "
            "SharedCSRStore was closed (or unlinked the segment) before "
            "this process attached; keep the store open for the lifetime "
            "of the sweep that ships its handles"
        ) from None
    # Attaching re-registers the segment with the resource tracker (on
    # 3.11 ``SharedMemory.__init__`` registers unconditionally).  Leave
    # it registered: the tracker's name cache is a *set* shared by the
    # whole process family, so any number of attach registrations
    # collapse into the one entry the creating store made, and the
    # owner's final ``unlink()`` unregisters it exactly once.  (An
    # attach-side ``unregister`` here would race when several workers
    # attach concurrently — two idempotent registers, two destructive
    # unregisters — and leave the tracker complaining at shutdown.)
    topology = _topology_from_buffer(
        memoryview(segment.buf), handle.n, handle.nnz
    )
    return topology, segment


class _MappedFile:
    """Keeps an mmap'd fallback segment (and its fd) alive and closable."""

    def __init__(self, path: str) -> None:
        self._file = open(path, "rb")
        self.map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)

    def close(self) -> None:
        self.map.close()
        self._file.close()


def _attach_file(handle: SharedCSRHandle) -> Tuple[CSRTopology, Any]:
    try:
        mapped = _MappedFile(handle.name)
    except FileNotFoundError:
        raise SharedCSRStoreError(
            f"shared CSR segment file {handle.name!r} is gone — the owning "
            "SharedCSRStore was closed (or unlinked the segment) before "
            "this process attached; keep the store open for the lifetime "
            "of the sweep that ships its handles"
        ) from None
    topology = _topology_from_buffer(
        memoryview(mapped.map), handle.n, handle.nnz
    )
    return topology, mapped


def detach_all() -> None:
    """Close every attachment this process holds (atexit hook; workers
    borrow segments, so detaching never unlinks)."""
    while _ATTACHED:
        _name, (topology, closer) = _ATTACHED.popitem()
        # Memoryviews over the segment must be released before the
        # buffer can close; drop them from the (now dead) topology.
        try:
            topology.indptr.release()
            topology.indices.release()
        except Exception:
            pass
        try:
            closer.close()
        except Exception:
            pass


def reset_worker_state() -> None:
    """Clear inherited parent-side store state in a pool worker.

    ``fork``-started workers inherit the parent's installed reduce hook
    (and its registry of owned segments).  A worker must never publish
    through it — artifacts it pickles (e.g. into the disk cache) would
    create segments nobody unlinks — so the pool initializer calls this
    first.
    """
    set_shared_reducer(None)


# ----------------------------------------------------------------------
# Parent-side store
# ----------------------------------------------------------------------
class SharedCSRStore:
    """Publishes CSR topologies into shared segments, once each.

    Args:
        backend: ``"auto"`` (try POSIX shared memory, fall back to
            mmap'd files), ``"shm"``, or ``"file"``.
        directory: Directory for ``"file"`` segments — pass the sweep's
            artifact ``cache_dir`` to keep all on-disk state together;
            ``None`` uses a private temp directory, removed on close.

    Usable as a context manager; ``close()`` is also registered with
    ``atexit`` so abandoned stores cannot leak segments.
    """

    def __init__(
        self, backend: str = "auto", directory: Optional[str] = None
    ) -> None:
        if backend not in ("auto", "shm", "file"):
            raise ValueError(
                f"backend must be 'auto', 'shm' or 'file', got {backend!r}"
            )
        self.backend = backend
        self._directory = directory
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        #: id(topology) -> (handle, owned segment object or path, refcount)
        self._published: Dict[int, Tuple[SharedCSRHandle, Any, int]] = {}
        #: Strong refs keeping the id() keys stable while published.
        self._pinned: Dict[int, CSRTopology] = {}
        self._active = False
        self._closed = False
        atexit.register(self.close)

    # -- activation ----------------------------------------------------
    def activate(self) -> "SharedCSRStore":
        """Install the reduce hook: topology pickles become handles."""
        if self._closed:
            raise SharedCSRStoreError("cannot activate a closed SharedCSRStore")
        set_shared_reducer(self._reduce_hook)
        self._active = True
        return self

    def deactivate(self) -> None:
        """Restore flat-buffer pickling (segments stay published)."""
        if self._active:
            set_shared_reducer(None)
            self._active = False

    def __enter__(self) -> "SharedCSRStore":
        return self.activate()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- publication ---------------------------------------------------
    def _reduce_hook(self, topology: CSRTopology) -> Optional[tuple]:
        handle = self.publish(topology)
        return (attach_csr, (handle,))

    def publish(self, topology: CSRTopology) -> SharedCSRHandle:
        """The handle for ``topology``, creating its segment on first
        publish (later publishes add a refcount pin and reuse it)."""
        if self._closed:
            raise SharedCSRStoreError("cannot publish into a closed SharedCSRStore")
        key = id(topology)
        entry = self._published.get(key)
        if entry is not None:
            handle, segment, refcount = entry
            self._published[key] = (handle, segment, refcount + 1)
            return handle
        handle, segment = self._create_segment(topology)
        self._published[key] = (handle, segment, 1)
        self._pinned[key] = topology
        return handle

    def release(self, topology: CSRTopology) -> None:
        """Drop one pin; the last release unlinks the segment early."""
        key = id(topology)
        entry = self._published.get(key)
        if entry is None:
            return
        handle, segment, refcount = entry
        if refcount > 1:
            self._published[key] = (handle, segment, refcount - 1)
            return
        del self._published[key]
        del self._pinned[key]
        self._destroy_segment(handle, segment)

    def handle_for(self, topology: CSRTopology) -> Optional[SharedCSRHandle]:
        """The published handle for ``topology``, if any (no publish)."""
        entry = self._published.get(id(topology))
        return entry[0] if entry is not None else None

    @property
    def total_bytes(self) -> int:
        """Bytes currently resident across every published segment."""
        return sum(handle.nbytes for handle, _, _ in self._published.values())

    def __len__(self) -> int:
        return len(self._published)

    # -- segment backends ----------------------------------------------
    def _payload(self, topology: CSRTopology) -> Tuple[bytes, bytes, bytes]:
        indptr = topology.indptr
        indices = topology.indices
        if not isinstance(indptr, array):
            indptr = array("q", indptr)
        if not isinstance(indices, array):
            indices = array("q", indices)
        return (
            indptr.tobytes(),
            indices.tobytes(),
            array("q", topology.ids).tobytes(),
        )

    def _create_segment(
        self, topology: CSRTopology
    ) -> Tuple[SharedCSRHandle, Any]:
        parts = self._payload(topology)
        size = sum(len(part) for part in parts)
        if self.backend in ("auto", "shm"):
            try:
                return self._create_shm(topology, parts, size)
            except (ImportError, OSError) as exc:
                if self.backend == "shm":
                    raise
                # Sandboxes without /dev/shm (or with it read-only) fall
                # through to the mmap'd-file layer.
                if isinstance(exc, OSError) and exc.errno not in (
                    errno.EACCES,
                    errno.EPERM,
                    errno.ENOENT,
                    errno.ENOSPC,
                    errno.EROFS,
                    None,
                ):
                    raise
        return self._create_file(topology, parts, size)

    def _create_shm(
        self, topology: CSRTopology, parts: Tuple[bytes, ...], size: int
    ) -> Tuple[SharedCSRHandle, Any]:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            create=True, size=max(size, 1), name=self._segment_name()
        )
        offset = 0
        for part in parts:
            segment.buf[offset : offset + len(part)] = part
            offset += len(part)
        handle = SharedCSRHandle(
            kind="shm",
            name=segment.name,
            n=topology.n,
            nnz=len(topology.indices),
        )
        return handle, segment

    def _create_file(
        self, topology: CSRTopology, parts: Tuple[bytes, ...], size: int
    ) -> Tuple[SharedCSRHandle, Any]:
        directory = self._segment_dir()
        path = os.path.join(directory, f"{self._segment_name()}.csr")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle_file:
            for part in parts:
                handle_file.write(part)
        os.replace(tmp, path)
        handle = SharedCSRHandle(
            kind="file", name=path, n=topology.n, nnz=len(topology.indices)
        )
        return handle, path

    def _segment_name(self) -> str:
        return f"repro-csr-{os.getpid()}-{uuid.uuid4().hex[:12]}"

    def _segment_dir(self) -> str:
        if self._directory is not None:
            os.makedirs(self._directory, exist_ok=True)
            return self._directory
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
        return self._tempdir.name

    def _destroy_segment(self, handle: SharedCSRHandle, segment: Any) -> None:
        if handle.kind == "shm":
            # The tracker's name cache is one set shared by the whole
            # process family.  Re-registering before ``unlink()`` is an
            # idempotent no-op in the normal flow (create registered the
            # name and attachers never unregister, see ``_attach_shm``)
            # but keeps the unlink's unregister balanced even if some
            # other actor dropped the entry — an unknown-name unregister
            # prints a KeyError from the tracker process.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(segment._name, "shared_memory")
            except Exception:
                pass
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
        else:
            try:
                os.unlink(segment)
            except FileNotFoundError:
                pass

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Deactivate, unlink every owned segment, drop all pins.

        Idempotent; registered with ``atexit``.  Handles shipped from
        this store stop resolving once it runs — by design, segments
        must not outlive their owner.
        """
        if self._closed:
            return
        self.deactivate()
        while self._published:
            _key, (handle, segment, _refcount) = self._published.popitem()
            self._destroy_segment(handle, segment)
        self._pinned.clear()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "active" if self._active else "inactive"
        )
        return (
            f"<SharedCSRStore {state} segments={len(self._published)} "
            f"bytes={self.total_bytes}>"
        )
