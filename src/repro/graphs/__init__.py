"""Graph instances, generators and identifier schemes.

Instances of distributed graph problems are graphs whose nodes carry
distinct identifiers from ``{1, ..., d}`` (Section 2 of the paper).  The
:class:`~repro.graphs.graph.DistGraph` class is the instance type consumed
by the simulator; the generator modules provide every graph family the
paper's constructions and our benchmarks need, including the wheel ``F_k``
of Figure 1 and the grid of Figure 2.
"""

from repro.graphs.graph import DistGraph
from repro.graphs.csr import CSRTopology, ensure_topology
from repro.graphs.generators import (
    caterpillar,
    clique,
    complete_bipartite,
    complete_kary_tree,
    empty_graph,
    grid2d,
    hypercube,
    line,
    path_forest,
    preorder_kary_tree,
    ring,
    star,
    torus,
    wheel_fk,
)
from repro.graphs.random_graphs import (
    barabasi_albert,
    connected_erdos_renyi,
    erdos_renyi,
    random_regular,
    random_tree,
)
from repro.graphs.rooted_trees import (
    directed_line,
    from_parents,
    random_rooted_tree,
    strict_binary_tree,
)
from repro.graphs.identifiers import (
    random_ids_from_domain,
    relabel,
    sequential_ids,
    sorted_path_ids,
)
from repro.graphs.churn import (
    node_churn_plan,
    perturb_edges,
    perturb_nodes,
    sample_non_edges,
)
from repro.graphs.validation import validate_instance

__all__ = [
    "CSRTopology",
    "DistGraph",
    "barabasi_albert",
    "caterpillar",
    "clique",
    "complete_bipartite",
    "complete_kary_tree",
    "connected_erdos_renyi",
    "directed_line",
    "empty_graph",
    "ensure_topology",
    "erdos_renyi",
    "from_parents",
    "grid2d",
    "hypercube",
    "line",
    "node_churn_plan",
    "path_forest",
    "perturb_edges",
    "perturb_nodes",
    "preorder_kary_tree",
    "random_ids_from_domain",
    "random_regular",
    "random_rooted_tree",
    "random_tree",
    "relabel",
    "ring",
    "sample_non_edges",
    "sequential_ids",
    "sorted_path_ids",
    "star",
    "strict_binary_tree",
    "torus",
    "validate_instance",
    "wheel_fk",
]
