"""Rooted tree instances (Section 9.2).

In a rooted tree each node knows whether it is the root and, if not, which
neighbor is its parent (Section 9.2).  We encode that knowledge in node
attributes: ``is_root`` (bool) and ``parent`` (the parent's id, or ``None``
at the root).  Rooted forests are supported — each component carries its
own root — because measure-uniform algorithms run on induced sub-forests.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional

from repro.graphs.graph import DistGraph


def from_parents(parents: Mapping[int, Optional[int]], name: str = "") -> DistGraph:
    """Build a rooted forest from a ``node -> parent`` mapping.

    Roots map to ``None``.  Raises on cycles or unknown parents.
    """
    adjacency: Dict[int, List[int]] = {int(v): [] for v in parents}
    for node, parent in parents.items():
        if parent is None:
            continue
        if parent not in adjacency:
            raise ValueError(f"node {node} has unknown parent {parent}")
        adjacency[int(node)].append(int(parent))
    attrs = {
        int(node): {"parent": parent, "is_root": parent is None}
        for node, parent in parents.items()
    }
    graph = DistGraph(adjacency, attrs=attrs, name=name or "rooted-forest")
    _check_acyclic(parents)
    return graph


def _check_acyclic(parents: Mapping[int, Optional[int]]) -> None:
    for start in parents:
        seen = {start}
        node: Optional[int] = parents[start]
        while node is not None:
            if node in seen:
                raise ValueError(f"parent pointers contain a cycle through {node}")
            seen.add(node)
            node = parents[node]


def directed_line(n: int) -> DistGraph:
    """A rooted path of ``n`` nodes: node 1 is the root, ``i``'s parent is ``i-1``.

    This is the "directed line" of the Section 9.2 example (η₁ = 3k while
    η_t = 2 under the 0-0-1 coloring pattern).
    """
    parents: Dict[int, Optional[int]] = {1: None}
    for v in range(2, n + 1):
        parents[v] = v - 1
    graph = from_parents(parents, name=f"dline-{n}")
    return graph


def random_rooted_tree(
    n: int, seed: int = 0, max_children: Optional[int] = None
) -> DistGraph:
    """A random rooted tree on ``n`` nodes with ids ``1..n`` (node 1 root).

    Each node ``v > 1`` attaches to a uniformly random earlier node,
    optionally restricted to nodes with fewer than ``max_children``
    children (a uniform random recursive tree when unrestricted).
    """
    rng = random.Random(f"{seed}:rooted")
    parents: Dict[int, Optional[int]] = {1: None}
    children_count: Dict[int, int] = {1: 0}
    for v in range(2, n + 1):
        candidates = [
            u
            for u in range(1, v)
            if max_children is None or children_count[u] < max_children
        ]
        parent = rng.choice(candidates)
        parents[v] = parent
        children_count[parent] += 1
        children_count[v] = 0
    return from_parents(parents, name=f"rtree-{n}-s{seed}")


def strict_binary_tree(height: int) -> DistGraph:
    """A complete strict binary tree of the given height (root id 1).

    Every internal node has exactly two children — the tree family of the
    Balliu et al. result cited in Section 9.2.
    """
    parents: Dict[int, Optional[int]] = {1: None}
    total = 2 ** (height + 1) - 1
    for v in range(2, total + 1):
        parents[v] = v // 2
    return from_parents(parents, name=f"btree-h{height}")


def tree_parent(graph: DistGraph, node: int) -> Optional[int]:
    """Parent of ``node`` in a rooted instance, or ``None`` at a root."""
    return graph.node_attrs(node).get("parent")


def tree_children(graph: DistGraph, node: int) -> List[int]:
    """Children of ``node``: its neighbors other than its parent."""
    parent = tree_parent(graph, node)
    return sorted(other for other in graph.neighbors(node) if other != parent)


def tree_height(graph: DistGraph, roots: Optional[Iterable[int]] = None) -> int:
    """Height (edge count of the longest root-to-leaf path) of the forest."""
    if roots is None:
        roots = [v for v in graph.nodes if graph.node_attrs(v).get("is_root")]
    best = 0
    for root in roots:
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            for child in tree_children(graph, node):
                stack.append((child, depth + 1))
    return best
